//! Parity and property tests for the netlist compiler.
//!
//! - The swnet arithmetic netlists lower to circuits *structurally
//!   equal* to the hand-built `swgates` constructors, and evaluate
//!   identically on all input patterns — the hand-built builders are
//!   now redundant with the compiler output.
//! - Random truth tables survive synthesize → legalize → lower →
//!   evaluate on every row.
//! - Legalization leaves zero fan-out violations on adversarial
//!   fan-out shapes.
//! - The text and JSON formats round-trip, and malformed input is
//!   rejected with byte offsets.

use swgates::circuit::{Circuit, GateKind, Signal};
use swgates::encoding::Bit;
use swnet::ir::{CellKind, FanoutView, Netlist};
use swnet::synth::{row_bits, synthesize, Table};
use swnet::{arith, legalize, lower, text, SwNetError};

/// A tiny deterministic SplitMix64 stream for property-style tests —
/// no RNG dependency, reproducible failures.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn full_adder_netlist_lowers_to_the_hand_built_circuit() {
    let lowered = lower::to_circuit(&arith::full_adder()).unwrap();
    assert_eq!(lowered, Circuit::full_adder());
}

#[test]
fn ripple_carry_netlists_lower_to_the_hand_built_circuits() {
    for n in [1usize, 2, 4, 8, 16] {
        let lowered = lower::to_circuit(&arith::ripple_carry_adder(n)).unwrap();
        assert_eq!(lowered, Circuit::ripple_carry_adder(n), "n={n}");
    }
}

#[test]
fn lowered_adders_evaluate_identically_on_all_patterns() {
    for n in [1usize, 2, 3] {
        let ours = lower::to_circuit(&arith::ripple_carry_adder(n)).unwrap();
        let theirs = Circuit::ripple_carry_adder(n);
        let inputs = 2 * n + 1;
        for row in 0..(1u64 << inputs) {
            let bits = row_bits(row, inputs);
            assert_eq!(
                ours.evaluate(&bits).unwrap(),
                theirs.evaluate(&bits).unwrap(),
                "n={n} row={row}"
            );
        }
    }
}

#[test]
fn legalize_circuit_matches_insert_repeaters_on_all_patterns() {
    // A circuit whose AND output fans out to 6 loads (illegal under
    // FO2): both legalizers must fix it without changing behaviour.
    let mut circuit = Circuit::new(3);
    let t = circuit
        .add_gate(GateKind::And, vec![Signal::Input(0), Signal::Input(1)])
        .unwrap();
    for _ in 0..6 {
        let y = circuit
            .add_gate(GateKind::Xor, vec![t, Signal::Input(2)])
            .unwrap();
        circuit.mark_output(y).unwrap();
    }
    let tree = arith::legalize_circuit(&circuit).unwrap();
    let chain = swgates::circuit::insert_repeaters(&circuit).unwrap();
    assert!(tree.fanout_violations().is_empty());
    assert!(chain.fanout_violations().is_empty());
    for row in 0..8u64 {
        let bits = row_bits(row, 3);
        let want = circuit.evaluate(&bits).unwrap();
        assert_eq!(tree.evaluate(&bits).unwrap(), want, "tree row={row}");
        assert_eq!(chain.evaluate(&bits).unwrap(), want, "chain row={row}");
    }
}

#[test]
fn random_tables_round_trip_through_synthesis() {
    let mut rng = Rng(0x5eed);
    for trial in 0..40 {
        let n = 1 + (rng.next() % 6) as usize;
        let table = {
            let mut t = Table::zeros(n).unwrap();
            for row in 0..(1u64 << n) {
                t.set(row, Bit::from_bool(rng.next() & 1 == 1));
            }
            t
        };
        let netlist = synthesize(std::slice::from_ref(&table)).unwrap();
        let legal = legalize::legalize(&netlist).unwrap();
        let circuit = lower::to_circuit(&legal).unwrap();
        assert!(
            circuit.fanout_violations().is_empty(),
            "trial {trial}: {}",
            table.bits_string()
        );
        for row in 0..(1u64 << n) {
            let got = circuit.evaluate(&row_bits(row, n)).unwrap()[0];
            assert_eq!(
                got,
                table.bit(row),
                "trial {trial} row {row} of {}",
                table.bits_string()
            );
        }
    }
}

#[test]
fn random_multi_output_tables_round_trip() {
    let mut rng = Rng(0xfeed);
    for trial in 0..10 {
        let n = 2 + (rng.next() % 4) as usize;
        let outputs = 1 + (rng.next() % 3) as usize;
        let tables: Vec<Table> = (0..outputs)
            .map(|_| {
                let mut t = Table::zeros(n).unwrap();
                for row in 0..(1u64 << n) {
                    t.set(row, Bit::from_bool(rng.next() & 1 == 1));
                }
                t
            })
            .collect();
        let circuit =
            lower::to_circuit(&legalize::legalize(&synthesize(&tables).unwrap()).unwrap()).unwrap();
        assert!(circuit.fanout_violations().is_empty(), "trial {trial}");
        for row in 0..(1u64 << n) {
            let got = circuit.evaluate(&row_bits(row, n)).unwrap();
            for (k, table) in tables.iter().enumerate() {
                assert_eq!(got[k], table.bit(row), "trial {trial} row {row} out {k}");
            }
        }
    }
}

#[test]
fn legalization_fixes_adversarial_fanout_shapes() {
    let mut rng = Rng(0xfa0);
    for trial in 0..20 {
        // A random DAG of 2-input gates over few nets: high fan-out by
        // construction.
        let n = 2 + (rng.next() % 3) as usize;
        let mut nl = Netlist::new();
        let mut pool: Vec<_> = (0..n)
            .map(|i| nl.add_input(&format!("x{i}")).unwrap())
            .collect();
        let kinds = [
            CellKind::Maj3,
            CellKind::Xor,
            CellKind::And,
            CellKind::Or,
            CellKind::Inv,
        ];
        for g in 0..12 {
            let kind = kinds[(rng.next() % kinds.len() as u64) as usize];
            let ins: Vec<_> = (0..kind.input_arity())
                .map(|_| pool[(rng.next() % pool.len() as u64) as usize])
                .collect();
            let out = nl.net(&format!("g{g}"));
            nl.add_cell(kind, &ins, &[out]).unwrap();
            pool.push(out);
        }
        let last = *pool.last().unwrap();
        nl.mark_output(last);
        let legal = legalize::legalize(&nl).unwrap();
        let view = FanoutView::new(&legal);
        assert!(
            view.violations(&legal).is_empty(),
            "trial {trial}:\n{legal}"
        );
        for row in 0..(1u64 << n) {
            let bits = row_bits(row, n);
            assert_eq!(
                nl.evaluate(&bits).unwrap(),
                legal.evaluate(&bits).unwrap(),
                "trial {trial} row {row}"
            );
        }
    }
}

#[test]
fn text_and_json_round_trip_the_compiled_adder() {
    let netlist = legalize::legalize(&arith::ripple_carry_adder(4)).unwrap();
    // Text → parse.
    let reparsed = text::parse(&netlist.to_string()).unwrap();
    assert_eq!(netlist, reparsed);
    // JSON render → parse → build.
    let json = text::to_json(&netlist).render();
    let rebuilt = text::from_json(&swjson::Json::parse(&json).unwrap()).unwrap();
    assert_eq!(netlist, rebuilt);
    // And the canonical JSON is stable.
    assert_eq!(json, text::to_json(&rebuilt).render());
}

#[test]
fn malformed_text_is_rejected_with_byte_offsets() {
    let cases: [(&str, usize); 4] = [
        // Unknown op: offset of `frob`.
        ("input a b\noutput y\ny = frob a b\n", 23),
        // Bad arity: offset of `maj3`.
        ("input a b\noutput y\ny = maj3 a b\n", 23),
        // Stray character: offset of `%`.
        ("input a\n% = inv a\n", 8),
        // Cell line without `=`: offset of line head.
        ("input a\ny inv a\n", 8),
    ];
    for (source, want) in cases {
        match text::parse(source) {
            Err(SwNetError::Parse { offset, .. }) => {
                assert_eq!(offset, want, "{source:?}");
            }
            other => panic!("{source:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn malformed_json_netlists_are_rejected() {
    let bad = [
        r#"{"inputs": "a", "outputs": [], "cells": []}"#,
        r#"{"inputs": ["a"], "outputs": ["y"], "cells": [{"op": "inv", "ins": ["a"]}]}"#,
        r#"{"inputs": ["a"], "outputs": ["y"], "cells": [{"op": "inv", "ins": ["a", "a"], "outs": ["y"]}]}"#,
    ];
    for source in bad {
        let value = swjson::Json::parse(source).unwrap();
        assert!(text::from_json(&value).is_err(), "{source}");
    }
    // Invalid JSON itself carries a byte offset from swjson.
    let err = swjson::Json::parse("{\"inputs\": [").unwrap_err();
    assert!(err.to_string().contains("12"), "{err}");
}

#[test]
fn synthesized_full_adder_matches_integer_addition() {
    let sum = Table::parse("01101001").unwrap();
    let carry = Table::parse("00010111").unwrap();
    let circuit =
        lower::to_circuit(&legalize::legalize(&synthesize(&[sum, carry]).unwrap()).unwrap())
            .unwrap();
    for a in 0..2u64 {
        for b in 0..2u64 {
            for cin in 0..2u64 {
                let bits = row_bits(a | b << 1 | cin << 2, 3);
                let out = circuit.evaluate(&bits).unwrap();
                let total = a + b + cin;
                assert_eq!(out[0].as_u8() as u64, total & 1);
                assert_eq!(out[1].as_u8() as u64, total >> 1);
            }
        }
    }
}
