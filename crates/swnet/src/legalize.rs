//! Fan-out legalization: splitter/repeater-tree insertion.
//!
//! The triangle gates drive at most two loads (§IV: "a fan-out of 2 is
//! enacted in each design") and the inverter drives one. When a net in
//! the source netlist has more sinks than its driver supports,
//! [`legalize`] inserts a balanced tree of [`CellKind::Buf`] cells —
//! physically, directional-coupler splitter arms, some of which the
//! [`crate::effort`] model later promotes to active repeaters — so that
//! every driver obeys its limit.
//!
//! Primary inputs are exempt: they are excited by external transducers,
//! which the paper replicates at will.

use crate::ir::{CellKind, Driver, FanoutView, Netlist, Sink};
use crate::SwNetError;

/// Elaborates macro cells, then inserts balanced buffer trees until no
/// net exceeds its driver's fan-out limit. The result is
/// primitive-only and passes [`FanoutView::violations`] empty.
///
/// # Errors
///
/// [`SwNetError::Invalid`] if the input netlist fails
/// [`Netlist::check`].
pub fn legalize(netlist: &Netlist) -> Result<Netlist, SwNetError> {
    let mut flat = netlist.elaborate();
    flat.check()?;
    loop {
        let view = FanoutView::new(&flat);
        let violations = view.violations(&flat);
        if violations.is_empty() {
            return Ok(flat);
        }
        // Rewire one pass of violations; buffers added this pass may
        // themselves need splitting (an Inv driving 2+ loads first gets
        // one Buf, which then fans out), so loop to a fixed point.
        let mut next = flat.clone();
        for violation in &violations {
            let sinks: Vec<Sink> = view.sinks(violation.net).to_vec();
            let limit = violation.limit;
            // Partition the sinks into `limit` near-equal groups; each
            // group of one keeps its direct connection, larger groups
            // go through a fresh Buf. This yields a balanced tree once
            // the loop reaches a fixed point.
            let per_group = sinks.len().div_ceil(limit);
            for group in sinks.chunks(per_group) {
                if group.len() == 1 {
                    continue;
                }
                let branch = next.fresh("s");
                next.add_cell(CellKind::Buf, &[violation.net], &[branch])
                    .expect("fresh net is undriven");
                for sink in group {
                    rewire(&mut next, *sink, violation.net, branch);
                }
            }
        }
        flat = next;
    }
}

/// Points one sink of `from` at `to` instead.
fn rewire(netlist: &mut Netlist, sink: Sink, from: crate::ir::NetId, to: crate::ir::NetId) {
    match sink {
        Sink::Cell { cell, pin } => {
            debug_assert_eq!(netlist.cell(cell).ins[pin], from);
            netlist.rewire_input(cell, pin, to);
        }
        Sink::Output(position) => {
            debug_assert_eq!(netlist.outputs()[position], from);
            netlist.rewire_output(position, to);
        }
    }
}

/// Splitter statistics after legalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegalizeStats {
    /// Primitive logic cells (everything except Buf).
    pub gates: usize,
    /// Buf cells inserted (splitter arms / repeater candidates).
    pub buffers: usize,
    /// Logic depth of the legalized netlist.
    pub depth: usize,
}

/// Summarizes a legalized netlist.
///
/// # Errors
///
/// [`SwNetError::Invalid`] if the netlist fails [`Netlist::check`].
pub fn stats(netlist: &Netlist) -> Result<LegalizeStats, SwNetError> {
    let buffers = netlist
        .cells()
        .iter()
        .filter(|c| c.kind == CellKind::Buf)
        .count();
    Ok(LegalizeStats {
        gates: netlist.cell_count() - buffers,
        buffers,
        depth: netlist.depth()?,
    })
}

/// True when no net exceeds its driver's fan-out limit.
pub fn is_legal(netlist: &Netlist) -> bool {
    FanoutView::new(netlist).violations(netlist).is_empty()
}

/// The fan-out limit of whatever drives `net` (`None` for primary
/// inputs, which are unlimited).
pub fn driver_limit(netlist: &Netlist, net: crate::ir::NetId) -> Option<usize> {
    match netlist.driver(net) {
        Some(Driver::Cell { cell, .. }) => Some(netlist.cell(cell).kind.max_fanout()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::row_bits;
    use swgates::encoding::Bit;

    /// A net driven by one AND gate fanned out to `loads` XOR sinks.
    fn wide(loads: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let t = nl.net("t");
        nl.add_cell(CellKind::And, &[a, b], &[t]).unwrap();
        for i in 0..loads {
            let y = nl.net(&format!("y{i}"));
            nl.add_cell(CellKind::Xor, &[t, b], &[y]).unwrap();
            nl.mark_output(y);
        }
        nl
    }

    #[test]
    fn wide_fanout_becomes_legal_and_keeps_behaviour() {
        for loads in [3, 4, 5, 9, 17] {
            let nl = wide(loads);
            assert!(!is_legal(&nl));
            let legal = legalize(&nl).unwrap();
            assert!(is_legal(&legal), "loads={loads}:\n{legal}");
            for row in 0..4u64 {
                let bits = row_bits(row, 2);
                assert_eq!(
                    nl.evaluate(&bits).unwrap(),
                    legal.evaluate(&bits).unwrap(),
                    "loads={loads} row={row}"
                );
            }
        }
    }

    #[test]
    fn buffer_tree_depth_is_logarithmic() {
        let legal = legalize(&wide(16)).unwrap();
        let stats = stats(&legal).unwrap();
        // 16 sinks under fan-out 2 need ≥ 8 extra drivers; a balanced
        // tree keeps depth near log2(16) + 2 logic levels.
        assert!(stats.buffers >= 8, "{stats:?}");
        assert!(stats.depth <= 7, "{stats:?}");
    }

    #[test]
    fn inverter_fanout_gets_a_buffer() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let n = nl.net("n");
        let y = nl.net("y");
        nl.add_cell(CellKind::Inv, &[a], &[n]).unwrap();
        nl.add_cell(CellKind::Xor, &[n, n], &[y]).unwrap();
        nl.mark_output(y);
        let legal = legalize(&nl).unwrap();
        assert!(is_legal(&legal), "{legal}");
        assert_eq!(
            legal.evaluate(&[Bit::Zero]).unwrap(),
            vec![Bit::Zero],
            "¬a ⊕ ¬a = 0"
        );
    }

    #[test]
    fn legal_netlists_pass_through_unchanged() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let y = nl.net("y");
        nl.add_cell(CellKind::And, &[a, b], &[y]).unwrap();
        nl.mark_output(y);
        let legal = legalize(&nl).unwrap();
        assert_eq!(nl, legal);
    }

    #[test]
    fn outputs_can_ride_splitters() {
        // One AND output feeding two gates *and* a primary output: the
        // primary output must move onto the tree too.
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let t = nl.net("t");
        let u = nl.net("u");
        let v = nl.net("v");
        nl.add_cell(CellKind::And, &[a, b], &[t]).unwrap();
        nl.add_cell(CellKind::Inv, &[t], &[u]).unwrap();
        nl.add_cell(CellKind::Buf, &[t], &[v]).unwrap();
        nl.mark_output(t);
        nl.mark_output(u);
        nl.mark_output(v);
        let legal = legalize(&nl).unwrap();
        assert!(is_legal(&legal), "{legal}");
        for row in 0..4u64 {
            let bits = row_bits(row, 2);
            assert_eq!(nl.evaluate(&bits).unwrap(), legal.evaluate(&bits).unwrap());
        }
    }
}
