//! Truth-table → MAJ3/XOR/INV synthesis.
//!
//! Shannon decomposition with two majority-specific refinements:
//!
//! - **XOR detection**: when the two cofactors are complements
//!   (`f₁ = ¬f₀`), the whole function is `x ⊕ f₀` — one triangle XOR
//!   gate instead of a MUX. This is what keeps adder-style functions
//!   small on the paper's gate library.
//! - **Structural hashing**: sub-functions are memoized by their
//!   truth-table bits, and a complement hit reuses the existing net
//!   through one shared inverter. Multi-output tables share a single
//!   memo, so an adder's sum and carry share their common logic.
//!
//! AND/OR are kept as named cells because the triangle library
//! implements them directly as MAJ3 with a constant third input
//! (`swgates::circuit::GateKind` prices them identically to MAJ3).

use std::collections::HashMap;

use swgates::encoding::Bit;

use crate::ir::{CellKind, NetId, Netlist};
use crate::SwNetError;

/// Largest supported input count for a single table (2^12 rows = 64
/// words per table — synthesis stays instant, requests stay bounded).
pub const MAX_SYNTH_INPUTS: usize = 12;

/// A single-output truth table over `n` inputs, packed 64 rows per
/// word. Row `r` holds `f(r)` where input `i` is bit `i` of `r`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Table {
    n: usize,
    words: Vec<u64>,
}

/// The input bits of row `r` for an `n`-input table, lowest input
/// first — the decoding [`Table`] rows use everywhere.
pub fn row_bits(row: u64, n: usize) -> Vec<Bit> {
    (0..n).map(|i| Bit::from_bool(row >> i & 1 == 1)).collect()
}

impl Table {
    fn word_count(n: usize) -> usize {
        1usize << n.saturating_sub(6)
    }

    /// An all-zero table over `n` inputs.
    ///
    /// # Errors
    ///
    /// [`SwNetError::Invalid`] when `n` exceeds [`MAX_SYNTH_INPUTS`].
    pub fn zeros(n: usize) -> Result<Table, SwNetError> {
        if n > MAX_SYNTH_INPUTS {
            return Err(SwNetError::invalid(format!(
                "truth tables support at most {MAX_SYNTH_INPUTS} inputs, got {n}"
            )));
        }
        Ok(Table {
            n,
            words: vec![0; Table::word_count(n)],
        })
    }

    /// Parses a `0`/`1` string of length `2^n`, row 0 first.
    ///
    /// ```
    /// use swnet::synth::Table;
    /// let and = Table::parse("0001").unwrap();
    /// assert_eq!(and.bit(3), swgates::encoding::Bit::One);
    /// ```
    ///
    /// # Errors
    ///
    /// [`SwNetError::Invalid`] on non-binary characters or a length
    /// that is not a power of two in `1..=2^12`.
    pub fn parse(bits: &str) -> Result<Table, SwNetError> {
        let len = bits.len();
        if !len.is_power_of_two() || len < 2 {
            return Err(SwNetError::invalid(format!(
                "truth table length must be a power of two ≥ 2, got {len}"
            )));
        }
        let n = len.trailing_zeros() as usize;
        let mut table = Table::zeros(n)?;
        for (row, ch) in bits.chars().enumerate() {
            match ch {
                '0' => {}
                '1' => table.set(row as u64, Bit::One),
                other => {
                    return Err(SwNetError::invalid(format!(
                        "truth table may contain only 0 and 1, found `{other}` at position {row}"
                    )))
                }
            }
        }
        Ok(table)
    }

    /// Builds a table by evaluating `f` on every row.
    ///
    /// # Errors
    ///
    /// [`SwNetError::Invalid`] when `n` exceeds [`MAX_SYNTH_INPUTS`].
    pub fn from_fn(n: usize, mut f: impl FnMut(&[Bit]) -> Bit) -> Result<Table, SwNetError> {
        let mut table = Table::zeros(n)?;
        for row in 0..(1u64 << n) {
            table.set(row, f(&row_bits(row, n)));
        }
        Ok(table)
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Number of rows (`2^n`).
    pub fn rows(&self) -> u64 {
        1u64 << self.n
    }

    /// The output for row `row`.
    pub fn bit(&self, row: u64) -> Bit {
        let word = self.words[(row >> 6) as usize];
        Bit::from_bool(word >> (row & 63) & 1 == 1)
    }

    /// Sets the output for row `row`.
    pub fn set(&mut self, row: u64, value: Bit) {
        let word = &mut self.words[(row >> 6) as usize];
        match value {
            Bit::One => *word |= 1 << (row & 63),
            Bit::Zero => *word &= !(1 << (row & 63)),
        }
    }

    /// The `0`/`1` string form, row 0 first.
    pub fn bits_string(&self) -> String {
        (0..self.rows())
            .map(|row| self.bit(row).to_string())
            .collect()
    }

    fn mask(&self) -> u64 {
        if self.n >= 6 {
            u64::MAX
        } else {
            (1u64 << (1u64 << self.n)) - 1
        }
    }

    fn is_const(&self) -> Option<Bit> {
        let mask = self.mask();
        if self.words.iter().all(|&w| w & mask == 0) {
            Some(Bit::Zero)
        } else if self.words.iter().all(|&w| w & mask == mask) {
            Some(Bit::One)
        } else {
            None
        }
    }

    fn complement(&self) -> Table {
        let mask = self.mask();
        Table {
            n: self.n,
            words: self.words.iter().map(|&w| !w & mask).collect(),
        }
    }

    /// True when the output depends on input `var`.
    fn depends_on(&self, var: usize) -> bool {
        let (f0, f1) = self.cofactors(var);
        f0 != f1
    }

    /// The negative and positive cofactors with respect to input
    /// `var`, each over the same `n` inputs (the variable goes unused).
    fn cofactors(&self, var: usize) -> (Table, Table) {
        let mut f0 = Table {
            n: self.n,
            words: self.words.clone(),
        };
        let mut f1 = f0.clone();
        if var >= 6 {
            // The variable selects whole words.
            let stride = 1usize << (var - 6);
            let mut i = 0;
            while i < self.words.len() {
                for j in 0..stride {
                    f0.words[i + stride + j] = self.words[i + j];
                    f1.words[i + j] = self.words[i + stride + j];
                }
                i += 2 * stride;
            }
        } else {
            // The variable selects bit groups inside each word.
            let stride = 1u32 << var;
            let group: u64 = match stride {
                1 => 0x5555_5555_5555_5555,
                2 => 0x3333_3333_3333_3333,
                4 => 0x0f0f_0f0f_0f0f_0f0f,
                8 => 0x00ff_00ff_00ff_00ff,
                16 => 0x0000_ffff_0000_ffff,
                _ => 0x0000_0000_ffff_ffff,
            };
            for (slot0, (slot1, &word)) in f0
                .words
                .iter_mut()
                .zip(f1.words.iter_mut().zip(self.words.iter()))
            {
                let low = word & group;
                let high = word >> stride & group;
                *slot0 = low | low << stride;
                *slot1 = high | high << stride;
            }
        }
        (f0, f1)
    }
}

/// What a synthesized sub-function evaluates to.
#[derive(Clone, Copy)]
enum Value {
    Const(Bit),
    Net(NetId),
}

struct Synth {
    netlist: Netlist,
    input_nets: Vec<NetId>,
    /// Truth-table words → already-built net.
    memo: HashMap<Vec<u64>, NetId>,
    /// Net → its inverter output, shared across all complement hits.
    inverters: HashMap<NetId, NetId>,
    /// (kind, a, b) → output net, for structural 2-input gate sharing.
    gate_memo: HashMap<(CellKind, NetId, NetId), NetId>,
}

impl Synth {
    fn new(n: usize) -> Result<Synth, SwNetError> {
        let mut netlist = Netlist::new();
        let input_nets = (0..n)
            .map(|i| netlist.add_input(&format!("x{i}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Synth {
            netlist,
            input_nets,
            memo: HashMap::new(),
            inverters: HashMap::new(),
            gate_memo: HashMap::new(),
        })
    }

    fn invert(&mut self, net: NetId) -> NetId {
        if let Some(&out) = self.inverters.get(&net) {
            return out;
        }
        let out = self.netlist.fresh("n");
        self.netlist
            .add_cell(CellKind::Inv, &[net], &[out])
            .expect("fresh net is undriven");
        self.inverters.insert(net, out);
        out
    }

    /// Emits a 2-input gate with constant folding and structural
    /// sharing (commutative kinds are canonicalized by operand order).
    fn apply(&mut self, kind: CellKind, a: Value, b: Value) -> Value {
        use CellKind::{And, Or, Xor};
        match (kind, a, b) {
            (And, Value::Const(Bit::Zero), _) | (And, _, Value::Const(Bit::Zero)) => {
                return Value::Const(Bit::Zero)
            }
            (And, Value::Const(Bit::One), other) | (And, other, Value::Const(Bit::One)) => {
                return other
            }
            (Or, Value::Const(Bit::One), _) | (Or, _, Value::Const(Bit::One)) => {
                return Value::Const(Bit::One)
            }
            (Or, Value::Const(Bit::Zero), other) | (Or, other, Value::Const(Bit::Zero)) => {
                return other
            }
            (Xor, Value::Const(Bit::Zero), other) | (Xor, other, Value::Const(Bit::Zero)) => {
                return other
            }
            (Xor, Value::Const(Bit::One), Value::Net(net))
            | (Xor, Value::Net(net), Value::Const(Bit::One)) => {
                return Value::Net(self.invert(net))
            }
            (Xor, Value::Const(x), Value::Const(y)) => return Value::Const(Bit::xor(x, y)),
            _ => {}
        }
        let (Value::Net(a), Value::Net(b)) = (a, b) else {
            unreachable!("constant operands were folded above");
        };
        if a == b {
            return match kind {
                And | Or => Value::Net(a),
                Xor => Value::Const(Bit::Zero),
                _ => unreachable!("apply only emits and/or/xor"),
            };
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&out) = self.gate_memo.get(&(kind, a, b)) {
            return Value::Net(out);
        }
        let out = self.netlist.fresh("n");
        self.netlist
            .add_cell(kind, &[a, b], &[out])
            .expect("fresh net is undriven");
        self.gate_memo.insert((kind, a, b), out);
        Value::Net(out)
    }

    fn build(&mut self, table: &Table) -> Value {
        if let Some(bit) = table.is_const() {
            return Value::Const(bit);
        }
        if let Some(&net) = self.memo.get(&table.words) {
            return Value::Net(net);
        }
        let complement = table.complement();
        if let Some(&net) = self.memo.get(&complement.words) {
            let out = self.invert(net);
            self.memo.insert(table.words.clone(), out);
            return Value::Net(out);
        }
        // Single-variable functions need no decomposition.
        let top = (0..table.inputs())
            .rev()
            .find(|&var| table.depends_on(var))
            .expect("non-constant table depends on some input");
        let x = Value::Net(self.input_nets[top]);
        let (f0, f1) = table.cofactors(top);
        let result = if f1 == f0.complement() {
            // f = x ⊕ f0 — the triangle XOR shortcut.
            let low = self.build(&f0);
            self.apply(CellKind::Xor, x, low)
        } else {
            // f = (x ∧ f1) ∨ (¬x ∧ f0). Constant cofactors fold inside
            // `apply`, so AND/OR degenerate to wires automatically.
            let high = self.build(&f1);
            let low = self.build(&f0);
            let x_net = self.input_nets[top];
            let not_x = Value::Net(self.invert(x_net));
            let take_high = self.apply(CellKind::And, x, high);
            let take_low = self.apply(CellKind::And, not_x, low);
            self.apply(CellKind::Or, take_high, take_low)
        };
        if let Value::Net(net) = result {
            self.memo.insert(table.words.clone(), net);
        }
        result
    }

    /// Materializes a value as a driven net (constants become
    /// `x ⊕ x` / `x ⊙ x` on input 0, the only constant generators the
    /// gate library offers).
    fn materialize(&mut self, value: Value) -> NetId {
        match value {
            Value::Net(net) => net,
            Value::Const(bit) => {
                let x0 = self.input_nets[0];
                let kind = match bit {
                    Bit::Zero => CellKind::Xor,
                    Bit::One => CellKind::Xnor,
                };
                let out = self.netlist.fresh("c");
                self.netlist
                    .add_cell(kind, &[x0, x0], &[out])
                    .expect("fresh net is undriven");
                out
            }
        }
    }
}

/// Synthesizes one netlist computing every table in `tables` (all over
/// the same input count), output `k` driven by `tables[k]`. Logic is
/// shared across outputs through a common structural-hashing memo.
///
/// # Errors
///
/// [`SwNetError::Invalid`] when `tables` is empty, the input counts
/// disagree, or an input count is 0 or exceeds [`MAX_SYNTH_INPUTS`].
pub fn synthesize(tables: &[Table]) -> Result<Netlist, SwNetError> {
    let Some(first) = tables.first() else {
        return Err(SwNetError::invalid("need at least one truth table"));
    };
    let n = first.inputs();
    if n == 0 {
        return Err(SwNetError::invalid(
            "constant functions need at least one input to reference",
        ));
    }
    if tables.iter().any(|t| t.inputs() != n) {
        return Err(SwNetError::invalid(
            "all truth tables must have the same number of inputs",
        ));
    }
    let mut synth = Synth::new(n)?;
    let mut outputs = Vec::with_capacity(tables.len());
    for table in tables {
        let value = synth.build(table);
        outputs.push(synth.materialize(value));
    }
    let mut netlist = synth.netlist;
    for (k, net) in outputs.into_iter().enumerate() {
        // Give outputs stable names where possible; generated nets keep
        // their `$` names but gain a `y<k>` alias via output order.
        let _ = k;
        netlist.mark_output(net);
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(tables: &[Table]) {
        let netlist = synthesize(tables).unwrap();
        let n = tables[0].inputs();
        for row in 0..(1u64 << n) {
            let out = netlist.evaluate(&row_bits(row, n)).unwrap();
            for (k, table) in tables.iter().enumerate() {
                assert_eq!(
                    out[k],
                    table.bit(row),
                    "output {k} row {row} of {}",
                    table.bits_string()
                );
            }
        }
    }

    #[test]
    fn parse_round_trips_bits_string() {
        let table = Table::parse("01101001").unwrap();
        assert_eq!(table.inputs(), 3);
        assert_eq!(table.bits_string(), "01101001");
        assert!(Table::parse("012").is_err());
        assert!(Table::parse("0").is_err());
        assert!(Table::parse("011").is_err());
    }

    #[test]
    fn cofactors_split_rows_correctly() {
        // f = x2 (8 rows): cofactor on x2 gives constants.
        let table = Table::parse("00001111").unwrap();
        let (f0, f1) = table.cofactors(2);
        assert_eq!(f0.is_const(), Some(Bit::Zero));
        assert_eq!(f1.is_const(), Some(Bit::One));
        assert!(table.depends_on(2));
        assert!(!table.depends_on(0));
    }

    #[test]
    fn cofactors_work_across_word_boundaries() {
        // 7 inputs: 128 rows, 2 words; f = x6.
        let table = Table::from_fn(7, |bits| bits[6]).unwrap();
        let (f0, f1) = table.cofactors(6);
        assert_eq!(f0.is_const(), Some(Bit::Zero));
        assert_eq!(f1.is_const(), Some(Bit::One));
    }

    #[test]
    fn synthesizes_every_two_input_function() {
        for code in 0..16u32 {
            let table = Table::from_fn(2, |bits| {
                let row = bits[0].as_u8() | bits[1].as_u8() << 1;
                Bit::from_bool(code >> row & 1 == 1)
            })
            .unwrap();
            verify(&[table]);
        }
    }

    #[test]
    fn synthesizes_every_three_input_function() {
        for code in 0..256u32 {
            let table = Table::from_fn(3, |bits| {
                let row = bits[0].as_u8() | bits[1].as_u8() << 1 | bits[2].as_u8() << 2;
                Bit::from_bool(code >> row & 1 == 1)
            })
            .unwrap();
            verify(&[table]);
        }
    }

    #[test]
    fn xor_detection_keeps_parity_small() {
        // 6-input parity is 5 XOR gates under detection; a plain MUX
        // tree would need dozens of cells.
        let parity = Table::from_fn(6, |bits| {
            Bit::from_bool(bits.iter().filter(|b| b.as_bool()).count() % 2 == 1)
        })
        .unwrap();
        let netlist = synthesize(std::slice::from_ref(&parity)).unwrap();
        assert_eq!(netlist.cell_count(), 5, "{netlist}");
        verify(&[parity]);
    }

    #[test]
    fn multi_output_tables_share_logic() {
        // Full adder: sum and carry over the same 3 inputs.
        let sum = Table::parse("01101001").unwrap();
        let carry = Table::parse("00010111").unwrap();
        verify(&[sum.clone(), carry.clone()]);
        let both = synthesize(&[sum.clone(), carry.clone()]).unwrap();
        let separate =
            synthesize(&[sum]).unwrap().cell_count() + synthesize(&[carry]).unwrap().cell_count();
        assert!(
            both.cell_count() <= separate,
            "shared {} vs separate {separate}",
            both.cell_count()
        );
    }

    #[test]
    fn constant_tables_synthesize_via_xor_xnor() {
        let zero = Table::zeros(2).unwrap();
        let one = zero.complement();
        verify(&[zero, one]);
    }

    #[test]
    fn seven_input_tables_cross_word_boundaries() {
        let majority7 = Table::from_fn(7, |bits| {
            Bit::from_bool(bits.iter().filter(|b| b.as_bool()).count() >= 4)
        })
        .unwrap();
        verify(&[majority7]);
    }

    #[test]
    fn input_count_limits_are_enforced() {
        assert!(Table::zeros(MAX_SYNTH_INPUTS).is_ok());
        assert!(Table::zeros(MAX_SYNTH_INPUTS + 1).is_err());
        assert!(synthesize(&[]).is_err());
        let a = Table::zeros(2).unwrap();
        let b = Table::zeros(3).unwrap();
        assert!(synthesize(&[a, b]).is_err());
    }
}
