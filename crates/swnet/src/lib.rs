//! swnet — a netlist IR and MAJ-synthesis compiler for the triangle
//! spin-wave gate library.
//!
//! The paper's fan-out-of-2 triangle gates exist so gates can
//! *compose*. This crate supplies the composition layer the hand-built
//! circuits in `swgates` stop short of:
//!
//! - [`ir`] — a netlist IR with named nets, multi-output cells
//!   (full/half-adder macros), and a [`ir::FanoutView`] that makes
//!   fan-out-of-2 legality a structural query.
//! - [`text`] — a small structural netlist text format and a JSON form,
//!   both round-trippable, with byte-offset parse errors.
//! - [`synth`] — truth-table → MAJ3/XOR/INV synthesis via Shannon
//!   decomposition with XOR detection and structural hashing.
//! - [`legalize`] — splitter/repeater-tree insertion that makes any
//!   netlist obey the triangle-gate fan-out limits.
//! - [`effort`] — a logical-effort-style amplitude model that decides
//!   which buffers must actively regenerate (repeaters) and which are
//!   passive splitter arms, then prices the result against the
//!   16 nm/7 nm CMOS baselines in `swperf::cmos`.
//! - [`lower`] — conversion to and from [`swgates::circuit::Circuit`]
//!   so compiled netlists run through the existing evaluation path.
//! - [`arith`] — generated adders and an array multiplier matching the
//!   hand-built `swgates` circuits gate for gate.
//! - [`sim`] — a 64-way word-parallel circuit simulator for
//!   exhaustive/bulk verification.
//!
//! ```
//! use swnet::synth::Table;
//! use swnet::{legalize, lower};
//!
//! # fn main() -> Result<(), swnet::SwNetError> {
//! // Compile a 3-input truth table (one-bit full-adder sum, 0b10010110)
//! // into a fan-out-legal spin-wave circuit.
//! let table = Table::parse("01101001")?;
//! let netlist = swnet::synth::synthesize(&[table.clone()])?;
//! let legal = legalize::legalize(&netlist)?;
//! let circuit = lower::to_circuit(&legal)?;
//! assert!(circuit.fanout_violations().is_empty());
//! for row in 0..8u64 {
//!     let bits = swnet::synth::row_bits(row, 3);
//!     assert_eq!(circuit.evaluate(&bits)?[0], table.bit(row));
//! }
//! # Ok(())
//! # }
//! ```

pub mod arith;
pub mod effort;
pub mod ir;
pub mod legalize;
pub mod lower;
pub mod sim;
pub mod synth;
pub mod text;

use std::fmt;

/// Errors from netlist construction, parsing, synthesis, and lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwNetError {
    /// A structural rule was broken (double driver, cycle, arity…).
    Invalid(String),
    /// The text or JSON format failed to parse; `offset` is the byte
    /// position of the error in the input.
    Parse {
        /// Byte offset of the error in the source text.
        offset: usize,
        /// What went wrong.
        message: String,
    },
}

impl SwNetError {
    pub(crate) fn invalid(message: impl Into<String>) -> SwNetError {
        SwNetError::Invalid(message.into())
    }

    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> SwNetError {
        SwNetError::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for SwNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwNetError::Invalid(message) => write!(f, "invalid netlist: {message}"),
            SwNetError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for SwNetError {}

impl From<swgates::SwGateError> for SwNetError {
    fn from(err: swgates::SwGateError) -> SwNetError {
        SwNetError::Invalid(err.to_string())
    }
}
