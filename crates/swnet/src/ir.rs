//! The netlist intermediate representation: named nets, multi-output
//! cells, and the structural fan-out view.
//!
//! Where [`swgates::circuit::Circuit`] is a strictly feed-forward gate
//! list (every input must reference an earlier gate), a [`Netlist`]
//! wires **cells** — which may have several outputs, like a full-adder
//! macro — through **named nets**, in any order. Forward references are
//! legal; [`Netlist::check`] topologically sorts the design and rejects
//! combinational cycles and undriven or doubly-driven nets.
//!
//! The [`FanoutView`] materializes the sink list of every net once, so
//! the paper's fan-out-of-2 legality question ("does any triangle-gate
//! output drive more than two loads?") is a structural query instead of
//! an after-the-fact scan of the whole gate list.

use std::collections::HashMap;
use std::fmt;

use swgates::circuit::GateKind;
use swgates::encoding::Bit;

use crate::SwNetError;

/// A net index inside one [`Netlist`]. Nets are interned by name; the
/// id is stable for the lifetime of the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The net's index into [`Netlist`] storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The function of one netlist cell.
///
/// The primitive kinds are exactly the triangle-gate library of the
/// paper (MAJ3/XOR and the derived gates, all fan-out-of-2, plus the
/// inverter and the repeater/buffer of §III-A). `FullAdder` and
/// `HalfAdder` are **multi-output macro cells**: they carry two output
/// nets (sum, carry) and expand into primitives in
/// [`Netlist::elaborate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// 3-input majority (triangle MAJ3).
    Maj3,
    /// 2-input XOR (triangle XOR).
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2-input AND (MAJ3 with the third input tied to 0).
    And,
    /// 2-input OR (MAJ3 with the third input tied to 1).
    Or,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// Inverter (an (n+½)λ waveguide section).
    Inv,
    /// Buffer: a directional-coupler splitter arm, possibly with a
    /// repeater regenerating the wave (\[36\], \[37\]). Logically the
    /// identity; the effort model decides which buffers need active
    /// regeneration.
    Buf,
    /// Full-adder macro: inputs `[a, b, cin]`, outputs `[sum, carry]`.
    FullAdder,
    /// Half-adder macro: inputs `[a, b]`, outputs `[sum, carry]`.
    HalfAdder,
}

impl CellKind {
    /// Every kind, in the order the text format documents them.
    pub const ALL: [CellKind; 11] = [
        CellKind::Maj3,
        CellKind::Xor,
        CellKind::Xnor,
        CellKind::And,
        CellKind::Or,
        CellKind::Nand,
        CellKind::Nor,
        CellKind::Inv,
        CellKind::Buf,
        CellKind::FullAdder,
        CellKind::HalfAdder,
    ];

    /// The operation name used by the text and JSON formats.
    pub fn op_name(self) -> &'static str {
        match self {
            CellKind::Maj3 => "maj3",
            CellKind::Xor => "xor",
            CellKind::Xnor => "xnor",
            CellKind::And => "and",
            CellKind::Or => "or",
            CellKind::Nand => "nand",
            CellKind::Nor => "nor",
            CellKind::Inv => "inv",
            CellKind::Buf => "buf",
            CellKind::FullAdder => "fa",
            CellKind::HalfAdder => "ha",
        }
    }

    /// Parses an operation name from the text/JSON formats.
    pub fn from_op_name(name: &str) -> Option<CellKind> {
        CellKind::ALL.iter().copied().find(|k| k.op_name() == name)
    }

    /// Number of input pins.
    pub fn input_arity(self) -> usize {
        match self {
            CellKind::Maj3 | CellKind::FullAdder => 3,
            CellKind::Inv | CellKind::Buf => 1,
            _ => 2,
        }
    }

    /// Number of output pins.
    pub fn output_arity(self) -> usize {
        match self {
            CellKind::FullAdder | CellKind::HalfAdder => 2,
            _ => 1,
        }
    }

    /// True for macro cells that [`Netlist::elaborate`] expands.
    pub fn is_macro(self) -> bool {
        matches!(self, CellKind::FullAdder | CellKind::HalfAdder)
    }

    /// Maximum loads one output of this cell drives without splitting:
    /// the paper's fan-out of 2 for the triangle gates and repeaters,
    /// 1 for the inverter (a waveguide section has a single far end).
    pub fn max_fanout(self) -> usize {
        match self {
            CellKind::Inv => 1,
            _ => 2,
        }
    }

    /// The [`GateKind`] a primitive cell lowers to.
    ///
    /// # Panics
    ///
    /// Panics on macro cells; elaborate first.
    pub fn gate_kind(self) -> GateKind {
        match self {
            CellKind::Maj3 => GateKind::Maj3,
            CellKind::Xor => GateKind::Xor,
            CellKind::Xnor => GateKind::Xnor,
            CellKind::And => GateKind::And,
            CellKind::Or => GateKind::Or,
            CellKind::Nand => GateKind::Nand,
            CellKind::Nor => GateKind::Nor,
            CellKind::Inv => GateKind::Not,
            CellKind::Buf => GateKind::Repeater,
            CellKind::FullAdder | CellKind::HalfAdder => {
                panic!("macro cell {self:?} must be elaborated before lowering")
            }
        }
    }

    /// Evaluates the cell on its inputs, producing one bit per output
    /// pin.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_arity()`.
    pub fn eval(self, inputs: &[Bit]) -> Vec<Bit> {
        assert_eq!(
            inputs.len(),
            self.input_arity(),
            "arity mismatch for {self:?}"
        );
        match self {
            CellKind::FullAdder => {
                let sum = Bit::xor(Bit::xor(inputs[0], inputs[1]), inputs[2]);
                let carry = Bit::majority(inputs[0], inputs[1], inputs[2]);
                vec![sum, carry]
            }
            CellKind::HalfAdder => {
                let sum = Bit::xor(inputs[0], inputs[1]);
                let carry = Bit::from_bool(inputs[0].as_bool() && inputs[1].as_bool());
                vec![sum, carry]
            }
            _ => vec![self.gate_kind().eval(inputs)],
        }
    }
}

/// What produces a net's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Primary input at this position of the input list.
    Input(usize),
    /// Output pin `pin` of cell `cell`.
    Cell {
        /// Index into [`Netlist::cell`].
        cell: usize,
        /// Output-pin position on that cell.
        pin: usize,
    },
}

/// One cell instance: a kind plus its input and output nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The cell's function.
    pub kind: CellKind,
    /// Input nets, one per input pin.
    pub ins: Vec<NetId>,
    /// Output nets, one per output pin.
    pub outs: Vec<NetId>,
}

/// A named-net, multi-output-cell netlist.
///
/// ```
/// use swnet::ir::{CellKind, Netlist};
/// use swgates::encoding::Bit;
///
/// # fn main() -> Result<(), swnet::SwNetError> {
/// let mut nl = Netlist::new();
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let cin = nl.add_input("cin")?;
/// let sum = nl.net("sum");
/// let cout = nl.net("cout");
/// nl.add_cell(CellKind::FullAdder, &[a, b, cin], &[sum, cout])?;
/// nl.mark_output(sum);
/// nl.mark_output(cout);
/// let out = nl.evaluate(&[Bit::One, Bit::One, Bit::Zero])?;
/// assert_eq!(out, vec![Bit::Zero, Bit::One]); // 1 + 1 = 0b10
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    names: Vec<String>,
    by_name: HashMap<String, NetId>,
    drivers: Vec<Option<Driver>>,
    cells: Vec<Cell>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    fresh_counter: u32,
}

impl PartialEq for Netlist {
    /// Structural equality *by net name*: the same inputs, outputs, and
    /// cells in the same order, wired through nets of the same names.
    /// Interning order (the numeric `NetId`s) and the fresh-name
    /// counter are bookkeeping, not structure — so a netlist printed
    /// and reparsed compares equal to its source even though the parser
    /// interns nets in reading order.
    fn eq(&self, other: &Netlist) -> bool {
        let nets_eq = |a: &[NetId], b: &[NetId]| {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|(&x, &y)| self.name(x) == other.name(y))
        };
        nets_eq(&self.inputs, &other.inputs)
            && nets_eq(&self.outputs, &other.outputs)
            && self.cells.len() == other.cells.len()
            && self.cells.iter().zip(&other.cells).all(|(x, y)| {
                x.kind == y.kind && nets_eq(&x.ins, &y.ins) && nets_eq(&x.outs, &y.outs)
            })
    }
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Netlist {
        Netlist::default()
    }

    /// Interns `name`, creating the net on first use.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NetId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        self.drivers.push(None);
        id
    }

    /// Creates a fresh net with a generated `$<prefix><n>` name that
    /// cannot collide with an existing net.
    pub fn fresh(&mut self, prefix: &str) -> NetId {
        loop {
            let name = format!("${prefix}{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.by_name.contains_key(&name) {
                return self.net(&name);
            }
        }
    }

    /// Looks a net up by name without creating it.
    pub fn find(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// The net's name.
    pub fn name(&self, net: NetId) -> &str {
        &self.names[net.index()]
    }

    /// The net's driver, if it has one yet.
    pub fn driver(&self, net: NetId) -> Option<Driver> {
        self.drivers[net.index()]
    }

    /// Declares a primary input. The net must not be driven already.
    ///
    /// # Errors
    ///
    /// [`SwNetError::Invalid`] if the net already has a driver.
    pub fn add_input(&mut self, name: &str) -> Result<NetId, SwNetError> {
        let id = self.net(name);
        if self.drivers[id.index()].is_some() {
            return Err(SwNetError::invalid(format!(
                "net `{name}` is already driven and cannot be an input"
            )));
        }
        self.drivers[id.index()] = Some(Driver::Input(self.inputs.len()));
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a cell, wiring `ins` and `outs` by net. Output nets must be
    /// undriven so far (single-driver rule).
    ///
    /// # Errors
    ///
    /// [`SwNetError::Invalid`] on arity mismatch or double-driven nets.
    pub fn add_cell(
        &mut self,
        kind: CellKind,
        ins: &[NetId],
        outs: &[NetId],
    ) -> Result<usize, SwNetError> {
        if ins.len() != kind.input_arity() {
            return Err(SwNetError::invalid(format!(
                "{} takes {} inputs, got {}",
                kind.op_name(),
                kind.input_arity(),
                ins.len()
            )));
        }
        if outs.len() != kind.output_arity() {
            return Err(SwNetError::invalid(format!(
                "{} produces {} outputs, got {}",
                kind.op_name(),
                kind.output_arity(),
                outs.len()
            )));
        }
        let cell = self.cells.len();
        for (pin, &net) in outs.iter().enumerate() {
            if self.drivers[net.index()].is_some() {
                return Err(SwNetError::invalid(format!(
                    "net `{}` has two drivers",
                    self.name(net)
                )));
            }
            self.drivers[net.index()] = Some(Driver::Cell { cell, pin });
        }
        self.cells.push(Cell {
            kind,
            ins: ins.to_vec(),
            outs: outs.to_vec(),
        });
        Ok(cell)
    }

    /// Declares a primary output (a net may be listed more than once).
    pub fn mark_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Repoints input pin `pin` of cell `cell` at `net` (used by the
    /// legalizer to move sinks onto splitter trees).
    pub(crate) fn rewire_input(&mut self, cell: usize, pin: usize, net: NetId) {
        self.cells[cell].ins[pin] = net;
    }

    /// Repoints primary output `position` at `net`.
    pub(crate) fn rewire_output(&mut self, position: usize, net: NetId) {
        self.outputs[position] = net;
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.names.len()
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Cell `index`.
    pub fn cell(&self, index: usize) -> &Cell {
        &self.cells[index]
    }

    /// All cells, in insertion order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Validates the netlist and returns the cells in a deterministic
    /// topological order (lowest cell index first among ready cells, so
    /// an already-feed-forward netlist keeps its insertion order).
    ///
    /// # Errors
    ///
    /// [`SwNetError::Invalid`] on undriven nets or combinational
    /// cycles.
    pub fn check(&self) -> Result<Vec<usize>, SwNetError> {
        for (index, driver) in self.drivers.iter().enumerate() {
            if driver.is_none() {
                return Err(SwNetError::invalid(format!(
                    "net `{}` is never driven",
                    self.names[index]
                )));
            }
        }
        // Kahn's algorithm over cells; a min-heap keeps the order
        // deterministic and insertion-stable.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut pending: Vec<usize> = self
            .cells
            .iter()
            .map(|cell| {
                cell.ins
                    .iter()
                    .filter(|&&net| matches!(self.drivers[net.index()], Some(Driver::Cell { .. })))
                    .count()
            })
            .collect();
        let mut ready: BinaryHeap<Reverse<usize>> = pending
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(i, _)| Reverse(i))
            .collect();
        let view = FanoutView::new(self);
        let mut order = Vec::with_capacity(self.cells.len());
        while let Some(Reverse(cell)) = ready.pop() {
            order.push(cell);
            for &out in &self.cells[cell].outs {
                for sink in view.sinks(out) {
                    if let Sink::Cell { cell: consumer, .. } = *sink {
                        pending[consumer] -= 1;
                        if pending[consumer] == 0 {
                            ready.push(Reverse(consumer));
                        }
                    }
                }
            }
        }
        if order.len() != self.cells.len() {
            let stuck = (0..self.cells.len())
                .find(|&i| pending[i] > 0)
                .expect("some cell is unordered");
            return Err(SwNetError::invalid(format!(
                "combinational cycle through `{}`",
                self.name(self.cells[stuck].outs[0])
            )));
        }
        Ok(order)
    }

    /// Evaluates the netlist on a primary-input assignment.
    ///
    /// # Errors
    ///
    /// [`SwNetError::Invalid`] if the assignment length mismatches or
    /// the netlist fails [`check`](Netlist::check).
    pub fn evaluate(&self, inputs: &[Bit]) -> Result<Vec<Bit>, SwNetError> {
        if inputs.len() != self.inputs.len() {
            return Err(SwNetError::invalid(format!(
                "netlist has {} inputs, assignment has {}",
                self.inputs.len(),
                inputs.len()
            )));
        }
        let order = self.check()?;
        let mut values: Vec<Option<Bit>> = vec![None; self.names.len()];
        for (position, &net) in self.inputs.iter().enumerate() {
            values[net.index()] = Some(inputs[position]);
        }
        for cell_index in order {
            let cell = &self.cells[cell_index];
            let args: Vec<Bit> = cell
                .ins
                .iter()
                .map(|net| values[net.index()].expect("topological order"))
                .collect();
            for (pin, bit) in cell.kind.eval(&args).into_iter().enumerate() {
                values[cell.outs[pin].index()] = Some(bit);
            }
        }
        Ok(self
            .outputs
            .iter()
            .map(|net| values[net.index()].expect("outputs are driven"))
            .collect())
    }

    /// Expands macro cells (full/half adders) into primitives, keeping
    /// net names, input/output order, and behaviour. Primitive-only
    /// netlists come back structurally identical.
    pub fn elaborate(&self) -> Netlist {
        let mut out = Netlist::new();
        for &input in &self.inputs {
            out.add_input(self.name(input))
                .expect("input nets are uniquely named");
        }
        for cell in &self.cells {
            let ins: Vec<NetId> = cell.ins.iter().map(|&n| out.net(self.name(n))).collect();
            let outs: Vec<NetId> = cell.outs.iter().map(|&n| out.net(self.name(n))).collect();
            match cell.kind {
                CellKind::FullAdder => {
                    // Same primitive order as the hand-built
                    // `Circuit::full_adder`: XOR(a,b), XOR(t,cin),
                    // MAJ3(a,b,cin).
                    let t = out.fresh("t");
                    out.add_cell(CellKind::Xor, &[ins[0], ins[1]], &[t])
                        .expect("valid by construction");
                    out.add_cell(CellKind::Xor, &[t, ins[2]], &[outs[0]])
                        .expect("valid by construction");
                    out.add_cell(CellKind::Maj3, &[ins[0], ins[1], ins[2]], &[outs[1]])
                        .expect("valid by construction");
                }
                CellKind::HalfAdder => {
                    out.add_cell(CellKind::Xor, &[ins[0], ins[1]], &[outs[0]])
                        .expect("valid by construction");
                    out.add_cell(CellKind::And, &[ins[0], ins[1]], &[outs[1]])
                        .expect("valid by construction");
                }
                kind => {
                    out.add_cell(kind, &ins, &outs)
                        .expect("valid by construction");
                }
            }
        }
        for &output in &self.outputs {
            let net = out.net(self.name(output));
            out.mark_output(net);
        }
        out
    }

    /// Logic depth: the longest input-to-output cell chain (macro cells
    /// count as their elaborated depth: 2 for adders).
    pub fn depth(&self) -> Result<usize, SwNetError> {
        let order = self.check()?;
        let mut net_depth = vec![0usize; self.names.len()];
        for cell_index in order {
            let cell = &self.cells[cell_index];
            let at = cell
                .ins
                .iter()
                .map(|net| net_depth[net.index()])
                .max()
                .unwrap_or(0);
            let weight = if cell.kind.is_macro() { 2 } else { 1 };
            for &out in &cell.outs {
                net_depth[out.index()] = at + weight;
            }
        }
        Ok(self
            .outputs
            .iter()
            .map(|net| net_depth[net.index()])
            .max()
            .unwrap_or(0))
    }
}

impl fmt::Display for Netlist {
    /// Renders the structural text format (parseable by
    /// [`crate::text::parse`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.inputs.is_empty() {
            write!(f, "input")?;
            for &net in &self.inputs {
                write!(f, " {}", self.name(net))?;
            }
            writeln!(f)?;
        }
        if !self.outputs.is_empty() {
            write!(f, "output")?;
            for &net in &self.outputs {
                write!(f, " {}", self.name(net))?;
            }
            writeln!(f)?;
        }
        for cell in &self.cells {
            let outs: Vec<&str> = cell.outs.iter().map(|&n| self.name(n)).collect();
            let ins: Vec<&str> = cell.ins.iter().map(|&n| self.name(n)).collect();
            writeln!(
                f,
                "{} = {} {}",
                outs.join(" "),
                cell.kind.op_name(),
                ins.join(" ")
            )?;
        }
        Ok(())
    }
}

/// One load on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Input pin `pin` of cell `cell`.
    Cell {
        /// Index into [`Netlist::cell`].
        cell: usize,
        /// Input-pin position on that cell.
        pin: usize,
    },
    /// Primary output at this position of the output list.
    Output(usize),
}

/// A net's fan-out exceeding what its driver supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The overloaded net.
    pub net: NetId,
    /// Its name (kept for reporting after the netlist is rewritten).
    pub name: String,
    /// Loads on the net.
    pub fanout: usize,
    /// What the driving cell supports.
    pub limit: usize,
}

/// Per-net sink adjacency, built once in one pass over the cells
/// (quaigh-style): fan-out questions become slice lookups.
#[derive(Debug, Clone, Default)]
pub struct FanoutView {
    sinks: Vec<Vec<Sink>>,
}

impl FanoutView {
    /// Builds the view for `netlist`.
    pub fn new(netlist: &Netlist) -> FanoutView {
        let mut sinks = vec![Vec::new(); netlist.net_count()];
        for (cell, instance) in netlist.cells.iter().enumerate() {
            for (pin, &net) in instance.ins.iter().enumerate() {
                sinks[net.index()].push(Sink::Cell { cell, pin });
            }
        }
        for (position, &net) in netlist.outputs.iter().enumerate() {
            sinks[net.index()].push(Sink::Output(position));
        }
        FanoutView { sinks }
    }

    /// The loads on `net`, in deterministic (cell-index, then
    /// primary-output) order.
    pub fn sinks(&self, net: NetId) -> &[Sink] {
        &self.sinks[net.index()]
    }

    /// Number of loads on `net`.
    pub fn fanout(&self, net: NetId) -> usize {
        self.sinks[net.index()].len()
    }

    /// Nets whose fan-out exceeds their driver's limit. Primary inputs
    /// are exempt (externally buffered, as in `swgates::circuit`).
    pub fn violations(&self, netlist: &Netlist) -> Vec<Violation> {
        let mut violations = Vec::new();
        for index in 0..netlist.net_count() {
            let net = NetId(index as u32);
            let limit = match netlist.driver(net) {
                Some(Driver::Cell { cell, .. }) => netlist.cell(cell).kind.max_fanout(),
                _ => continue,
            };
            let fanout = self.fanout(net);
            if fanout > limit {
                violations.push(Violation {
                    net,
                    name: netlist.name(net).to_string(),
                    fanout,
                    limit,
                });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgates::encoding::all_patterns;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let cin = nl.add_input("cin").unwrap();
        let sum = nl.net("sum");
        let cout = nl.net("cout");
        nl.add_cell(CellKind::FullAdder, &[a, b, cin], &[sum, cout])
            .unwrap();
        nl.mark_output(sum);
        nl.mark_output(cout);
        nl
    }

    #[test]
    fn cell_kind_round_trips_names() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_op_name(kind.op_name()), Some(kind));
        }
        assert_eq!(CellKind::from_op_name("frobnicate"), None);
    }

    #[test]
    fn full_adder_macro_adds() {
        let nl = full_adder();
        for pattern in all_patterns::<3>() {
            let out = nl.evaluate(&pattern).unwrap();
            let total = pattern.iter().map(|b| b.as_u8() as usize).sum::<usize>();
            assert_eq!(out[0].as_u8() as usize, total % 2, "sum for {pattern:?}");
            assert_eq!(out[1].as_u8() as usize, total / 2, "carry for {pattern:?}");
        }
    }

    #[test]
    fn elaboration_preserves_behaviour_and_expands_macros() {
        let nl = full_adder();
        let flat = nl.elaborate();
        assert_eq!(flat.cell_count(), 3);
        assert!(flat.cells().iter().all(|c| !c.kind.is_macro()));
        for pattern in all_patterns::<3>() {
            assert_eq!(
                nl.evaluate(&pattern).unwrap(),
                flat.evaluate(&pattern).unwrap()
            );
        }
    }

    #[test]
    fn forward_references_are_legal() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        // The consumer of `t` is added before the producer.
        let t = nl.net("t");
        let y = nl.net("y");
        nl.add_cell(CellKind::Inv, &[t], &[y]).unwrap();
        nl.add_cell(CellKind::And, &[a, b], &[t]).unwrap();
        nl.mark_output(y);
        let order = nl.check().unwrap();
        assert_eq!(order, vec![1, 0], "producer must sort before consumer");
        assert_eq!(nl.evaluate(&[Bit::One, Bit::One]).unwrap(), vec![Bit::Zero]);
    }

    #[test]
    fn undriven_and_doubly_driven_nets_are_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let ghost = nl.net("ghost");
        let y = nl.net("y");
        nl.add_cell(CellKind::And, &[a, ghost], &[y]).unwrap();
        nl.mark_output(y);
        let err = nl.check().unwrap_err().to_string();
        assert!(err.contains("ghost"), "{err}");

        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let y = nl.net("y");
        nl.add_cell(CellKind::Inv, &[a], &[y]).unwrap();
        assert!(nl.add_cell(CellKind::Buf, &[a], &[y]).is_err());
        assert!(nl.add_input("y").is_err());
    }

    #[test]
    fn cycles_are_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let p = nl.net("p");
        let q = nl.net("q");
        nl.add_cell(CellKind::And, &[a, q], &[p]).unwrap();
        nl.add_cell(CellKind::Buf, &[p], &[q]).unwrap();
        nl.mark_output(q);
        let err = nl.check().unwrap_err().to_string();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn fanout_view_counts_all_sinks() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let t = nl.net("t");
        let u = nl.net("u");
        let v = nl.net("v");
        nl.add_cell(CellKind::And, &[a, b], &[t]).unwrap();
        nl.add_cell(CellKind::Xor, &[t, t], &[u]).unwrap();
        nl.add_cell(CellKind::Or, &[t, b], &[v]).unwrap();
        nl.mark_output(u);
        nl.mark_output(v);
        nl.mark_output(t);
        let view = FanoutView::new(&nl);
        assert_eq!(view.fanout(t), 4, "two XOR pins + one OR pin + output");
        assert_eq!(
            view.sinks(t),
            &[
                Sink::Cell { cell: 1, pin: 0 },
                Sink::Cell { cell: 1, pin: 1 },
                Sink::Cell { cell: 2, pin: 0 },
                Sink::Output(2),
            ]
        );
        let violations = view.violations(&nl);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].name, "t");
        assert_eq!(violations[0].fanout, 4);
        assert_eq!(violations[0].limit, 2);
        // Primary inputs are exempt even at high fan-out.
        assert_eq!(view.fanout(b), 2);
    }

    #[test]
    fn inverter_fanout_limit_is_one() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let n = nl.net("n");
        let y = nl.net("y");
        nl.add_cell(CellKind::Inv, &[a], &[n]).unwrap();
        nl.add_cell(CellKind::Xor, &[n, n], &[y]).unwrap();
        nl.mark_output(y);
        let view = FanoutView::new(&nl);
        let violations = view.violations(&nl);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].limit, 1);
    }

    #[test]
    fn display_round_trips_through_names() {
        let nl = full_adder();
        let text = nl.to_string();
        assert!(text.contains("input a b cin"));
        assert!(text.contains("output sum cout"));
        assert!(text.contains("sum cout = fa a b cin"));
    }

    #[test]
    fn depth_counts_macros_as_two_levels() {
        let nl = full_adder();
        assert_eq!(nl.depth().unwrap(), 2);
        assert_eq!(nl.elaborate().depth().unwrap(), 2);
    }
}
