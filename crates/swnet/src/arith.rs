//! Generated arithmetic netlists: the ROADMAP's adders and a small
//! array multiplier.
//!
//! These are the swnet equivalents of the hand-built
//! [`Circuit::full_adder`] / [`Circuit::ripple_carry_adder`]: the
//! netlists here elaborate and lower to *structurally identical*
//! circuits (same gates, same order — `tests/parity.rs` asserts
//! equality), so the hand-built constructors in `swgates` are now thin
//! hand-rolled copies of what the compiler produces.
//!
//! The multiplier is a classic row-accumulating array multiplier built
//! from half/full-adder macro cells. Its wiring discipline keeps every
//! internal net at fan-out ≤ 2 — it is fan-out-legal as generated,
//! demonstrating the paper's claim that FO2 suffices for array
//! arithmetic.

use swgates::circuit::Circuit;

use crate::ir::{CellKind, NetId, Netlist};
use crate::legalize;
use crate::lower;
use crate::SwNetError;

/// A one-bit full adder as a netlist: inputs `[a, b, cin]`, outputs
/// `[sum, cout]`. Lowers to exactly [`Circuit::full_adder`].
pub fn full_adder() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.add_input("a").expect("fresh netlist");
    let b = nl.add_input("b").expect("fresh netlist");
    let cin = nl.add_input("cin").expect("fresh netlist");
    let sum = nl.net("sum");
    let cout = nl.net("cout");
    nl.add_cell(CellKind::FullAdder, &[a, b, cin], &[sum, cout])
        .expect("fresh nets");
    nl.mark_output(sum);
    nl.mark_output(cout);
    nl
}

/// An `n`-bit ripple-carry adder: inputs `a0…a{n-1}, b0…b{n-1}, cin`;
/// outputs `s0…s{n-1}, cout`. Lowers to exactly
/// [`Circuit::ripple_carry_adder`]. Every carry drives two loads — the
/// canonical use of the triangle gates' fan-out of 2.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry_adder(n: usize) -> Netlist {
    assert!(n > 0, "adder width must be at least 1");
    let mut nl = Netlist::new();
    let a: Vec<NetId> = (0..n)
        .map(|i| nl.add_input(&format!("a{i}")).expect("unique names"))
        .collect();
    let b: Vec<NetId> = (0..n)
        .map(|i| nl.add_input(&format!("b{i}")).expect("unique names"))
        .collect();
    let mut carry = nl.add_input("cin").expect("unique names");
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let sum = nl.net(&format!("s{i}"));
        let next = if i + 1 == n {
            nl.net("cout")
        } else {
            nl.net(&format!("c{}", i + 1))
        };
        nl.add_cell(CellKind::FullAdder, &[a[i], b[i], carry], &[sum, next])
            .expect("fresh nets");
        sums.push(sum);
        carry = next;
    }
    for sum in sums {
        nl.mark_output(sum);
    }
    nl.mark_output(carry);
    nl
}

/// An `n`×`n` array multiplier: inputs `a0…a{n-1}, b0…b{n-1}`; outputs
/// `p0…` (the product, least-significant first; `2n` bits for `n ≥ 2`,
/// one bit for `n = 1`).
///
/// Rows of AND partial products are accumulated with a ripple chain of
/// half/full adders. Every internal net drives at most two loads
/// (both sinks inside one adder macro), so the netlist is fan-out-legal
/// without any splitter insertion; only the primary inputs — which the
/// paper excites with replicated transducers — fan out wider.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_multiplier(n: usize) -> Netlist {
    assert!(n > 0, "multiplier width must be at least 1");
    let mut nl = Netlist::new();
    let a: Vec<NetId> = (0..n)
        .map(|i| nl.add_input(&format!("a{i}")).expect("unique names"))
        .collect();
    let b: Vec<NetId> = (0..n)
        .map(|i| nl.add_input(&format!("b{i}")).expect("unique names"))
        .collect();
    // Partial-product row j: pp[i][j] = a_i ∧ b_j, weight i + j.
    let pp = |nl: &mut Netlist, i: usize, j: usize| -> NetId {
        let out = nl.net(&format!("pp{i}_{j}"));
        nl.add_cell(CellKind::And, &[a[i], b[j]], &[out])
            .expect("fresh nets");
        out
    };
    // `acc[k]` has weight `j + k` while processing row `j`.
    let mut acc: Vec<NetId> = (0..n).map(|i| pp(&mut nl, i, 0)).collect();
    let mut product = Vec::with_capacity(2 * n);
    for j in 1..n {
        product.push(acc[0]);
        let high = &acc[1..];
        let addend: Vec<NetId> = (0..n).map(|i| pp(&mut nl, i, j)).collect();
        let mut next = Vec::with_capacity(n + 1);
        let mut carry: Option<NetId> = None;
        for (k, &add_bit) in addend.iter().enumerate() {
            let sum = nl.fresh("m");
            let cout = nl.fresh("k");
            match (high.get(k).copied(), carry) {
                (Some(high_bit), None) => {
                    nl.add_cell(CellKind::HalfAdder, &[high_bit, add_bit], &[sum, cout])
                        .expect("fresh nets");
                }
                (Some(high_bit), Some(c)) => {
                    nl.add_cell(CellKind::FullAdder, &[high_bit, add_bit, c], &[sum, cout])
                        .expect("fresh nets");
                }
                (None, Some(c)) => {
                    nl.add_cell(CellKind::HalfAdder, &[add_bit, c], &[sum, cout])
                        .expect("fresh nets");
                }
                (None, None) => unreachable!("k = 0 always has a high bit for n ≥ 2"),
            }
            next.push(sum);
            carry = Some(cout);
        }
        next.push(carry.expect("n ≥ 2 rows have at least one adder"));
        acc = next;
    }
    product.extend(acc);
    for net in product {
        nl.mark_output(net);
    }
    nl
}

/// The swnet equivalent of [`swgates::circuit::insert_repeaters`]:
/// lifts a circuit into the IR, legalizes its fan-out with balanced
/// splitter trees, and lowers it back. Unlike the chain-based
/// `insert_repeaters`, the tree insertion keeps added depth
/// logarithmic in the fan-out.
///
/// # Errors
///
/// [`SwNetError::Invalid`] if the circuit cannot be lifted (cannot
/// happen for circuits built through `Circuit`'s validated API).
pub fn legalize_circuit(circuit: &Circuit) -> Result<Circuit, SwNetError> {
    let lifted = lower::from_circuit(circuit)?;
    let legal = legalize::legalize(&lifted)?;
    lower::to_circuit(&legal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::row_bits;

    /// Evaluates a netlist on integer-packed inputs and repacks the
    /// output bits little-endian.
    fn eval_int(nl: &Netlist, value: u64) -> u64 {
        let bits = row_bits(value, nl.inputs().len());
        nl.evaluate(&bits)
            .unwrap()
            .iter()
            .enumerate()
            .fold(0u64, |word, (k, bit)| word | (bit.as_u8() as u64) << k)
    }

    #[test]
    fn adders_add_exhaustively() {
        for n in [1usize, 2, 3, 4] {
            let nl = ripple_carry_adder(n);
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    for cin in 0..2u64 {
                        let packed = a | b << n | cin << (2 * n);
                        assert_eq!(
                            eval_int(&nl, packed),
                            a + b + cin,
                            "n={n} a={a} b={b} cin={cin}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multipliers_multiply_exhaustively() {
        for n in [1usize, 2, 3, 4] {
            let nl = array_multiplier(n);
            assert_eq!(nl.outputs().len(), if n == 1 { 1 } else { 2 * n });
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    let packed = a | b << n;
                    assert_eq!(eval_int(&nl, packed), a * b, "n={n} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn multiplier_is_fanout_legal_as_generated() {
        for n in [2usize, 3, 4, 6] {
            let flat = array_multiplier(n).elaborate();
            assert!(legalize::is_legal(&flat), "n={n}");
        }
    }

    #[test]
    fn adder_is_fanout_legal_as_generated() {
        let flat = ripple_carry_adder(8).elaborate();
        assert!(legalize::is_legal(&flat));
    }

    #[test]
    fn legalize_circuit_matches_insert_repeaters_behaviour() {
        use swgates::circuit::{GateKind, Signal};
        // An AND fanned out to 5 XORs — illegal under FO2.
        let mut c = Circuit::new(2);
        let t = c
            .add_gate(GateKind::And, vec![Signal::Input(0), Signal::Input(1)])
            .unwrap();
        for _ in 0..5 {
            let y = c
                .add_gate(GateKind::Xor, vec![t, Signal::Input(1)])
                .unwrap();
            c.mark_output(y).unwrap();
        }
        assert!(!c.fanout_violations().is_empty());
        let ours = legalize_circuit(&c).unwrap();
        let theirs = swgates::circuit::insert_repeaters(&c).unwrap();
        assert!(ours.fanout_violations().is_empty());
        assert!(theirs.fanout_violations().is_empty());
        for row in 0..4u64 {
            let bits = row_bits(row, 2);
            assert_eq!(
                ours.evaluate(&bits).unwrap(),
                theirs.evaluate(&bits).unwrap()
            );
            assert_eq!(ours.evaluate(&bits).unwrap(), c.evaluate(&bits).unwrap());
        }
    }
}
