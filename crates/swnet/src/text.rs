//! The structural netlist text format and its JSON twin.
//!
//! The text format is line-oriented:
//!
//! ```text
//! # one-bit full adder
//! input a b cin
//! output sum cout
//! sum cout = fa a b cin
//! ```
//!
//! - `#` starts a comment running to end of line.
//! - `input` / `output` lines declare primary inputs and outputs; both
//!   may appear more than once and accumulate.
//! - Every other non-empty line is a cell: `out... = op in...`, where
//!   `op` is one of `maj3 xor xnor and or nand nor inv buf fa ha`.
//! - Identifiers are `[A-Za-z0-9_$.\[\]]+` — `$` so generated splitter
//!   names round-trip, brackets so bus-style names like `a[3]` read
//!   naturally.
//!
//! Parse errors carry the byte offset of the offending token. The JSON
//! form (`{"inputs": [...], "outputs": [...], "cells": [{"op", "ins",
//! "outs"}]}`) expresses the same structure for the HTTP endpoint.

use swjson::Json;

use crate::ir::{CellKind, Netlist};
use crate::SwNetError;

fn is_ident_byte(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || matches!(byte, b'_' | b'$' | b'.' | b'[' | b']')
}

/// Splits one line into `(token, byte_offset)` pairs, with offsets
/// relative to the whole source.
fn tokenize(line: &str, line_start: usize) -> Result<Vec<(&str, usize)>, SwNetError> {
    let bytes = line.as_bytes();
    let mut tokens = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let byte = bytes[at];
        if byte == b'#' {
            break;
        }
        if byte.is_ascii_whitespace() {
            at += 1;
            continue;
        }
        if byte == b'=' {
            tokens.push(("=", line_start + at));
            at += 1;
            continue;
        }
        if is_ident_byte(byte) {
            let start = at;
            while at < bytes.len() && is_ident_byte(bytes[at]) {
                at += 1;
            }
            tokens.push((&line[start..at], line_start + start));
            continue;
        }
        return Err(SwNetError::parse(
            line_start + at,
            format!("unexpected character `{}`", byte as char),
        ));
    }
    Ok(tokens)
}

/// Parses the text format into a [`Netlist`].
///
/// # Errors
///
/// [`SwNetError::Parse`] with a byte offset on malformed input;
/// [`SwNetError::Invalid`] when the structure is ill-formed (e.g. a
/// doubly-driven net).
pub fn parse(source: &str) -> Result<Netlist, SwNetError> {
    let mut netlist = Netlist::new();
    let mut line_start = 0;
    for line in source.split_inclusive('\n') {
        let start = line_start;
        line_start += line.len();
        let line = line.strip_suffix('\n').unwrap_or(line);
        let tokens = tokenize(line, start)?;
        let Some(&(head, head_at)) = tokens.first() else {
            continue;
        };
        match head {
            "input" => {
                if tokens.len() < 2 {
                    return Err(SwNetError::parse(head_at, "`input` needs at least one net"));
                }
                for &(name, at) in &tokens[1..] {
                    if name == "=" {
                        return Err(SwNetError::parse(at, "`=` not allowed in an input list"));
                    }
                    let id = netlist.net(name);
                    if netlist.add_input(name).is_err() {
                        return Err(SwNetError::parse(
                            at,
                            format!("net `{}` is already driven", netlist.name(id)),
                        ));
                    }
                }
            }
            "output" => {
                if tokens.len() < 2 {
                    return Err(SwNetError::parse(
                        head_at,
                        "`output` needs at least one net",
                    ));
                }
                for &(name, at) in &tokens[1..] {
                    if name == "=" {
                        return Err(SwNetError::parse(at, "`=` not allowed in an output list"));
                    }
                    let id = netlist.net(name);
                    netlist.mark_output(id);
                }
            }
            _ => {
                let equals = tokens.iter().position(|&(t, _)| t == "=").ok_or_else(|| {
                    SwNetError::parse(head_at, "expected `outs... = op ins...` cell line")
                })?;
                if equals == 0 {
                    return Err(SwNetError::parse(tokens[0].1, "cell has no output nets"));
                }
                let Some(&(op, op_at)) = tokens.get(equals + 1) else {
                    return Err(SwNetError::parse(
                        tokens[equals].1,
                        "expected an operation after `=`",
                    ));
                };
                let kind = CellKind::from_op_name(op)
                    .ok_or_else(|| SwNetError::parse(op_at, format!("unknown operation `{op}`")))?;
                let outs: Vec<_> = tokens[..equals]
                    .iter()
                    .map(|&(name, _)| netlist.net(name))
                    .collect();
                let ins: Vec<_> = tokens[equals + 2..]
                    .iter()
                    .map(|&(name, _)| netlist.net(name))
                    .collect();
                if ins.len() != kind.input_arity() || outs.len() != kind.output_arity() {
                    return Err(SwNetError::parse(
                        op_at,
                        format!(
                            "`{op}` takes {} inputs and {} outputs, got {} and {}",
                            kind.input_arity(),
                            kind.output_arity(),
                            ins.len(),
                            outs.len()
                        ),
                    ));
                }
                netlist
                    .add_cell(kind, &ins, &outs)
                    .map_err(|err| SwNetError::parse(tokens[0].1, err.to_string()))?;
            }
        }
    }
    Ok(netlist)
}

/// Renders a netlist as its JSON form.
pub fn to_json(netlist: &Netlist) -> Json {
    let inputs = netlist
        .inputs()
        .iter()
        .map(|&net| Json::str(netlist.name(net)))
        .collect();
    let outputs = netlist
        .outputs()
        .iter()
        .map(|&net| Json::str(netlist.name(net)))
        .collect();
    let cells = netlist
        .cells()
        .iter()
        .map(|cell| {
            let ins = cell
                .ins
                .iter()
                .map(|&net| Json::str(netlist.name(net)))
                .collect();
            let outs = cell
                .outs
                .iter()
                .map(|&net| Json::str(netlist.name(net)))
                .collect();
            Json::obj(vec![
                ("op", Json::str(cell.kind.op_name())),
                ("ins", Json::Arr(ins)),
                ("outs", Json::Arr(outs)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("inputs", Json::Arr(inputs)),
        ("outputs", Json::Arr(outputs)),
        ("cells", Json::Arr(cells)),
    ])
}

fn string_list<'a>(value: &'a Json, what: &str) -> Result<Vec<&'a str>, SwNetError> {
    let items = value
        .as_arr()
        .ok_or_else(|| SwNetError::invalid(format!("`{what}` must be an array of strings")))?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .ok_or_else(|| SwNetError::invalid(format!("`{what}` must contain only strings")))
        })
        .collect()
}

/// Builds a netlist from its JSON form.
///
/// # Errors
///
/// [`SwNetError::Invalid`] describing the first malformed field.
pub fn from_json(value: &Json) -> Result<Netlist, SwNetError> {
    let obj = value
        .as_obj()
        .ok_or_else(|| SwNetError::invalid("netlist JSON must be an object"))?;
    for key in obj.keys() {
        if !matches!(key.as_str(), "inputs" | "outputs" | "cells") {
            return Err(SwNetError::invalid(format!(
                "unknown netlist field `{key}`"
            )));
        }
    }
    let mut netlist = Netlist::new();
    let inputs = value
        .get("inputs")
        .ok_or_else(|| SwNetError::invalid("netlist JSON needs an `inputs` array"))?;
    for name in string_list(inputs, "inputs")? {
        netlist.add_input(name)?;
    }
    let cells = value
        .get("cells")
        .ok_or_else(|| SwNetError::invalid("netlist JSON needs a `cells` array"))?
        .as_arr()
        .ok_or_else(|| SwNetError::invalid("`cells` must be an array"))?;
    for cell in cells {
        let op = cell
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| SwNetError::invalid("each cell needs a string `op`"))?;
        let kind = CellKind::from_op_name(op)
            .ok_or_else(|| SwNetError::invalid(format!("unknown operation `{op}`")))?;
        let ins: Vec<_> = string_list(
            cell.get("ins")
                .ok_or_else(|| SwNetError::invalid("each cell needs an `ins` array"))?,
            "ins",
        )?
        .into_iter()
        .map(|name| netlist.net(name))
        .collect();
        let outs: Vec<_> = string_list(
            cell.get("outs")
                .ok_or_else(|| SwNetError::invalid("each cell needs an `outs` array"))?,
            "outs",
        )?
        .into_iter()
        .map(|name| netlist.net(name))
        .collect();
        netlist.add_cell(kind, &ins, &outs)?;
    }
    let outputs = value
        .get("outputs")
        .ok_or_else(|| SwNetError::invalid("netlist JSON needs an `outputs` array"))?;
    for name in string_list(outputs, "outputs")? {
        let id = netlist.net(name);
        netlist.mark_output(id);
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgates::encoding::all_patterns;

    const FULL_ADDER: &str = "\
# one-bit full adder
input a b cin
output sum cout
sum cout = fa a b cin
";

    #[test]
    fn parses_the_full_adder_example() {
        let nl = parse(FULL_ADDER).unwrap();
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.cell_count(), 1);
        for pattern in all_patterns::<3>() {
            let total = pattern.iter().map(|b| b.as_u8() as usize).sum::<usize>();
            let out = nl.evaluate(&pattern).unwrap();
            assert_eq!(out[0].as_u8() as usize, total % 2);
            assert_eq!(out[1].as_u8() as usize, total / 2);
        }
    }

    #[test]
    fn display_then_parse_round_trips() {
        let nl = parse(FULL_ADDER).unwrap();
        let again = parse(&nl.to_string()).unwrap();
        assert_eq!(nl, again);
    }

    #[test]
    fn json_round_trips_through_render_and_parse() {
        let nl = parse(FULL_ADDER).unwrap();
        let rendered = to_json(&nl).render();
        let back = from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(nl, back);
        // Canonical rendering is deterministic.
        assert_eq!(rendered, to_json(&back).render());
    }

    #[test]
    fn generated_names_survive_the_text_format() {
        let mut nl = parse(FULL_ADDER).unwrap();
        let split = nl.fresh("s");
        let sum = nl.find("sum").unwrap();
        nl.add_cell(crate::ir::CellKind::Buf, &[sum], &[split])
            .unwrap();
        nl.mark_output(split);
        let again = parse(&nl.to_string()).unwrap();
        assert_eq!(nl, again);
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let source = "input a b\noutput y\ny = quux a b\n";
        let err = parse(source).unwrap_err();
        match err {
            SwNetError::Parse {
                offset,
                ref message,
            } => {
                assert_eq!(offset, source.find("quux").unwrap());
                assert!(message.contains("quux"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }

        let source = "input a\noutput y\ny = inv a a\n";
        let err = parse(source).unwrap_err();
        match err {
            SwNetError::Parse { offset, .. } => {
                assert_eq!(offset, source.rfind("inv").unwrap());
            }
            other => panic!("expected parse error, got {other:?}"),
        }

        let source = "input a\ny @ inv a\n";
        let err = parse(source).unwrap_err();
        match err {
            SwNetError::Parse { offset, .. } => {
                assert_eq!(offset, source.find('@').unwrap());
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn double_drivers_are_rejected_at_the_offending_line() {
        let source = "input a b\noutput y\ny = and a b\ny = or a b\n";
        let err = parse(source).unwrap_err();
        match err {
            SwNetError::Parse {
                offset,
                ref message,
            } => {
                assert_eq!(offset, source.rfind('y').unwrap());
                assert!(message.contains("two drivers"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_fields_are_rejected() {
        let bad = [
            r#"{"outputs": [], "cells": []}"#,
            r#"{"inputs": [1], "outputs": [], "cells": []}"#,
            r#"{"inputs": [], "outputs": [], "cells": [{"op": "frob", "ins": [], "outs": []}]}"#,
            r#"{"inputs": [], "outputs": [], "cells": [], "extra": 1}"#,
        ];
        for source in bad {
            let value = Json::parse(source).unwrap();
            assert!(from_json(&value).is_err(), "{source}");
        }
    }
}
