//! Logical-effort-style sizing of splitter/repeater trees, and
//! energy/delay scoring against the CMOS baselines.
//!
//! CMOS logical effort sizes a chain by `d = γ·p + g·h` per stage. The
//! spin-wave analogue trades amplitude instead of capacitance: every
//! passive directional-coupler split divides the wave amplitude by √2,
//! and a detector only reads phase reliably above a threshold fraction
//! `θ` of the excitation amplitude. The *effort budget* of a
//! regenerated wave is therefore
//!
//! ```text
//! B = ⌊ log(1/θ) / log(√2) ⌋            (= 2 splits for θ = 0.5)
//! ```
//!
//! splits before an active repeater (an ME detect–re-excite pair,
//! \[36\], \[37\]) must restore the amplitude. [`assign_roles`] walks a
//! legalized netlist in topological order and greedily keeps every
//! [`CellKind::Buf`] passive while the delivered amplitude stays above
//! `θ`, promoting it to a repeater otherwise — which reproduces the
//! closed-form budget: exactly one repeater per `B` consecutive splits.
//!
//! Pricing follows the paper's §IV-D assumptions via
//! [`swperf::mecell::MeCell`]: passive splitters are free (no ME cell),
//! repeaters cost one excitation (3.44 aJ) and one ME delay (0.42 ns),
//! and logic gates cost their excitation-transducer count. The CMOS
//! side prices MAJ-class gates as Table III's 4-NAND majority and
//! XOR-class gates as the reference XOR, on both the 16 nm and 7 nm
//! nodes.

use swperf::cmos::{cmos_cost, CmosGate, CmosNode};
use swperf::mecell::MeCell;
use swperf::GateCost;

use crate::ir::{CellKind, Driver, FanoutView, Netlist};
use crate::SwNetError;

/// Tolerance for amplitude-threshold comparisons, so a delivered
/// amplitude of exactly θ (e.g. 1/√2 · 1/√2 = 0.5) counts as readable.
const EPS: f64 = 1e-9;

/// The amplitude model: ME transducer parameters plus the detection
/// threshold as a fraction of the excitation amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffortModel {
    me: MeCell,
    threshold: f64,
}

impl EffortModel {
    /// The paper's operating point: `MeCell::paper()` with a detection
    /// threshold of half the excitation amplitude.
    pub fn paper() -> EffortModel {
        EffortModel {
            me: MeCell::paper(),
            threshold: 0.5,
        }
    }

    /// A custom model. `threshold` must lie in `(0, 1]`.
    pub fn new(me: MeCell, threshold: f64) -> EffortModel {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        EffortModel { me, threshold }
    }

    /// The transducer parameters.
    pub fn me(&self) -> &MeCell {
        &self.me
    }

    /// The detection threshold (fraction of excitation amplitude).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The effort budget `B`: how many √2 splits a regenerated wave
    /// survives before dropping below the threshold (2 for θ = 0.5).
    pub fn split_budget(&self) -> usize {
        ((1.0 / self.threshold).ln() / std::f64::consts::SQRT_2.ln() + EPS).floor() as usize
    }

    /// How many loads one regenerated wave feeds through purely
    /// passive splitting: `2^B`.
    pub fn passive_reach(&self) -> usize {
        1usize << self.split_budget()
    }
}

/// The role the sizing pass assigns to one [`CellKind::Buf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufRole {
    /// Passive directional-coupler arm: free, but divides amplitude.
    Splitter,
    /// Active ME detect–re-excite repeater: one excitation of energy,
    /// one ME delay, restores full amplitude.
    Repeater,
}

/// The sizing result for one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Sizing {
    /// Per-cell role; `None` for logic cells.
    pub roles: Vec<Option<BufRole>>,
    /// Buffers kept passive.
    pub splitters: usize,
    /// Buffers promoted to repeaters.
    pub repeaters: usize,
    /// The smallest amplitude delivered to any sink — ≥ θ on a
    /// legalized netlist.
    pub min_delivered: f64,
}

/// Greedy amplitude-tracking role assignment over a primitive netlist
/// (macros are elaborated first). Buffers stay passive while their
/// delivered amplitude holds above the threshold and are promoted to
/// repeaters otherwise.
///
/// # Errors
///
/// [`SwNetError::Invalid`] if the netlist fails [`Netlist::check`].
pub fn assign_roles(netlist: &Netlist, model: &EffortModel) -> Result<Sizing, SwNetError> {
    let flat = netlist.elaborate();
    let order = flat.check()?;
    let view = FanoutView::new(&flat);
    // delivered[net]: the amplitude each sink of the net receives.
    let mut delivered = vec![0.0f64; flat.net_count()];
    for (index, amplitude) in delivered.iter_mut().enumerate() {
        if matches!(
            flat.driver(crate::ir::NetId(index as u32)),
            Some(Driver::Input(_))
        ) {
            *amplitude = 1.0;
        }
    }
    let mut roles = vec![None; flat.cell_count()];
    let mut min_delivered = 1.0f64;
    let mut splitters = 0;
    let mut repeaters = 0;
    for cell_index in order {
        let cell = flat.cell(cell_index);
        let out = cell.outs[0];
        let sinks = view.fanout(out).max(1) as f64;
        let value = if cell.kind == CellKind::Buf {
            // One coupler port splitting `sinks` ways: amplitude
            // divides by √sinks. A triangle logic gate, by contrast,
            // has two native output ports at full amplitude.
            let arriving = delivered[cell.ins[0].index()];
            let passive = arriving / sinks.sqrt();
            if passive + EPS >= model.threshold {
                roles[cell_index] = Some(BufRole::Splitter);
                splitters += 1;
                passive
            } else {
                roles[cell_index] = Some(BufRole::Repeater);
                repeaters += 1;
                1.0
            }
        } else {
            1.0
        };
        delivered[out.index()] = value;
        if view.fanout(out) > 0 {
            min_delivered = min_delivered.min(value);
        }
    }
    Ok(Sizing {
        roles,
        splitters,
        repeaters,
        min_delivered,
    })
}

/// Prices a sized netlist under the spin-wave model: energy is the
/// excitation count (logic-gate inputs plus one per repeater) times
/// the ME pulse energy; delay is the longest path where logic gates
/// and repeaters each cost one ME delay and splitters are free; the
/// device count is the total of excitation and detection transducers.
///
/// # Errors
///
/// [`SwNetError::Invalid`] if the netlist fails [`Netlist::check`].
pub fn spinwave_cost(netlist: &Netlist, model: &EffortModel) -> Result<GateCost, SwNetError> {
    let flat = netlist.elaborate();
    let sizing = assign_roles(&flat, model)?;
    let order = flat.check()?;
    let mut excitations = 0usize;
    let mut devices = 0usize;
    let mut arrival = vec![0.0f64; flat.net_count()];
    for cell_index in order {
        let cell = flat.cell(cell_index);
        let at = cell
            .ins
            .iter()
            .map(|net| arrival[net.index()])
            .fold(0.0f64, f64::max);
        let kind = cell.kind.gate_kind();
        let delay = match sizing.roles[cell_index] {
            Some(BufRole::Splitter) => 0.0,
            Some(BufRole::Repeater) | None => {
                if sizing.roles[cell_index].is_none() {
                    excitations += kind.excitation_cells();
                } else {
                    excitations += 1;
                }
                devices += kind.excitation_cells() + kind.detection_cells();
                model.me.delay()
            }
        };
        for &out in &cell.outs {
            arrival[out.index()] = at + delay;
        }
    }
    let delay = flat
        .outputs()
        .iter()
        .map(|net| arrival[net.index()])
        .fold(0.0f64, f64::max);
    Ok(GateCost::new(
        excitations as f64 * model.me.excitation_energy(),
        delay,
        devices,
    ))
}

/// Prices the same logic in CMOS on `node`: MAJ-class cells (MAJ3 and
/// the AND/OR/NAND/NOR it subsumes) as Table III's 4-NAND majority,
/// XOR-class cells as the reference XOR. Inverters and buffers are
/// counted as free, which *favours* CMOS — the comparison stays
/// conservative for the spin-wave side.
///
/// # Errors
///
/// [`SwNetError::Invalid`] if the netlist fails [`Netlist::check`].
pub fn cmos_baseline(netlist: &Netlist, node: CmosNode) -> Result<GateCost, SwNetError> {
    let flat = netlist.elaborate();
    let order = flat.check()?;
    let mut energy = 0.0f64;
    let mut devices = 0usize;
    let mut arrival = vec![0.0f64; flat.net_count()];
    for cell_index in order {
        let cell = flat.cell(cell_index);
        let at = cell
            .ins
            .iter()
            .map(|net| arrival[net.index()])
            .fold(0.0f64, f64::max);
        let gate = match cell.kind {
            CellKind::Maj3 | CellKind::And | CellKind::Or | CellKind::Nand | CellKind::Nor => {
                Some(CmosGate::Maj3)
            }
            CellKind::Xor | CellKind::Xnor => Some(CmosGate::Xor),
            CellKind::Inv | CellKind::Buf => None,
            CellKind::FullAdder | CellKind::HalfAdder => unreachable!("elaborated above"),
        };
        let delay = match gate {
            Some(gate) => {
                let cost = cmos_cost(node, gate);
                energy += cost.energy();
                devices += cost.device_count();
                cost.delay()
            }
            None => 0.0,
        };
        for &out in &cell.outs {
            arrival[out.index()] = at + delay;
        }
    }
    let delay = flat
        .outputs()
        .iter()
        .map(|net| arrival[net.index()])
        .fold(0.0f64, f64::max);
    Ok(GateCost::new(energy, delay, devices))
}

/// The full scorecard for one compiled netlist: the sized spin-wave
/// implementation against both CMOS nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// Spin-wave cost of the *legalized* netlist under `model`.
    pub spinwave: GateCost,
    /// Splitter/repeater split of the buffers.
    pub sizing: Sizing,
    /// 16 nm CMOS baseline for the same logic.
    pub cmos16: GateCost,
    /// 7 nm CMOS baseline for the same logic.
    pub cmos7: GateCost,
}

impl Scorecard {
    /// CMOS energy divided by spin-wave energy on `node` (> 1 means
    /// the spin-wave circuit wins).
    pub fn energy_ratio(&self, node: CmosNode) -> f64 {
        let cmos = match node {
            CmosNode::N16 => &self.cmos16,
            CmosNode::N7 => &self.cmos7,
        };
        cmos.energy() / self.spinwave.energy()
    }

    /// Spin-wave delay divided by CMOS delay on `node` (> 1 means
    /// CMOS is faster — the paper's usual outcome).
    pub fn delay_ratio(&self, node: CmosNode) -> f64 {
        let cmos = match node {
            CmosNode::N16 => &self.cmos16,
            CmosNode::N7 => &self.cmos7,
        };
        self.spinwave.delay() / cmos.delay()
    }
}

/// Scores a legalized netlist: spin-wave pricing on `legal` (with its
/// splitter trees), CMOS pricing on the logic alone (CMOS needs no
/// splitters, so buffers do not burden the baseline).
///
/// # Errors
///
/// [`SwNetError::Invalid`] if the netlist fails [`Netlist::check`].
pub fn score(legal: &Netlist, model: &EffortModel) -> Result<Scorecard, SwNetError> {
    Ok(Scorecard {
        spinwave: spinwave_cost(legal, model)?,
        sizing: assign_roles(legal, model)?,
        cmos16: cmos_baseline(legal, CmosNode::N16)?,
        cmos7: cmos_baseline(legal, CmosNode::N7)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;
    use crate::legalize::legalize;

    #[test]
    fn paper_budget_is_two_splits() {
        let model = EffortModel::paper();
        assert_eq!(model.split_budget(), 2);
        assert_eq!(model.passive_reach(), 4);
        // A stricter detector tolerates only one split (1/√2 ≈ 0.707),
        // and one above 1/√2 tolerates none.
        let strict = EffortModel::new(MeCell::paper(), 0.7);
        assert_eq!(strict.split_budget(), 1);
        let strictest = EffortModel::new(MeCell::paper(), 0.75);
        assert_eq!(strictest.split_budget(), 0);
    }

    /// A chain of `len` Bufs, each fanning out to one XOR tap and the
    /// next Buf — every stage is a 2-way split.
    fn split_chain(len: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let head = nl.net("h0");
        nl.add_cell(CellKind::And, &[a, b], &[head]).unwrap();
        let mut carry = head;
        for i in 0..len {
            let next = nl.net(&format!("h{}", i + 1));
            let tap = nl.net(&format!("t{i}"));
            nl.add_cell(CellKind::Buf, &[carry], &[next]).unwrap();
            nl.add_cell(CellKind::Xor, &[next, b], &[tap]).unwrap();
            nl.mark_output(tap);
            carry = next;
        }
        nl
    }

    #[test]
    fn greedy_roles_repeat_every_budget_splits() {
        let model = EffortModel::paper();
        let nl = split_chain(7);
        let sizing = assign_roles(&nl, &model).unwrap();
        let roles: Vec<BufRole> = sizing.roles.iter().filter_map(|r| *r).collect();
        // Budget 2: splitter, splitter, repeater, repeating. The final
        // Buf drives a single load (no split), so it stays passive.
        assert_eq!(
            roles,
            vec![
                BufRole::Splitter,
                BufRole::Splitter,
                BufRole::Repeater,
                BufRole::Splitter,
                BufRole::Splitter,
                BufRole::Repeater,
                BufRole::Splitter,
            ]
        );
        assert!(sizing.min_delivered + 1e-9 >= model.threshold());
    }

    #[test]
    fn legalized_netlists_always_deliver_above_threshold() {
        let model = EffortModel::paper();
        for netlist in [
            arith::ripple_carry_adder(8),
            arith::array_multiplier(4),
            crate::synth::synthesize(&[crate::synth::Table::parse("0110100110010110").unwrap()])
                .unwrap(),
        ] {
            let legal = legalize(&netlist).unwrap();
            let sizing = assign_roles(&legal, &model).unwrap();
            assert!(
                sizing.min_delivered + 1e-9 >= model.threshold(),
                "min delivered {} in\n{legal}",
                sizing.min_delivered
            );
        }
    }

    #[test]
    fn full_adder_cost_matches_hand_count() {
        let model = EffortModel::paper();
        let legal = legalize(&arith::full_adder()).unwrap();
        let cost = spinwave_cost(&legal, &model).unwrap();
        // 2 XOR (2 excitations each) + 1 MAJ3 (3) = 7 excitations.
        assert!((cost.energy_aj() - 7.0 * 3.44).abs() < 1e-9);
        // Critical path: XOR → XOR = 2 ME delays.
        assert!((cost.delay_ns() - 0.84).abs() < 1e-9);
        // Transducers: 2·(2+2) + (3+2) = 13.
        assert_eq!(cost.device_count(), 13);
    }

    #[test]
    fn splitters_are_free_but_repeaters_cost_one_excitation() {
        let model = EffortModel::paper();
        let nl = split_chain(4);
        let base = spinwave_cost(&split_chain(0), &model).unwrap();
        let cost = spinwave_cost(&nl, &model).unwrap();
        let sizing = assign_roles(&nl, &model).unwrap();
        assert_eq!(sizing.repeaters, 1);
        assert_eq!(sizing.splitters, 3);
        // 4 extra XOR taps (2 excitations each) + 1 repeater.
        let extra = (4 * 2 + 1) as f64 * 3.44;
        assert!(
            (cost.energy_aj() - base.energy_aj() - extra).abs() < 1e-9,
            "base {} cost {}",
            base.energy_aj(),
            cost.energy_aj()
        );
    }

    #[test]
    fn scorecard_compares_against_both_nodes() {
        let model = EffortModel::paper();
        let legal = legalize(&arith::ripple_carry_adder(4)).unwrap();
        let card = score(&legal, &model).unwrap();
        // 4 FA stages: 8 XOR + 4 MAJ3 in both technologies.
        assert!((card.cmos16.energy() - (8.0 * 303e-18 + 4.0 * 466e-18)).abs() < 1e-27);
        assert_eq!(card.cmos16.device_count(), 8 * 8 + 4 * 16);
        // The paper's headline: spin waves win on energy, CMOS on delay.
        assert!(card.energy_ratio(CmosNode::N16) > 1.0);
        assert!(card.delay_ratio(CmosNode::N16) > 1.0);
    }
}
