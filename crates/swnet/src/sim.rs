//! Word-parallel circuit simulation: 64 input patterns per `u64`.
//!
//! Exhaustive verification of a 16-bit adder (2³³ input patterns) is
//! out of reach bit-by-bit; packing 64 patterns per machine word makes
//! dense sampling cheap. Gates become bitwise expressions —
//! `MAJ3(a,b,c) = (a&b)|(b&c)|(a&c)` — evaluated once per word.

use swgates::circuit::{Circuit, GateKind, Signal};

/// Evaluates `circuit` on 64 input patterns at once. `inputs[i]` holds
/// input `i`'s bit for each of the 64 patterns (bit `p` of the word is
/// pattern `p`); the result holds one word per circuit output.
///
/// # Panics
///
/// Panics if `inputs.len() != circuit.input_count()`.
pub fn eval_words(circuit: &Circuit, inputs: &[u64]) -> Vec<u64> {
    assert_eq!(
        inputs.len(),
        circuit.input_count(),
        "one input word per primary input"
    );
    let mut gates = Vec::with_capacity(circuit.gate_count());
    let value = |gates: &Vec<u64>, signal: Signal| -> u64 {
        match signal {
            Signal::Input(i) => inputs[i],
            Signal::Gate(g) => gates[g],
        }
    };
    for g in 0..circuit.gate_count() {
        let kind = circuit.gate_kind(g).expect("index in range");
        let pins = circuit.gate_inputs(g).expect("index in range");
        let word = match kind {
            GateKind::Maj3 => {
                let (a, b, c) = (
                    value(&gates, pins[0]),
                    value(&gates, pins[1]),
                    value(&gates, pins[2]),
                );
                a & b | b & c | a & c
            }
            GateKind::Xor => value(&gates, pins[0]) ^ value(&gates, pins[1]),
            GateKind::Xnor => !(value(&gates, pins[0]) ^ value(&gates, pins[1])),
            GateKind::And => value(&gates, pins[0]) & value(&gates, pins[1]),
            GateKind::Or => value(&gates, pins[0]) | value(&gates, pins[1]),
            GateKind::Nand => !(value(&gates, pins[0]) & value(&gates, pins[1])),
            GateKind::Nor => !(value(&gates, pins[0]) | value(&gates, pins[1])),
            GateKind::Not => !value(&gates, pins[0]),
            GateKind::Repeater => value(&gates, pins[0]),
        };
        gates.push(word);
    }
    circuit
        .outputs()
        .iter()
        .map(|&signal| value(&gates, signal))
        .collect()
}

/// Runs `patterns` pseudo-random patterns through an adder/multiplier
/// style circuit and checks each against `expect` (little-endian input
/// decode → little-endian expected outputs). Returns the number of
/// patterns evaluated. Used by the parity tests and `parbench
/// --netlist`.
///
/// `seed` drives a SplitMix64 stream, so runs are reproducible.
pub fn verify_against<F>(circuit: &Circuit, patterns: usize, seed: u64, expect: F) -> usize
where
    F: Fn(u64) -> u64,
{
    let n = circuit.input_count();
    assert!(n <= 64, "word-packed inputs support up to 64 bits");
    let mut state = seed;
    let mut next = move || {
        // SplitMix64: cheap, well-distributed, dependency-free.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut done = 0usize;
    while done < patterns {
        let lanes = (patterns - done).min(64);
        // Draw one pattern per lane, transpose into per-input words.
        let rows: Vec<u64> = (0..lanes).map(|_| next()).collect();
        let mut inputs = vec![0u64; n];
        for (lane, row) in rows.iter().enumerate() {
            for (i, word) in inputs.iter_mut().enumerate() {
                *word |= (row >> i & 1) << lane;
            }
        }
        let outputs = eval_words(circuit, &inputs);
        for (lane, row) in rows.iter().enumerate() {
            let masked = row & mask(n);
            let got = outputs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (k, word)| acc | (word >> lane & 1) << k);
            let want = expect(masked) & mask(outputs.len());
            assert_eq!(
                got, want,
                "pattern {masked:#x}: circuit returned {got:#x}, expected {want:#x}"
            );
        }
        done += lanes;
    }
    done
}

fn mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::row_bits;
    use crate::{arith, legalize, lower};

    #[test]
    fn words_agree_with_bit_by_bit_evaluation() {
        let circuit = Circuit::ripple_carry_adder(3);
        let n = circuit.input_count();
        // Pack all 128 patterns into two 64-lane batches.
        for batch in 0..2u64 {
            let mut inputs = vec![0u64; n];
            for lane in 0..64u64 {
                let row = batch * 64 + lane;
                for (i, word) in inputs.iter_mut().enumerate() {
                    *word |= (row >> i & 1) << lane;
                }
            }
            let outputs = eval_words(&circuit, &inputs);
            for lane in 0..64u64 {
                let row = batch * 64 + lane;
                let slow = circuit.evaluate(&row_bits(row, n)).unwrap();
                for (k, bit) in slow.iter().enumerate() {
                    assert_eq!(
                        outputs[k] >> lane & 1,
                        bit.as_u8() as u64,
                        "row {row} output {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_gate_kind_matches_its_scalar_eval() {
        use swgates::encoding::Bit;
        for kind in [
            GateKind::Maj3,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Not,
            GateKind::Repeater,
        ] {
            let arity = kind.arity();
            let mut circuit = Circuit::new(arity);
            let signals: Vec<Signal> = (0..arity).map(Signal::Input).collect();
            let out = circuit.add_gate(kind, signals).unwrap();
            circuit.mark_output(out).unwrap();
            for row in 0..(1u64 << arity) {
                let bits = row_bits(row, arity);
                let slow = circuit.evaluate(&bits).unwrap()[0];
                let inputs: Vec<u64> = bits
                    .iter()
                    .map(|b| if *b == Bit::One { u64::MAX } else { 0 })
                    .collect();
                let fast = eval_words(&circuit, &inputs)[0];
                assert_eq!(fast, if slow == Bit::One { u64::MAX } else { 0 });
            }
        }
    }

    #[test]
    fn random_verification_catches_the_multiplier() {
        let nl = arith::array_multiplier(4);
        let legal = legalize::legalize(&nl).unwrap();
        let circuit = lower::to_circuit(&legal).unwrap();
        let n = 4;
        let checked = verify_against(&circuit, 1000, 7, |packed| {
            let a = packed & 0xf;
            let b = packed >> n & 0xf;
            a * b
        });
        assert_eq!(checked, 1000);
    }

    #[test]
    fn random_verification_covers_the_16_bit_adder() {
        let nl = arith::ripple_carry_adder(16);
        let circuit = lower::to_circuit(&nl).unwrap();
        let checked = verify_against(&circuit, 4096, 11, |packed| {
            let a = packed & 0xffff;
            let b = packed >> 16 & 0xffff;
            let cin = packed >> 32 & 1;
            a + b + cin
        });
        assert_eq!(checked, 4096);
    }
}
