//! Lowering between [`Netlist`] and [`swgates::circuit::Circuit`].
//!
//! [`to_circuit`] flattens macros, orders the cells topologically, and
//! emits the feed-forward gate list the rest of the repo evaluates,
//! renders, and prices. [`from_circuit`] lifts an existing circuit into
//! the IR (inputs `i0…`, gate outputs `g0…`) so hand-built circuits can
//! be inspected, legalized, and re-scored with netlist tooling.
//!
//! Both directions preserve behaviour exactly; `to_circuit ∘
//! from_circuit` reproduces the original circuit gate for gate (the
//! parity tests in `tests/parity.rs` lean on `Circuit: PartialEq`).

use swgates::circuit::{Circuit, GateKind, Signal};

use crate::ir::{CellKind, Driver, Netlist};
use crate::SwNetError;

/// Lowers a netlist to a feed-forward circuit. Macro cells are
/// elaborated first; cell order follows [`Netlist::check`]'s
/// deterministic topological order, so an already-ordered netlist
/// lowers in insertion order.
///
/// # Errors
///
/// [`SwNetError::Invalid`] if the netlist fails [`Netlist::check`].
pub fn to_circuit(netlist: &Netlist) -> Result<Circuit, SwNetError> {
    let flat = netlist.elaborate();
    let order = flat.check()?;
    let mut circuit = Circuit::new(flat.inputs().len());
    // Net → lowered signal, filled as cells are emitted.
    let mut signal_of: Vec<Option<Signal>> = vec![None; flat.net_count()];
    for (position, &net) in flat.inputs().iter().enumerate() {
        signal_of[net.index()] = Some(Signal::Input(position));
    }
    for cell_index in order {
        let cell = flat.cell(cell_index);
        let inputs: Vec<Signal> = cell
            .ins
            .iter()
            .map(|net| signal_of[net.index()].expect("topological order"))
            .collect();
        let kind: GateKind = cell.kind.gate_kind();
        let signal = circuit.add_gate(kind, inputs)?;
        signal_of[cell.outs[0].index()] = Some(signal);
    }
    for &net in flat.outputs() {
        circuit.mark_output(signal_of[net.index()].expect("outputs are driven"))?;
    }
    Ok(circuit)
}

/// Lifts a circuit into the IR. Inputs become nets `i0…`, gate `g`
/// drives net `g<g>`; outputs are marked in declaration order.
pub fn from_circuit(circuit: &Circuit) -> Result<Netlist, SwNetError> {
    let mut netlist = Netlist::new();
    let input_nets: Vec<_> = (0..circuit.input_count())
        .map(|i| netlist.add_input(&format!("i{i}")))
        .collect::<Result<Vec<_>, _>>()?;
    let mut gate_nets = Vec::with_capacity(circuit.gate_count());
    for g in 0..circuit.gate_count() {
        let kind = gate_cell_kind(circuit.gate_kind(g).expect("gate exists"));
        let ins: Vec<_> = circuit
            .gate_inputs(g)
            .expect("gate exists")
            .iter()
            .map(|&signal| match signal {
                Signal::Input(i) => input_nets[i],
                Signal::Gate(earlier) => gate_nets[earlier],
            })
            .collect();
        let out = netlist.net(&format!("g{g}"));
        netlist.add_cell(kind, &ins, &[out])?;
        gate_nets.push(out);
    }
    for &signal in circuit.outputs() {
        let net = match signal {
            Signal::Input(i) => input_nets[i],
            Signal::Gate(g) => gate_nets[g],
        };
        netlist.mark_output(net);
    }
    Ok(netlist)
}

/// The [`CellKind`] a circuit gate lifts to (inverse of
/// [`CellKind::gate_kind`]).
pub fn gate_cell_kind(kind: GateKind) -> CellKind {
    match kind {
        GateKind::Maj3 => CellKind::Maj3,
        GateKind::Xor => CellKind::Xor,
        GateKind::Xnor => CellKind::Xnor,
        GateKind::And => CellKind::And,
        GateKind::Or => CellKind::Or,
        GateKind::Nand => CellKind::Nand,
        GateKind::Nor => CellKind::Nor,
        GateKind::Not => CellKind::Inv,
        GateKind::Repeater => CellKind::Buf,
    }
}

/// The number of splitter arms and repeater candidates (`Repeater`
/// gates) in a lowered circuit.
pub fn repeater_count(circuit: &Circuit) -> usize {
    (0..circuit.gate_count())
        .filter(|&g| circuit.gate_kind(g) == Some(GateKind::Repeater))
        .count()
}

/// True when the driver of `net` is a primary input (exempt from
/// fan-out limits).
pub fn driven_by_input(netlist: &Netlist, net: crate::ir::NetId) -> bool {
    matches!(netlist.driver(net), Some(Driver::Input(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::CellKind;
    use swgates::encoding::{all_patterns, Bit};

    fn fa_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let cin = nl.add_input("cin").unwrap();
        let sum = nl.net("sum");
        let cout = nl.net("cout");
        nl.add_cell(CellKind::FullAdder, &[a, b, cin], &[sum, cout])
            .unwrap();
        nl.mark_output(sum);
        nl.mark_output(cout);
        nl
    }

    #[test]
    fn full_adder_macro_lowers_to_the_hand_built_circuit() {
        let circuit = to_circuit(&fa_netlist()).unwrap();
        assert_eq!(circuit, Circuit::full_adder());
    }

    #[test]
    fn lowering_preserves_evaluation() {
        let nl = fa_netlist();
        let circuit = to_circuit(&nl).unwrap();
        for pattern in all_patterns::<3>() {
            assert_eq!(
                nl.evaluate(&pattern).unwrap(),
                circuit.evaluate(&pattern).unwrap()
            );
        }
    }

    #[test]
    fn circuit_round_trips_through_the_ir() {
        let original = Circuit::ripple_carry_adder(3);
        let lifted = from_circuit(&original).unwrap();
        let back = to_circuit(&lifted).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn repeaters_survive_the_round_trip() {
        let mut circuit = Circuit::new(1);
        let r = circuit
            .add_gate(GateKind::Repeater, vec![Signal::Input(0)])
            .unwrap();
        circuit.mark_output(r).unwrap();
        let lifted = from_circuit(&circuit).unwrap();
        assert_eq!(lifted.cells()[0].kind, CellKind::Buf);
        assert_eq!(to_circuit(&lifted).unwrap(), circuit);
        assert_eq!(repeater_count(&circuit), 1);
    }

    #[test]
    fn gate_kinds_round_trip() {
        for kind in [
            GateKind::Maj3,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Not,
            GateKind::Repeater,
        ] {
            assert_eq!(gate_cell_kind(kind).gate_kind(), kind);
        }
    }

    #[test]
    fn outputs_may_be_primary_inputs() {
        let mut circuit = Circuit::new(2);
        circuit.mark_output(Signal::Input(1)).unwrap();
        let lifted = from_circuit(&circuit).unwrap();
        assert_eq!(
            lifted.evaluate(&[Bit::Zero, Bit::One]).unwrap(),
            vec![Bit::One]
        );
        assert_eq!(to_circuit(&lifted).unwrap(), circuit);
    }
}
