//! Progress reporting and batch metrics.
//!
//! [`Progress`] prints one line per finished job (`[3/8] maj3-011 done
//! in 2.41 s`) from whichever worker thread completed it; [`BatchMetrics`]
//! aggregates the batch afterwards — wall time, summed per-job CPU time
//! and the realized speedup over a serial run of the same jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crate::json::Json;

/// Thread-safe live progress printer.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    quiet: bool,
}

impl Progress {
    /// A progress reporter for `total` jobs; `quiet` suppresses output.
    pub fn new(total: usize, quiet: bool) -> Progress {
        Progress {
            total,
            done: AtomicUsize::new(0),
            quiet,
        }
    }

    /// Records one finished job and prints its progress line.
    pub fn job_finished(&self, id: &str, ok: bool, wall: Duration) {
        let k = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        if self.quiet {
            return;
        }
        let status = if ok { "done" } else { "FAILED" };
        eprintln!(
            "[{k}/{total}] {id} {status} in {wall:.2} s",
            total = self.total,
            wall = wall.as_secs_f64()
        );
    }

    /// How many jobs have been reported finished.
    pub fn finished(&self) -> usize {
        self.done.load(Ordering::SeqCst)
    }
}

/// Aggregate metrics of one batch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMetrics {
    /// Jobs in the batch (including resumed ones).
    pub total: usize,
    /// Jobs that completed successfully this run.
    pub done: usize,
    /// Jobs that failed this run.
    pub failed: usize,
    /// Jobs skipped because a manifest already had their outputs.
    pub resumed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole batch (including calibration).
    pub wall: Duration,
    /// Summed wall time of the individual jobs — what a serial run of
    /// the same jobs would have cost (minus scheduling overhead).
    pub cpu: Duration,
}

impl BatchMetrics {
    /// Realized speedup over running the same jobs serially: summed
    /// per-job time divided by the batch wall time. 1.0 when nothing
    /// overlapped; approaches the worker count under perfect scaling.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.cpu.as_secs_f64() / wall
        } else {
            1.0
        }
    }

    /// The metrics as a JSON object (embedded in the manifest summary).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("total", Json::Num(self.total as f64)),
            ("done", Json::Num(self.done as f64)),
            ("failed", Json::Num(self.failed as f64)),
            ("resumed", Json::Num(self.resumed as f64)),
            ("workers", Json::Num(self.workers as f64)),
            ("wall_ms", Json::Num(self.wall.as_secs_f64() * 1e3)),
            ("cpu_ms", Json::Num(self.cpu.as_secs_f64() * 1e3)),
            ("speedup", Json::Num(self.speedup())),
        ])
    }

    /// One human-readable summary line.
    pub fn summary_line(&self) -> String {
        format!(
            "{done}/{total} done{failed}{resumed} in {wall:.2} s \
             ({workers} worker{plural}, {speedup:.2}x vs serial)",
            done = self.done + self.resumed,
            total = self.total,
            failed = if self.failed > 0 {
                format!(", {} FAILED", self.failed)
            } else {
                String::new()
            },
            resumed = if self.resumed > 0 {
                format!(" ({} resumed)", self.resumed)
            } else {
                String::new()
            },
            wall = self.wall.as_secs_f64(),
            workers = self.workers,
            plural = if self.workers == 1 { "" } else { "s" },
            speedup = self.speedup(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchMetrics {
        BatchMetrics {
            total: 8,
            done: 5,
            failed: 1,
            resumed: 2,
            workers: 4,
            wall: Duration::from_millis(500),
            cpu: Duration::from_millis(1500),
        }
    }

    #[test]
    fn speedup_is_cpu_over_wall() {
        assert!((sample().speedup() - 3.0).abs() < 1e-12);
        let serial = BatchMetrics {
            cpu: Duration::from_millis(500),
            ..sample()
        };
        assert!((serial.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_wall_does_not_divide_by_zero() {
        let m = BatchMetrics {
            wall: Duration::ZERO,
            ..sample()
        };
        assert_eq!(m.speedup(), 1.0);
    }

    #[test]
    fn json_carries_all_fields() {
        let j = sample().to_json();
        assert_eq!(j.get("total").and_then(Json::as_f64), Some(8.0));
        assert_eq!(j.get("resumed").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("workers").and_then(Json::as_f64), Some(4.0));
        assert!((j.get("speedup").and_then(Json::as_f64).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_line_mentions_failures_and_resumes() {
        let line = sample().summary_line();
        assert!(line.contains("7/8 done"), "{line}");
        assert!(line.contains("1 FAILED"), "{line}");
        assert!(line.contains("2 resumed"), "{line}");
        assert!(line.contains("4 workers"), "{line}");
    }

    #[test]
    fn progress_counts_jobs() {
        let p = Progress::new(3, true);
        p.job_finished("a", true, Duration::from_millis(1));
        p.job_finished("b", false, Duration::from_millis(1));
        assert_eq!(p.finished(), 2);
    }
}
