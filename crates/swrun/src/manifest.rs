//! JSON-lines run manifests: the batch runner's on-disk log and its
//! checkpoint/resume source of truth.
//!
//! A manifest is an append-only text file with one JSON object per line:
//!
//! * a `batch` record each time a batch (re)starts on the file,
//! * a `job` record the moment each job finishes (`done` or `failed`),
//!   carrying its inputs, outputs and wall time,
//! * a `summary` record when the batch completes, with the aggregate
//!   metrics.
//!
//! Every line is flushed as soon as the job completes, so a killed run
//! leaves a valid prefix; on the next run [`Manifest::load`] replays the
//! file, [`Manifest::completed`] yields the jobs that already succeeded,
//! and the batch skips them. A final line truncated mid-write by the
//! kill is tolerated (ignored), as are `failed` records — failed jobs
//! are retried on resume.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::Json;
use crate::RunError;

/// Appends manifest records; safe to share across worker threads.
#[derive(Debug)]
pub struct ManifestWriter {
    file: Mutex<File>,
    path: PathBuf,
}

impl ManifestWriter {
    /// Opens a manifest for appending (`append = true`, the resume
    /// case) or afresh, truncating any previous contents.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] if the file cannot be opened.
    pub fn open(path: &Path, append: bool) -> Result<ManifestWriter, RunError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .append(append)
            .truncate(!append)
            .open(path)
            .map_err(|e| RunError::io(path, &e))?;
        Ok(ManifestWriter {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one record as a JSON line and flushes it.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] on write failure.
    pub fn record(&self, record: &Json) -> Result<(), RunError> {
        let line = record.render();
        let mut file = self.file.lock().expect("manifest writer poisoned");
        writeln!(file, "{line}").map_err(|e| RunError::io(&self.path, &e))?;
        file.flush().map_err(|e| RunError::io(&self.path, &e))
    }

    /// Writes the batch-start header.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] on write failure.
    pub fn batch_header(
        &self,
        name: &str,
        total: usize,
        resumed: usize,
        jobs: usize,
    ) -> Result<(), RunError> {
        self.record(&Json::obj([
            ("record", Json::str("batch")),
            ("name", Json::str(name)),
            ("total", Json::Num(total as f64)),
            ("resumed", Json::Num(resumed as f64)),
            ("jobs", Json::Num(jobs as f64)),
        ]))
    }

    /// Writes a completed job's record.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] on write failure.
    pub fn job_done(
        &self,
        id: &str,
        inputs: Json,
        outputs: Json,
        wall_ms: f64,
    ) -> Result<(), RunError> {
        self.record(&Json::obj([
            ("record", Json::str("job")),
            ("id", Json::str(id)),
            ("status", Json::str("done")),
            ("inputs", inputs),
            ("outputs", outputs),
            ("wall_ms", Json::Num(wall_ms)),
        ]))
    }

    /// Writes a failed job's record.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] on write failure.
    pub fn job_failed(
        &self,
        id: &str,
        inputs: Json,
        error: &str,
        wall_ms: f64,
    ) -> Result<(), RunError> {
        self.record(&Json::obj([
            ("record", Json::str("job")),
            ("id", Json::str(id)),
            ("status", Json::str("failed")),
            ("inputs", inputs),
            ("error", Json::str(error)),
            ("wall_ms", Json::Num(wall_ms)),
        ]))
    }

    /// Writes the batch summary footer.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] on write failure.
    pub fn summary(&self, metrics: &Json) -> Result<(), RunError> {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("record".to_string(), Json::str("summary"));
        if let Json::Obj(fields) = metrics {
            for (k, v) in fields {
                obj.insert(k.clone(), v.clone());
            }
        }
        self.record(&Json::Obj(obj))
    }
}

/// A parsed manifest: the records of previous runs on the same file.
#[derive(Debug, Default)]
pub struct Manifest {
    records: Vec<Json>,
}

impl Manifest {
    /// Loads a manifest file. A missing file yields an empty manifest
    /// (nothing to resume). Unparseable lines — e.g. one truncated by a
    /// kill mid-write — are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] only for real I/O failures (permission,
    /// read error), never for content problems.
    pub fn load(path: &Path) -> Result<Manifest, RunError> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Manifest::default());
            }
            Err(e) => return Err(RunError::io(path, &e)),
        };
        let mut records = Vec::new();
        for line in BufReader::new(file).lines() {
            let line = line.map_err(|e| RunError::io(path, &e))?;
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(value) = Json::parse(&line) {
                records.push(value);
            }
        }
        Ok(Manifest { records })
    }

    /// All parsed records, in file order.
    pub fn records(&self) -> &[Json] {
        &self.records
    }

    /// Outputs of every job that completed successfully, by job id. If a
    /// job id appears more than once (retried across runs), the last
    /// successful record wins.
    pub fn completed(&self) -> HashMap<String, Json> {
        let mut done = HashMap::new();
        for record in &self.records {
            if record.get("record").and_then(Json::as_str) != Some("job") {
                continue;
            }
            if record.get("status").and_then(Json::as_str) != Some("done") {
                continue;
            }
            let (Some(id), Some(outputs)) = (
                record.get("id").and_then(Json::as_str),
                record.get("outputs"),
            ) else {
                continue;
            };
            done.insert(id.to_string(), outputs.clone());
        }
        done
    }

    /// Ids of jobs whose most recent record is a failure (and that never
    /// later succeeded) — reported so a resumed batch can say what it is
    /// retrying.
    pub fn failed_ids(&self) -> Vec<String> {
        let completed = self.completed();
        let mut failed = Vec::new();
        for record in &self.records {
            if record.get("record").and_then(Json::as_str) != Some("job") {
                continue;
            }
            if record.get("status").and_then(Json::as_str) != Some("failed") {
                continue;
            }
            if let Some(id) = record.get("id").and_then(Json::as_str) {
                if !completed.contains_key(id) && !failed.iter().any(|f| f == id) {
                    failed.push(id.to_string());
                }
            }
        }
        failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("swrun-manifest-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_job_records() {
        let path = temp_path("roundtrip.jsonl");
        let writer = ManifestWriter::open(&path, false).unwrap();
        writer.batch_header("fig5", 8, 0, 4).unwrap();
        writer
            .job_done(
                "maj3-011",
                Json::obj([("pattern", Json::str("011"))]),
                Json::obj([("o1_mag", Json::Num(1.25e-4))]),
                321.5,
            )
            .unwrap();
        writer
            .job_failed("maj3-100", Json::Null, "solver blew up", 12.0)
            .unwrap();
        drop(writer);

        let manifest = Manifest::load(&path).unwrap();
        assert_eq!(manifest.records().len(), 3);
        let completed = manifest.completed();
        assert_eq!(completed.len(), 1);
        let outputs = &completed["maj3-011"];
        assert_eq!(outputs.get("o1_mag").and_then(Json::as_f64), Some(1.25e-4));
        assert_eq!(manifest.failed_ids(), vec!["maj3-100".to_string()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_manifest() {
        let manifest = Manifest::load(Path::new("/nonexistent/swrun.jsonl")).unwrap();
        assert!(manifest.records().is_empty());
        assert!(manifest.completed().is_empty());
    }

    #[test]
    fn truncated_final_line_is_ignored() {
        let path = temp_path("truncated.jsonl");
        let writer = ManifestWriter::open(&path, false).unwrap();
        writer
            .job_done("a", Json::Null, Json::obj([("v", Json::Num(1.0))]), 5.0)
            .unwrap();
        drop(writer);
        // Simulate a kill mid-write of the next record.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "{{\"record\":\"job\",\"id\":\"b\",\"stat").unwrap();
        drop(file);

        let manifest = Manifest::load(&path).unwrap();
        assert_eq!(manifest.records().len(), 1);
        assert!(manifest.completed().contains_key("a"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn later_success_overrides_earlier_failure() {
        let path = temp_path("retry.jsonl");
        let writer = ManifestWriter::open(&path, false).unwrap();
        writer
            .job_failed("x", Json::Null, "first try", 1.0)
            .unwrap();
        drop(writer);
        // Second run appends.
        let writer = ManifestWriter::open(&path, true).unwrap();
        writer
            .job_done("x", Json::Null, Json::obj([("v", Json::Num(2.0))]), 1.0)
            .unwrap();
        drop(writer);

        let manifest = Manifest::load(&path).unwrap();
        assert_eq!(manifest.records().len(), 2);
        assert!(manifest.completed().contains_key("x"));
        assert!(manifest.failed_ids().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_merges_metric_fields() {
        let path = temp_path("summary.jsonl");
        let writer = ManifestWriter::open(&path, false).unwrap();
        writer
            .summary(&Json::obj([
                ("done", Json::Num(8.0)),
                ("speedup", Json::Num(3.2)),
            ]))
            .unwrap();
        drop(writer);
        let manifest = Manifest::load(&path).unwrap();
        let record = &manifest.records()[0];
        assert_eq!(record.get("record").and_then(Json::as_str), Some("summary"));
        assert_eq!(record.get("speedup").and_then(Json::as_f64), Some(3.2));
        std::fs::remove_file(&path).ok();
    }
}
