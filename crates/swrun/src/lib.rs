//! # swrun — std-only parallel batch execution for spin-wave gate runs
//!
//! Micromagnetic gate validation is embarrassingly parallel — 8 MAJ3
//! patterns, 4 XOR patterns, temperature and roughness sweeps — but each
//! LLG run takes seconds to minutes and a killed sweep used to restart
//! from zero. This crate is the batch layer the `repro` binary runs on:
//!
//! * [`pool`] — a `std::thread`-based job pool (`--jobs N`) with per-job
//!   panic isolation and wall-time measurement.
//! * [`json`] — a hand-rolled minimal JSON value/writer/parser (the
//!   workspace is dependency-free by policy; see README).
//! * [`manifest`] — JSON-lines run manifests: one flushed line per
//!   completed job, giving crash-safe checkpoint/resume.
//! * [`metrics`] — live `[k/n]` progress and aggregate batch metrics
//!   (wall time, summed job time, realized speedup vs serial).
//! * [`batch`] — the engine tying those together: [`batch::Batch::run`]
//!   skips manifest-completed jobs, fans the rest out, logs and reports.
//! * [`resident`] — a long-lived worker pool with per-job handles for
//!   resident processes (the `swserve` HTTP service), with graceful
//!   drain on close.
//! * [`gates`] — the bridge to [`swgates`]: pattern batches for the
//!   triangle MAJ3/XOR gates with shared drive-trim calibration, sweep
//!   helpers, and [`gates::MemoBackend`] to feed batch results back into
//!   the ordinary truth-table decoding.
//!
//! ## Example
//!
//! ```no_run
//! use swgates::layout::TriangleMaj3Layout;
//! use swgates::mumag::MumagBackend;
//! use swrun::batch::RunOptions;
//! use swrun::gates::maj3_patterns;
//!
//! let backend = MumagBackend::fast();
//! let layout = TriangleMaj3Layout::paper();
//! let options = RunOptions::default()
//!     .with_jobs(4)
//!     .with_manifest("fig5.manifest.jsonl");
//! let report = maj3_patterns(&backend, &layout, &options).unwrap();
//! println!("{}", report.metrics.summary_line());
//! // Re-running with the same manifest skips everything already done.
//! ```

pub mod batch;
pub mod gates;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod pool;
pub mod resident;

use std::fmt;
use std::path::{Path, PathBuf};

pub use batch::{Batch, BatchReport, JobSpec, Outcome, RunOptions};
pub use json::Json;
pub use manifest::{Manifest, ManifestWriter};
pub use metrics::{BatchMetrics, Progress};
pub use pool::{JobFailure, JobOutcome, JobPool};
pub use resident::{JobHandle, JobStage, PoolClosed, ResidentPool};

/// Splits the machine's cores between `jobs` concurrently running
/// simulations, returning the per-simulation thread count (≥ 1).
///
/// Use this to compose batch-level parallelism (swrun jobs) with
/// magnum's intra-simulation threading without oversubscribing: a batch
/// of 4 jobs on a 16-core machine gets 4 threads per simulation.
pub fn thread_budget(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / jobs.max(1)).max(1)
}

/// Errors that abort a batch (individual job failures do not — they are
/// reported per job as [`Outcome::Failed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// A manifest file could not be opened, read or written.
    Io {
        /// The manifest path.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        reason: String,
    },
    /// Shared batch setup failed (e.g. the drive-trim calibration that
    /// every job depends on).
    Setup {
        /// Description of the failure.
        reason: String,
    },
}

impl RunError {
    pub(crate) fn io(path: &Path, error: &dyn fmt::Display) -> RunError {
        RunError::Io {
            path: path.to_path_buf(),
            reason: error.to_string(),
        }
    }

    pub(crate) fn setup(error: &dyn fmt::Display) -> RunError {
        RunError::Setup {
            reason: error.to_string(),
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Io { path, reason } => {
                write!(f, "manifest {}: {reason}", path.display())
            }
            RunError::Setup { reason } => write!(f, "batch setup failed: {reason}"),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_error_displays_context() {
        let e = RunError::io(Path::new("/tmp/x.jsonl"), &"denied");
        assert!(e.to_string().contains("/tmp/x.jsonl"));
        assert!(e.to_string().contains("denied"));
        let s = RunError::setup(&"calibration diverged");
        assert!(s.to_string().contains("calibration diverged"));
    }

    #[test]
    fn run_error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<RunError>();
    }

    #[test]
    fn thread_budget_splits_cores_without_oversubscribing() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(thread_budget(1), cores);
        // jobs × threads never exceeds the core count (unless a single
        // job cannot go below one thread).
        for jobs in 1..=2 * cores {
            let t = thread_budget(jobs);
            assert!(t >= 1);
            assert!(jobs * t <= cores || t == 1, "jobs {jobs} threads {t}");
        }
        // Degenerate input is clamped rather than dividing by zero.
        assert_eq!(thread_budget(0), cores);
    }
}
