//! The parallel job pool: scoped worker threads over a shared queue.
//!
//! Built entirely on `std`: a `Mutex<VecDeque>` of pending job indices
//! feeds `--jobs N` scoped threads ([`std::thread::scope`]); each worker
//! pops, runs, and stores its result until the queue drains. A panic in
//! one job is caught ([`std::panic::catch_unwind`]) and reported as that
//! job's failure — it never takes down the batch or the other workers.
//!
//! `jobs = 1` degenerates to a strictly serial in-order run on the pool
//! thread, so serial execution remains the default-compatible path.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why a job did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The job returned an error message.
    Error(String),
    /// The job panicked; the payload rendered as text if possible.
    Panic(String),
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Error(e) => write!(f, "error: {e}"),
            JobFailure::Panic(p) => write!(f, "panic: {p}"),
        }
    }
}

/// One job's outcome with its measured wall time.
#[derive(Debug, Clone)]
pub struct JobOutcome<R> {
    /// The job's value, or why it failed.
    pub result: Result<R, JobFailure>,
    /// Wall-clock time this job spent executing.
    pub wall: Duration,
}

/// A fixed-width parallel executor.
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// A pool running at most `workers` jobs concurrently (clamped to at
    /// least 1).
    pub fn new(workers: usize) -> Self {
        JobPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        JobPool::new(workers)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `worker` over every item, `self.workers()` at a time, and
    /// returns outcomes in input order. `observer` is called after each
    /// job completes (from the thread that ran it) with the item index
    /// and its outcome — the progress/metrics hook.
    ///
    /// Jobs that panic are reported as [`JobFailure::Panic`] without
    /// poisoning the pool; jobs that return `Err` become
    /// [`JobFailure::Error`].
    pub fn run<T, R, F, O>(&self, items: &[T], worker: F, observer: O) -> Vec<JobOutcome<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> Result<R, String> + Sync,
        O: Fn(usize, &JobOutcome<R>) + Sync,
    {
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..items.len()).collect());
        let results: Vec<Mutex<Option<JobOutcome<R>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();

        let execute_one = |index: usize| {
            let item = &items[index];
            let start = Instant::now();
            let result = match catch_unwind(AssertUnwindSafe(|| worker(index, item))) {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(message)) => Err(JobFailure::Error(message)),
                Err(payload) => Err(JobFailure::Panic(panic_message(payload.as_ref()))),
            };
            let outcome = JobOutcome {
                result,
                wall: start.elapsed(),
            };
            observer(index, &outcome);
            *results[index].lock().expect("result slot poisoned") = Some(outcome);
        };

        let drain = || {
            while let Some(index) = {
                let mut q = queue.lock().expect("job queue poisoned");
                q.pop_front()
            } {
                execute_one(index);
            }
        };

        let threads = self.workers.min(items.len().max(1));
        if threads <= 1 {
            drain();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(drain);
                }
            });
        }

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every queued job stores an outcome")
            })
            .collect()
    }
}

/// Renders a panic payload the way the default hook would.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_input_order() {
        let items: Vec<u64> = (0..32).collect();
        let outcomes = JobPool::new(4).run(
            &items,
            |_, &x| {
                // Stagger finish order: later items finish first.
                std::thread::sleep(Duration::from_micros(200 * (32 - x)));
                Ok(x * x)
            },
            |_, _| {},
        );
        let values: Vec<u64> = outcomes
            .into_iter()
            .map(|o| o.result.expect("job succeeds"))
            .collect();
        assert_eq!(values, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_matches_parallel_pool() {
        let items: Vec<u64> = (0..16).collect();
        let run = |workers| {
            JobPool::new(workers)
                .run(&items, |_, &x| Ok(x.wrapping_mul(0x9E3779B9)), |_, _| {})
                .into_iter()
                .map(|o| o.result.unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let items: Vec<u32> = (0..8).collect();
        let outcomes = JobPool::new(3).run(
            &items,
            |_, &x| {
                if x == 3 {
                    panic!("job {x} exploded");
                }
                Ok(x)
            },
            |_, _| {},
        );
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 3 {
                match &outcome.result {
                    Err(JobFailure::Panic(msg)) => assert!(msg.contains("exploded")),
                    other => panic!("expected panic failure, got {other:?}"),
                }
            } else {
                assert_eq!(outcome.result.as_ref().unwrap(), &(i as u32));
            }
        }
    }

    #[test]
    fn error_results_are_reported_not_propagated() {
        let items = [1, 2];
        let outcomes = JobPool::new(2).run(
            &items,
            |_, &x| {
                if x == 2 {
                    Err("backend refused".to_string())
                } else {
                    Ok(x)
                }
            },
            |_, _| {},
        );
        assert!(outcomes[0].result.is_ok());
        assert_eq!(
            outcomes[1].result,
            Err(JobFailure::Error("backend refused".into()))
        );
    }

    #[test]
    fn observer_sees_every_job_exactly_once() {
        let items: Vec<u32> = (0..20).collect();
        let seen = AtomicUsize::new(0);
        JobPool::new(5).run(
            &items,
            |_, &x| Ok(x),
            |_, outcome| {
                assert!(outcome.result.is_ok());
                seen.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(seen.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn parallel_pool_actually_overlaps_work() {
        // 4 workers × 4 jobs of ~40 ms: parallel wall time must come in
        // well under the 160 ms serial total, even on a loaded machine.
        // On a single-core host this can't be asserted, so skip there.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return;
        }
        let items = [0u8; 4];
        let start = Instant::now();
        JobPool::new(4).run(
            &items,
            |_, _| {
                std::thread::sleep(Duration::from_millis(40));
                Ok(())
            },
            |_, _| {},
        );
        assert!(
            start.elapsed() < Duration::from_millis(140),
            "4×40 ms jobs took {:?} on 4 workers",
            start.elapsed()
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let outcomes: Vec<JobOutcome<()>> =
            JobPool::new(4).run(&[] as &[u8], |_, _| Ok(()), |_, _| {});
        assert!(outcomes.is_empty());
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(JobPool::new(0).workers(), 1);
        assert!(JobPool::auto().workers() >= 1);
    }
}
