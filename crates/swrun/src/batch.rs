//! The batch engine: jobs in, outcomes out, with parallelism, manifest
//! logging and checkpoint/resume handled in one place.
//!
//! A [`Batch`] is a named list of [`JobSpec`]s. [`Batch::run`] consults
//! the manifest (if one is configured and resume is enabled), skips jobs
//! whose outputs are already recorded, fans the remainder out over a
//! [`JobPool`](crate::pool::JobPool), logs every completion as a JSON
//! line, and returns per-job [`Outcome`]s in input order plus the
//! aggregate [`BatchMetrics`].

use std::path::PathBuf;
use std::time::Instant;

use crate::json::Json;
use crate::manifest::{Manifest, ManifestWriter};
use crate::metrics::{BatchMetrics, Progress};
use crate::pool::JobPool;
use crate::RunError;

/// How a batch should execute.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (1 = serial, the default).
    pub jobs: usize,
    /// Manifest file to log to (and resume from), if any.
    pub manifest: Option<PathBuf>,
    /// Whether to skip jobs already completed in the manifest. With
    /// `false` the manifest is truncated and every job reruns.
    pub resume: bool,
    /// Suppresses per-job progress lines.
    pub quiet: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: 1,
            manifest: None,
            resume: true,
            quiet: false,
        }
    }
}

impl RunOptions {
    /// Serial, no manifest, with live progress.
    pub fn serial() -> Self {
        RunOptions::default()
    }

    /// Sets the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the manifest path.
    pub fn with_manifest(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest = Some(path.into());
        self
    }

    /// Disables resume (forces a fresh run, truncating the manifest).
    pub fn fresh(mut self) -> Self {
        self.resume = false;
        self
    }

    /// Suppresses progress output.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }
}

/// One job: a stable id (the resume key), its inputs as recorded in the
/// manifest, and the payload handed to the worker.
#[derive(Debug, Clone)]
pub struct JobSpec<T> {
    /// Stable identifier — must be unique within the batch and identical
    /// across runs for resume to recognize the job.
    pub id: String,
    /// Inputs, recorded verbatim in the manifest.
    pub inputs: Json,
    /// The value handed to the worker function.
    pub payload: T,
}

/// What happened to one job.
#[derive(Debug, Clone)]
pub enum Outcome<R> {
    /// Ran this time; carries the worker's value and its manifest JSON.
    Fresh(R, Json),
    /// Skipped — the manifest already had its outputs.
    Resumed(Json),
    /// Failed (worker error or panic); carries the message.
    Failed(String),
}

impl<R> Outcome<R> {
    /// The job's outputs as JSON, whether fresh or resumed.
    pub fn outputs(&self) -> Option<&Json> {
        match self {
            Outcome::Fresh(_, json) | Outcome::Resumed(json) => Some(json),
            Outcome::Failed(_) => None,
        }
    }

    /// The worker's in-memory value, if the job ran this time.
    pub fn value(&self) -> Option<&R> {
        match self {
            Outcome::Fresh(value, _) => Some(value),
            _ => None,
        }
    }

    /// True if the job was skipped via the manifest.
    pub fn is_resumed(&self) -> bool {
        matches!(self, Outcome::Resumed(_))
    }

    /// The failure message, if the job failed.
    pub fn error(&self) -> Option<&str> {
        match self {
            Outcome::Failed(message) => Some(message),
            _ => None,
        }
    }
}

/// The result of running a batch.
#[derive(Debug)]
pub struct BatchReport<R> {
    /// Per-job outcomes, in the order the jobs were supplied.
    pub outcomes: Vec<Outcome<R>>,
    /// Aggregate timing and counts.
    pub metrics: BatchMetrics,
}

impl<R> BatchReport<R> {
    /// The first failure message, if any job failed.
    pub fn first_error(&self) -> Option<&str> {
        self.outcomes.iter().find_map(Outcome::error)
    }
}

/// A named collection of jobs ready to run.
#[derive(Debug)]
pub struct Batch<T> {
    name: String,
    specs: Vec<JobSpec<T>>,
}

impl<T: Sync> Batch<T> {
    /// A batch named `name` (recorded in the manifest header) over the
    /// given jobs.
    pub fn new(name: impl Into<String>, specs: Vec<JobSpec<T>>) -> Batch<T> {
        Batch {
            name: name.into(),
            specs,
        }
    }

    /// The job specs, in order.
    pub fn specs(&self) -> &[JobSpec<T>] {
        &self.specs
    }

    /// How many jobs would actually execute under `options` — i.e. are
    /// not already completed in the manifest. Lets callers skip shared
    /// setup (calibration) when a resumed batch has nothing left to do.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Io`] if the manifest exists but cannot be
    /// read.
    pub fn pending(&self, options: &RunOptions) -> Result<usize, RunError> {
        let completed = match (&options.manifest, options.resume) {
            (Some(path), true) => Manifest::load(path)?.completed(),
            _ => Default::default(),
        };
        Ok(self
            .specs
            .iter()
            .filter(|s| !completed.contains_key(&s.id))
            .count())
    }

    /// Runs the batch. `worker(payload)` produces the job's in-memory
    /// value and its manifest JSON; it runs on pool threads and must not
    /// assume any job ordering.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] for manifest I/O problems. Per-job failures
    /// (including panics) do **not** abort the batch — they come back as
    /// [`Outcome::Failed`].
    pub fn run<R, F>(&self, options: &RunOptions, worker: F) -> Result<BatchReport<R>, RunError>
    where
        R: Send,
        F: Fn(&T) -> Result<(R, Json), String> + Sync,
    {
        let start = Instant::now();

        // Resume bookkeeping: outputs already on disk, keyed by job id.
        let completed = match (&options.manifest, options.resume) {
            (Some(path), true) => Manifest::load(path)?.completed(),
            _ => Default::default(),
        };
        let writer = options
            .manifest
            .as_deref()
            .map(|path| ManifestWriter::open(path, options.resume))
            .transpose()?;

        let pending: Vec<usize> = (0..self.specs.len())
            .filter(|&i| !completed.contains_key(&self.specs[i].id))
            .collect();
        let resumed = self.specs.len() - pending.len();
        if let Some(w) = &writer {
            w.batch_header(&self.name, self.specs.len(), resumed, options.jobs)?;
        }
        if !options.quiet && resumed > 0 {
            eprintln!(
                "{}: resuming — {resumed}/{} job(s) already in manifest",
                self.name,
                self.specs.len()
            );
        }

        let progress = Progress::new(pending.len(), options.quiet);
        let outcomes_pending = JobPool::new(options.jobs).run(
            &pending,
            |_, &spec_index| worker(&self.specs[spec_index].payload),
            |slot, outcome| {
                let spec = &self.specs[pending[slot]];
                let wall_ms = outcome.wall.as_secs_f64() * 1e3;
                progress.job_finished(&spec.id, outcome.result.is_ok(), outcome.wall);
                if let Some(w) = &writer {
                    // A manifest write failure must not kill the worker
                    // thread mid-batch; surface it and keep computing.
                    let logged = match &outcome.result {
                        Ok((_, json)) => {
                            w.job_done(&spec.id, spec.inputs.clone(), json.clone(), wall_ms)
                        }
                        Err(failure) => w.job_failed(
                            &spec.id,
                            spec.inputs.clone(),
                            &failure.to_string(),
                            wall_ms,
                        ),
                    };
                    if let Err(e) = logged {
                        eprintln!("warning: manifest write failed: {e}");
                    }
                }
            },
        );

        // Reassemble in input order.
        let mut cpu = std::time::Duration::ZERO;
        let mut done = 0usize;
        let mut failed = 0usize;
        let mut fresh: Vec<Option<Outcome<R>>> = outcomes_pending
            .into_iter()
            .map(|o| {
                cpu += o.wall;
                Some(match o.result {
                    Ok((value, json)) => {
                        done += 1;
                        Outcome::Fresh(value, json)
                    }
                    Err(failure) => {
                        failed += 1;
                        Outcome::Failed(failure.to_string())
                    }
                })
            })
            .collect();
        let mut slot_of = vec![usize::MAX; self.specs.len()];
        for (slot, &spec_index) in pending.iter().enumerate() {
            slot_of[spec_index] = slot;
        }
        let outcomes: Vec<Outcome<R>> = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                if slot_of[i] != usize::MAX {
                    fresh[slot_of[i]].take().expect("each slot consumed once")
                } else {
                    Outcome::Resumed(completed[&spec.id].clone())
                }
            })
            .collect();

        let metrics = BatchMetrics {
            total: self.specs.len(),
            done,
            failed,
            resumed,
            workers: options.jobs.max(1),
            wall: start.elapsed(),
            cpu,
        };
        if let Some(w) = &writer {
            w.summary(&metrics.to_json())?;
        }
        if !options.quiet {
            eprintln!("{}: {}", self.name, metrics.summary_line());
        }
        Ok(BatchReport { outcomes, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str, payload: i64) -> JobSpec<i64> {
        JobSpec {
            id: id.to_string(),
            inputs: Json::obj([("x", Json::Num(payload as f64))]),
            payload,
        }
    }

    fn square(x: &i64) -> Result<(i64, Json), String> {
        let sq = x * x;
        Ok((sq, Json::obj([("sq", Json::Num(sq as f64))])))
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("swrun-batch-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn parallel_matches_serial() {
        let specs: Vec<JobSpec<i64>> = (0..12).map(|i| spec(&format!("j{i}"), i)).collect();
        let batch = Batch::new("squares", specs);
        let values = |jobs: usize| {
            batch
                .run(&RunOptions::serial().with_jobs(jobs).quiet(), square)
                .unwrap()
                .outcomes
                .iter()
                .map(|o| *o.value().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(values(1), values(6));
    }

    #[test]
    fn resume_skips_completed_jobs() {
        let path = temp_path("resume.jsonl");
        std::fs::remove_file(&path).ok();
        let specs: Vec<JobSpec<i64>> = (0..4).map(|i| spec(&format!("j{i}"), i)).collect();
        let options = RunOptions::serial().with_manifest(&path).quiet();

        // First run: j1 fails, the rest succeed.
        let batch = Batch::new("resume-test", specs.clone());
        let report = batch
            .run(&options, |&x| {
                if x == 1 {
                    Err("flaky".to_string())
                } else {
                    square(&x)
                }
            })
            .unwrap();
        assert_eq!(report.metrics.done, 3);
        assert_eq!(report.metrics.failed, 1);

        // Second run: only the failed job executes; the worker proves it
        // by panicking on anything else.
        let report = Batch::new("resume-test", specs)
            .run(&options, |&x| {
                assert_eq!(x, 1, "completed job was re-run");
                square(&x)
            })
            .unwrap();
        assert_eq!(report.metrics.resumed, 3);
        assert_eq!(report.metrics.done, 1);
        assert!(report.outcomes[0].is_resumed());
        assert!(!report.outcomes[1].is_resumed());
        // Resumed outputs carry the recorded JSON.
        assert_eq!(
            report.outcomes[2]
                .outputs()
                .unwrap()
                .get("sq")
                .and_then(Json::as_f64),
            Some(4.0)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_option_reruns_everything() {
        let path = temp_path("fresh.jsonl");
        std::fs::remove_file(&path).ok();
        let specs: Vec<JobSpec<i64>> = (0..3).map(|i| spec(&format!("j{i}"), i)).collect();
        let resume = RunOptions::serial().with_manifest(&path).quiet();
        Batch::new("fresh-test", specs.clone())
            .run(&resume, square)
            .unwrap();

        let report = Batch::new("fresh-test", specs)
            .run(&resume.clone().fresh(), square)
            .unwrap();
        assert_eq!(report.metrics.resumed, 0);
        assert_eq!(report.metrics.done, 3);
        // The truncated manifest only holds the fresh run's records:
        // 1 header + 3 jobs + 1 summary.
        let manifest = Manifest::load(&path).unwrap();
        assert_eq!(manifest.records().len(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panics_become_failed_outcomes() {
        let specs: Vec<JobSpec<i64>> = (0..4).map(|i| spec(&format!("j{i}"), i)).collect();
        let report = Batch::new("panicky", specs)
            .run(&RunOptions::serial().with_jobs(2).quiet(), |&x| {
                if x == 2 {
                    panic!("boom at {x}");
                }
                square(&x)
            })
            .unwrap();
        assert_eq!(report.metrics.failed, 1);
        assert!(report.outcomes[2].error().unwrap().contains("boom"));
        assert!(report.first_error().unwrap().contains("boom"));
        // The other jobs are unaffected.
        assert_eq!(*report.outcomes[3].value().unwrap(), 9);
    }

    #[test]
    fn no_manifest_means_no_resume() {
        let specs = vec![spec("only", 5)];
        let report = Batch::new("nomanifest", specs)
            .run(&RunOptions::serial().quiet(), square)
            .unwrap();
        assert_eq!(report.metrics.resumed, 0);
        assert_eq!(*report.outcomes[0].value().unwrap(), 25);
    }
}
