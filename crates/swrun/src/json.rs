//! Manifest JSON — re-exported from the shared [`swjson`] crate.
//!
//! The JSON value/writer/parser started life here as the manifest
//! format's private serializer. Once `swserve` needed the same machinery
//! for HTTP bodies it was promoted to the `swjson` crate (with parser
//! hardening for network input); this module stays as a re-export so
//! `swrun::json::Json` and `swrun::Json` keep working.

pub use swjson::{Json, JsonError, MAX_DEPTH};
