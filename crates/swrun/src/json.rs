//! Hand-rolled minimal JSON — the manifest format's only serializer.
//!
//! The workspace is std-only (no `serde`), and run manifests need just a
//! small, predictable subset of JSON: objects, arrays, strings, finite
//! numbers, booleans and null. [`Json`] is the value tree, with a writer
//! ([`Json::render`]) that always emits valid JSON and a recursive-descent
//! parser ([`Json::parse`]) that accepts exactly what the writer emits
//! (plus whitespace and escapes), which is all checkpoint/resume needs.
//!
//! Non-finite numbers (`NaN`, `±∞`) serialize as `null`, mirroring what
//! `serde_json` does — manifests must stay loadable by stock JSON tools.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite double (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted so rendering is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's array elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` round-trips f64 exactly (shortest form).
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                reason: "trailing characters after JSON value".into(),
            });
        }
        Ok(value)
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, reason: impl Into<String>) -> JsonError {
    JsonError {
        at: pos,
        reason: reason.into(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(fail(*pos, format!("expected `{token}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(fail(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(fail(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(fail(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(fail(*pos, "expected `\"`"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(fail(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| fail(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| fail(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| fail(*pos, "invalid \\u escape"))?;
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(fail(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so
                // boundaries are valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| fail(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(fail(start, "expected a JSON value"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII by construction");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| fail(start, format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Json) {
        let text = value.render();
        let parsed = Json::parse(&text).expect("parse back");
        assert_eq!(&parsed, value, "round trip failed for `{text}`");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-1.5),
            Json::Num(1e-30),
            Json::Num(1234567890.125),
            Json::str(""),
            Json::str("plain"),
            Json::str("esc \" \\ \n \t ü λ"),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        round_trip(&Json::obj([
            ("id", Json::str("maj3/011")),
            ("ok", Json::Bool(true)),
            (
                "outputs",
                Json::obj([("o1", Json::Num(1.25e-3)), ("o2", Json::Num(0.9e-3))]),
            ),
            (
                "pattern",
                Json::Arr(vec![Json::Num(0.0), Json::Num(1.0), Json::Num(1.0)]),
            ),
            ("note", Json::Null),
        ]));
    }

    #[test]
    fn numbers_keep_full_precision() {
        let x = 0.123_456_789_012_345_68;
        let Json::Num(back) = Json::parse(&Json::Num(x).render()).unwrap() else {
            panic!("expected number");
        };
        assert_eq!(back, x);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 ] , \"b\\u0041\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(25.0));
        assert!(v.get("bA").unwrap() == &Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "12x", "true false"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn object_keys_render_sorted_and_deterministic() {
        let v = Json::obj([("zeta", Json::Num(1.0)), ("alpha", Json::Num(2.0))]);
        assert_eq!(v.render(), "{\"alpha\":2.0,\"zeta\":1.0}");
    }

    #[test]
    fn accessors_return_expected_views() {
        let v = Json::obj([
            ("s", Json::str("x")),
            ("n", Json::Num(4.0)),
            ("b", Json::Bool(true)),
        ]);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }
}
