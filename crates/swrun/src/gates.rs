//! The bridge from the batch engine to the spin-wave gates: pattern
//! batches over [`MumagBackend`], sweep helpers, and a memoized
//! [`GateBackend`] that feeds batch results back into the ordinary
//! truth-table decoding.
//!
//! The expensive shared state is the drive-trim calibration (3 LLG runs
//! for MAJ3, 2 for XOR). Batches prewarm it **once** on the supplied
//! backend before fanning out; the workers run on clones, which share
//! the trim cache, so every pattern job starts from the identical
//! calibration — this is what makes a parallel truth table bit-for-bit
//! equal to a serial one at T = 0.

use std::collections::HashMap;

use magnum::Complex64;
use swgates::encoding::{all_patterns, Bit};
use swgates::gates::GateBackend;
use swgates::layout::{TriangleMaj3Layout, TriangleXorLayout};
use swgates::mumag::{GateRun, MumagBackend};
use swgates::SwGateError;

use crate::batch::{Batch, JobSpec, Outcome, RunOptions};
use crate::json::Json;
use crate::metrics::BatchMetrics;
use crate::RunError;

/// Stable job id for a gate pattern: `"maj3-011"` means
/// (I1, I2, I3) = (0, 1, 1).
pub fn pattern_id<const N: usize>(prefix: &str, pattern: [Bit; N]) -> String {
    let bits: String = pattern.iter().map(Bit::to_string).collect();
    format!("{prefix}-{bits}")
}

/// Manifest JSON for one gate run: output magnitudes and phases, the
/// drive frequency and the simulated time.
pub fn run_to_json(run: &GateRun) -> Json {
    Json::obj([
        ("o1_mag", Json::Num(run.o1.abs())),
        ("o1_phase", Json::Num(run.o1.arg())),
        ("o2_mag", Json::Num(run.o2.abs())),
        ("o2_phase", Json::Num(run.o2.arg())),
        ("frequency", Json::Num(run.frequency)),
        ("simulated_time", Json::Num(run.simulated_time)),
    ])
}

/// Reconstructs the `(O1, O2)` phasors from a manifest record written by
/// [`run_to_json`].
pub fn phasors_from_json(json: &Json) -> Option<(Complex64, Complex64)> {
    let field = |k: &str| json.get(k).and_then(Json::as_f64);
    Some((
        Complex64::from_polar(field("o1_mag")?, field("o1_phase")?),
        Complex64::from_polar(field("o2_mag")?, field("o2_phase")?),
    ))
}

/// One pattern's result in a gate batch.
#[derive(Debug, Clone)]
pub struct PatternOutcome<const N: usize> {
    /// The input pattern (index 0 = I1).
    pub pattern: [Bit; N],
    /// The `(O1, O2)` phasors — exact for fresh runs, reconstructed from
    /// the manifest for resumed ones, `None` on failure.
    pub phasors: Option<(Complex64, Complex64)>,
    /// The full run (with field snapshot) — fresh runs only; resumed
    /// jobs carry just the manifest scalars.
    pub run: Option<GateRun>,
    /// True if the job was skipped via the manifest.
    pub resumed: bool,
    /// The failure message, if the job failed.
    pub error: Option<String>,
}

/// The result of a gate pattern batch.
#[derive(Debug)]
pub struct PatternBatchReport<const N: usize> {
    /// One outcome per input pattern, in binary counting order.
    pub patterns: Vec<PatternOutcome<N>>,
    /// Aggregate batch metrics.
    pub metrics: BatchMetrics,
}

impl<const N: usize> PatternBatchReport<N> {
    /// The first failure message, if any pattern failed.
    pub fn first_error(&self) -> Option<&str> {
        self.patterns.iter().find_map(|p| p.error.as_deref())
    }

    /// Pattern → phasors map over every successful pattern.
    fn phasor_map(&self) -> HashMap<[Bit; N], (Complex64, Complex64)> {
        self.patterns
            .iter()
            .filter_map(|p| p.phasors.map(|ph| (p.pattern, ph)))
            .collect()
    }
}

impl PatternBatchReport<3> {
    /// Wraps the batch results in a [`MemoBackend`] so the ordinary
    /// `Maj3Gate::truth_table` decoding runs on them unchanged.
    pub fn memo(&self) -> MemoBackend {
        MemoBackend {
            maj3: self.phasor_map(),
            xor: HashMap::new(),
        }
    }
}

impl PatternBatchReport<2> {
    /// Wraps the batch results in a [`MemoBackend`] so the ordinary
    /// `XorGate::truth_table` decoding runs on them unchanged.
    pub fn memo(&self) -> MemoBackend {
        MemoBackend {
            maj3: HashMap::new(),
            xor: self.phasor_map(),
        }
    }
}

/// A [`GateBackend`] that answers from precomputed pattern → phasor
/// maps. Built by [`PatternBatchReport::memo`]; the layout argument is
/// ignored (the map was computed for one specific layout).
#[derive(Debug, Clone, Default)]
pub struct MemoBackend {
    maj3: HashMap<[Bit; 3], (Complex64, Complex64)>,
    xor: HashMap<[Bit; 2], (Complex64, Complex64)>,
}

impl MemoBackend {
    fn lookup<const N: usize>(
        map: &HashMap<[Bit; N], (Complex64, Complex64)>,
        inputs: [Bit; N],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        map.get(&inputs)
            .copied()
            .ok_or_else(|| SwGateError::Simulation {
                reason: format!(
                    "pattern {:?} is not in the batch results (job failed or batch incomplete)",
                    inputs.map(|b| b.as_u8())
                ),
            })
    }
}

impl GateBackend for MemoBackend {
    fn maj3(
        &self,
        _layout: &TriangleMaj3Layout,
        inputs: [Bit; 3],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        MemoBackend::lookup(&self.maj3, inputs)
    }

    fn xor(
        &self,
        _layout: &TriangleXorLayout,
        inputs: [Bit; 2],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        MemoBackend::lookup(&self.xor, inputs)
    }
}

/// Builds the job specs for all `2^N` patterns of a gate.
fn pattern_specs<const N: usize>(prefix: &str) -> Vec<JobSpec<[Bit; N]>> {
    all_patterns::<N>()
        .into_iter()
        .map(|pattern| JobSpec {
            id: pattern_id(prefix, pattern),
            inputs: Json::obj([(
                "pattern",
                Json::str(pattern.iter().map(Bit::to_string).collect::<String>()),
            )]),
            payload: pattern,
        })
        .collect()
}

/// Turns batch outcomes into pattern outcomes.
fn pattern_outcomes<const N: usize>(
    specs: &[JobSpec<[Bit; N]>],
    outcomes: Vec<Outcome<GateRun>>,
) -> Vec<PatternOutcome<N>> {
    specs
        .iter()
        .zip(outcomes)
        .map(|(spec, outcome)| match outcome {
            Outcome::Fresh(run, _) => PatternOutcome {
                pattern: spec.payload,
                phasors: Some((run.o1, run.o2)),
                run: Some(run),
                resumed: false,
                error: None,
            },
            Outcome::Resumed(json) => PatternOutcome {
                pattern: spec.payload,
                phasors: phasors_from_json(&json),
                run: None,
                resumed: true,
                error: None,
            },
            Outcome::Failed(message) => PatternOutcome {
                pattern: spec.payload,
                phasors: None,
                run: None,
                resumed: false,
                error: Some(message),
            },
        })
        .collect()
}

/// Runs all 8 MAJ3 input patterns as a batch: prewarms the drive-trim
/// calibration once on `backend`, then fans the patterns out over
/// `options.jobs` workers on clones sharing that calibration.
///
/// # Errors
///
/// Returns [`RunError`] if the calibration fails or the manifest cannot
/// be used. Individual pattern failures are reported per pattern.
pub fn maj3_patterns(
    backend: &MumagBackend,
    layout: &TriangleMaj3Layout,
    options: &RunOptions,
) -> Result<PatternBatchReport<3>, RunError> {
    let batch = Batch::new("maj3-patterns", pattern_specs::<3>("maj3"));
    if batch.pending(options)? > 0 {
        backend
            .prewarm_maj3(layout)
            .map_err(|e| RunError::setup(&e))?;
    }
    let report = batch.run(options, |&pattern| {
        let run = backend
            .clone()
            .maj3_run(layout, pattern)
            .map_err(|e| e.to_string())?;
        let json = run_to_json(&run);
        Ok((run, json))
    })?;
    Ok(PatternBatchReport {
        patterns: pattern_outcomes(batch.specs(), report.outcomes),
        metrics: report.metrics,
    })
}

/// Runs all 4 XOR input patterns as a batch (see [`maj3_patterns`]).
///
/// # Errors
///
/// Returns [`RunError`] if the calibration fails or the manifest cannot
/// be used. Individual pattern failures are reported per pattern.
pub fn xor_patterns(
    backend: &MumagBackend,
    layout: &TriangleXorLayout,
    options: &RunOptions,
) -> Result<PatternBatchReport<2>, RunError> {
    let batch = Batch::new("xor-patterns", pattern_specs::<2>("xor"));
    if batch.pending(options)? > 0 {
        backend
            .prewarm_xor(layout)
            .map_err(|e| RunError::setup(&e))?;
    }
    let report = batch.run(options, |&pattern| {
        let run = backend
            .clone()
            .xor_run(layout, pattern)
            .map_err(|e| e.to_string())?;
        let json = run_to_json(&run);
        Ok((run, json))
    })?;
    Ok(PatternBatchReport {
        patterns: pattern_outcomes(batch.specs(), report.outcomes),
        metrics: report.metrics,
    })
}

/// A gate runner that maps whole pattern sweeps onto **lockstep batched**
/// LLG solves: instead of fanning `2^N` independent jobs over worker
/// threads, up to `batch_width` patterns advance together through one
/// K-wide interleaved solve (see [`MumagBackend::maj3_run_batch`]).
///
/// On a core-starved host this is the faster shape — one sweep amortizes
/// its bookkeeping over K magnetization lanes per cell instead of paying
/// it K times — while every pattern's phasors stay bitwise identical to
/// its independent run.
#[derive(Debug, Clone)]
pub struct BatchedBackend {
    backend: MumagBackend,
    batch_width: usize,
}

impl BatchedBackend {
    /// Wraps `backend`, advancing up to `batch_width` patterns per
    /// lockstep solve (0 is treated as 1; a width larger than the
    /// pattern count simply runs one full-sweep batch).
    pub fn new(backend: MumagBackend, batch_width: usize) -> Self {
        BatchedBackend {
            backend,
            batch_width: batch_width.max(1),
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &MumagBackend {
        &self.backend
    }

    /// The configured batch width K.
    pub fn batch_width(&self) -> usize {
        self.batch_width
    }

    /// Runs all 8 MAJ3 patterns in `ceil(8 / K)` lockstep batches.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the drive-trim calibration fails; pattern
    /// failures are reported per pattern in the report.
    pub fn maj3_patterns(
        &self,
        layout: &TriangleMaj3Layout,
    ) -> Result<PatternBatchReport<3>, RunError> {
        self.backend
            .prewarm_maj3(layout)
            .map_err(|e| RunError::setup(&e))?;
        self.run_batched(all_patterns::<3>(), |chunk| {
            self.backend.maj3_run_batch(layout, chunk)
        })
    }

    /// Runs all 4 XOR patterns in `ceil(4 / K)` lockstep batches.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the drive-trim calibration fails; pattern
    /// failures are reported per pattern in the report.
    pub fn xor_patterns(
        &self,
        layout: &TriangleXorLayout,
    ) -> Result<PatternBatchReport<2>, RunError> {
        self.backend
            .prewarm_xor(layout)
            .map_err(|e| RunError::setup(&e))?;
        self.run_batched(all_patterns::<2>(), |chunk| {
            self.backend.xor_run_batch(layout, chunk)
        })
    }

    /// Chunks `patterns` by the batch width, runs each chunk through one
    /// batched solve, and assembles the standard report shape.
    fn run_batched<const N: usize>(
        &self,
        patterns: Vec<[Bit; N]>,
        run_chunk: impl Fn(&[[Bit; N]]) -> Result<Vec<GateRun>, SwGateError>,
    ) -> Result<PatternBatchReport<N>, RunError> {
        let start = std::time::Instant::now();
        let mut outcomes = Vec::with_capacity(patterns.len());
        for chunk in patterns.chunks(self.batch_width) {
            match run_chunk(chunk) {
                Ok(runs) => {
                    for (&pattern, run) in chunk.iter().zip(runs) {
                        outcomes.push(PatternOutcome {
                            pattern,
                            phasors: Some((run.o1, run.o2)),
                            run: Some(run),
                            resumed: false,
                            error: None,
                        });
                    }
                }
                Err(e) => {
                    let message = e.to_string();
                    for &pattern in chunk {
                        outcomes.push(PatternOutcome {
                            pattern,
                            phasors: None,
                            run: None,
                            resumed: false,
                            error: Some(message.clone()),
                        });
                    }
                }
            }
        }
        let wall = start.elapsed();
        let failed = outcomes.iter().filter(|o| o.error.is_some()).count();
        Ok(PatternBatchReport {
            metrics: BatchMetrics {
                total: outcomes.len(),
                done: outcomes.len() - failed,
                failed,
                resumed: 0,
                workers: 1,
                wall,
                cpu: wall,
            },
            patterns: outcomes,
        })
    }
}

/// One point of a parameter sweep: a label (used in job ids and
/// reports) and the backend variant to run it with.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Short label, e.g. `"T300K"` or `"rough2nm"`. Must be unique and
    /// stable across runs (it keys the manifest ids).
    pub label: String,
    /// The backend for this point (temperature, roughness, drive ...).
    pub backend: MumagBackend,
}

impl SweepPoint {
    /// A sweep point.
    pub fn new(label: impl Into<String>, backend: MumagBackend) -> SweepPoint {
        SweepPoint {
            label: label.into(),
            backend,
        }
    }
}

/// One sweep point's results.
#[derive(Debug)]
pub struct SweepPointReport<const N: usize> {
    /// The point's label.
    pub label: String,
    /// Its pattern outcomes.
    pub patterns: Vec<PatternOutcome<N>>,
}

impl SweepPointReport<2> {
    /// The point's results as a [`MemoBackend`] for truth-table decoding.
    pub fn memo(&self) -> MemoBackend {
        MemoBackend {
            maj3: HashMap::new(),
            xor: self
                .patterns
                .iter()
                .filter_map(|p| p.phasors.map(|ph| (p.pattern, ph)))
                .collect(),
        }
    }
}

/// The result of an XOR parameter sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// One report per sweep point, in input order.
    pub points: Vec<SweepPointReport<2>>,
    /// Aggregate metrics over the whole flattened batch.
    pub metrics: BatchMetrics,
}

/// Runs the full XOR truth table at every sweep point as **one** batch:
/// all `points × 4` pattern jobs share the pool, so a 3-point sweep on 4
/// workers keeps them busy instead of parallelizing only within a point.
///
/// Calibration stays per point — each point's backend is prewarmed once
/// (serially) before the fan-out, because points may differ in geometry
/// (edge roughness) and must not share trims. Clones within a point do
/// share them.
///
/// # Errors
///
/// Returns [`RunError`] if a calibration fails or the manifest cannot be
/// used.
pub fn xor_sweep(
    points: &[SweepPoint],
    layout: &TriangleXorLayout,
    options: &RunOptions,
) -> Result<SweepReport, RunError> {
    let patterns = all_patterns::<2>();
    let specs: Vec<JobSpec<(usize, [Bit; 2])>> = points
        .iter()
        .enumerate()
        .flat_map(|(point_index, point)| {
            patterns.iter().map(move |&pattern| JobSpec {
                id: pattern_id(&format!("{}-xor", point.label), pattern),
                inputs: Json::obj([
                    ("point", Json::str(&point.label)),
                    (
                        "pattern",
                        Json::str(pattern.iter().map(Bit::to_string).collect::<String>()),
                    ),
                ]),
                payload: (point_index, pattern),
            })
        })
        .collect();
    let batch = Batch::new("xor-sweep", specs);

    // Prewarm each point that still has pending work.
    let completed = match (&options.manifest, options.resume) {
        (Some(path), true) => crate::manifest::Manifest::load(path)?.completed(),
        _ => Default::default(),
    };
    for point in points {
        let all_done = patterns
            .iter()
            .all(|&p| completed.contains_key(&pattern_id(&format!("{}-xor", point.label), p)));
        if !all_done {
            point
                .backend
                .prewarm_xor(layout)
                .map_err(|e| RunError::setup(&e))?;
        }
    }

    let report = batch.run(options, |&(point_index, pattern)| {
        let run = points[point_index]
            .backend
            .clone()
            .xor_run(layout, pattern)
            .map_err(|e| e.to_string())?;
        let json = run_to_json(&run);
        Ok((run, json))
    })?;

    // Split the flattened outcomes back per point.
    let per_point_specs: Vec<JobSpec<[Bit; 2]>> = batch
        .specs()
        .iter()
        .map(|s| JobSpec {
            id: s.id.clone(),
            inputs: s.inputs.clone(),
            payload: s.payload.1,
        })
        .collect();
    let all_outcomes = pattern_outcomes(&per_point_specs, report.outcomes);
    let mut chunks = all_outcomes.into_iter();
    let point_reports = points
        .iter()
        .map(|point| SweepPointReport {
            label: point.label.clone(),
            patterns: chunks.by_ref().take(patterns.len()).collect(),
        })
        .collect();
    Ok(SweepReport {
        points: point_reports,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_ids_are_stable_and_ordered_i1_first() {
        assert_eq!(
            pattern_id("maj3", [Bit::Zero, Bit::One, Bit::One]),
            "maj3-011"
        );
        assert_eq!(pattern_id("xor", [Bit::One, Bit::Zero]), "xor-10");
    }

    fn tiny_snapshot() -> magnum::probe::Snapshot {
        let mesh = magnum::mesh::Mesh::new(1, 1, [1e-9, 1e-9, 1e-9]).unwrap();
        magnum::probe::Snapshot::capture(
            &mesh,
            &vec![magnum::math::Vec3::Z; mesh.cell_count()],
            magnum::probe::Component::X,
        )
    }

    #[test]
    fn run_json_round_trips_phasors() {
        let run = GateRun {
            o1: Complex64::from_polar(1.5e-4, 0.75),
            o2: Complex64::from_polar(2.5e-4, -2.1),
            snapshot: tiny_snapshot(),
            frequency: 1.6e10,
            simulated_time: 3.2e-9,
        };
        let json = run_to_json(&run);
        let reparsed = Json::parse(&json.render()).unwrap();
        let (o1, o2) = phasors_from_json(&reparsed).unwrap();
        assert!((o1 - run.o1).abs() < 1e-18);
        assert!((o2 - run.o2).abs() < 1e-18);
        assert_eq!(
            reparsed.get("frequency").and_then(Json::as_f64),
            Some(1.6e10)
        );
    }

    #[test]
    fn phasors_from_incomplete_json_is_none() {
        let json = Json::obj([("o1_mag", Json::Num(1.0))]);
        assert!(phasors_from_json(&json).is_none());
    }

    #[test]
    fn memo_backend_answers_known_patterns_only() {
        let phasors = (Complex64::ONE, Complex64::ONE * 2.0);
        let report = PatternBatchReport::<2> {
            patterns: all_patterns::<2>()
                .into_iter()
                .map(|pattern| PatternOutcome {
                    pattern,
                    // One pattern "failed" — has no phasors.
                    phasors: (pattern != [Bit::One, Bit::One]).then_some(phasors),
                    run: None,
                    resumed: false,
                    error: (pattern == [Bit::One, Bit::One]).then(|| "boom".to_string()),
                })
                .collect(),
            metrics: BatchMetrics {
                total: 4,
                done: 3,
                failed: 1,
                resumed: 0,
                workers: 1,
                wall: std::time::Duration::from_millis(1),
                cpu: std::time::Duration::from_millis(1),
            },
        };
        assert_eq!(report.first_error(), Some("boom"));
        let memo = report.memo();
        let layout = TriangleXorLayout::paper();
        assert_eq!(memo.xor(&layout, [Bit::Zero, Bit::Zero]).unwrap(), phasors);
        assert!(memo.xor(&layout, [Bit::One, Bit::One]).is_err());
        // The MAJ3 side is empty.
        assert!(memo
            .maj3(&TriangleMaj3Layout::paper(), [Bit::Zero; 3])
            .is_err());
    }

    #[test]
    fn pattern_specs_enumerate_all_patterns() {
        let specs = pattern_specs::<3>("maj3");
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].id, "maj3-000");
        assert_eq!(specs[5].id, "maj3-101");
        assert_eq!(
            specs[5].inputs.get("pattern").and_then(Json::as_str),
            Some("101")
        );
    }
}
