//! A long-lived worker pool for resident processes.
//!
//! [`JobPool`](crate::pool::JobPool) is built for batches: scoped threads
//! that live exactly as long as one `run` call. A resident process — the
//! `swserve` HTTP service — needs the opposite shape: workers that outlive
//! any individual submission, jobs that arrive one at a time from
//! concurrent connections, and per-job handles a caller can poll later.
//! [`ResidentPool`] provides that: a fixed set of detached worker threads
//! over a shared queue, [`JobHandle`]s that report `queued → running →
//! done`, the same per-job panic isolation as the batch pool, and a
//! [`ResidentPool::close`] that drains every queued job before returning
//! (the graceful-shutdown half of the server's drain).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::pool::panic_message;

type Job = Box<dyn FnOnce() -> Result<Json, String> + Send + 'static>;

/// Where a submitted job currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStage {
    /// Waiting in the queue.
    Queued,
    /// Executing on a worker thread.
    Running,
    /// Finished (successfully or not); the result is available.
    Done,
}

impl JobStage {
    /// The stage as its wire string (`"queued"`, `"running"`, `"done"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStage::Queued => "queued",
            JobStage::Running => "running",
            JobStage::Done => "done",
        }
    }
}

#[derive(Debug)]
struct HandleState {
    stage: JobStage,
    result: Option<Result<Json, String>>,
    wall: Option<Duration>,
}

#[derive(Debug)]
struct HandleInner {
    state: Mutex<HandleState>,
    done: Condvar,
}

/// A caller's view of one submitted job. Cheap to clone; all clones
/// observe the same job.
#[derive(Debug, Clone)]
pub struct JobHandle {
    inner: Arc<HandleInner>,
}

impl JobHandle {
    fn new() -> JobHandle {
        JobHandle {
            inner: Arc::new(HandleInner {
                state: Mutex::new(HandleState {
                    stage: JobStage::Queued,
                    result: None,
                    wall: None,
                }),
                done: Condvar::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HandleState> {
        self.inner.state.lock().expect("job handle poisoned")
    }

    /// The job's current stage.
    pub fn stage(&self) -> JobStage {
        self.lock().stage
    }

    /// The job's result, if it has finished.
    pub fn result(&self) -> Option<Result<Json, String>> {
        self.lock().result.clone()
    }

    /// How long the job ran on its worker, once finished.
    pub fn wall(&self) -> Option<Duration> {
        self.lock().wall
    }

    /// Whether the job failed, once finished (`None` while unfinished).
    /// Cheaper than [`result`](JobHandle::result) for counting outcomes —
    /// it does not clone the result JSON.
    pub fn failed(&self) -> Option<bool> {
        self.lock().result.as_ref().map(Result::is_err)
    }

    /// Blocks until the job finishes and returns its result. A panic in
    /// the job surfaces as `Err` with the panic message, not a poisoned
    /// lock.
    pub fn wait(&self) -> Result<Json, String> {
        let mut state = self.lock();
        while state.stage != JobStage::Done {
            state = self.inner.done.wait(state).expect("job handle poisoned");
        }
        state.result.clone().expect("done job has a result")
    }

    fn finish(&self, result: Result<Json, String>, wall: Duration) {
        let mut state = self.lock();
        state.stage = JobStage::Done;
        state.result = Some(result);
        state.wall = Some(wall);
        drop(state);
        self.inner.done.notify_all();
    }
}

/// Submitting to a pool that has been closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the resident pool is closed")
    }
}

impl std::error::Error for PoolClosed {}

#[derive(Default)]
struct PoolState {
    queue: VecDeque<(JobHandle, Job)>,
    /// Jobs accepted but not yet finished (queued + running).
    in_flight: usize,
    closed: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that the queue changed (new job or close).
    work: Condvar,
    /// Signals `close` that a job finished.
    settled: Condvar,
}

/// A fixed set of long-lived worker threads consuming a shared queue of
/// JSON-producing jobs.
pub struct ResidentPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ResidentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentPool")
            .field("workers", &self.workers.len())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl ResidentPool {
    /// Starts a pool with `workers` threads (clamped to at least 1).
    pub fn start(workers: usize) -> ResidentPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            settled: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("swrun-resident-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn resident worker")
            })
            .collect();
        ResidentPool { shared, workers }
    }

    /// The worker thread count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs accepted but not yet finished (queued + running). This is
    /// the quantity a server's admission control bounds.
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().expect("pool poisoned").in_flight
    }

    /// Enqueues `job` and returns its handle.
    ///
    /// # Errors
    ///
    /// [`PoolClosed`] once [`close`](ResidentPool::close) has begun.
    pub fn submit<F>(&self, job: F) -> Result<JobHandle, PoolClosed>
    where
        F: FnOnce() -> Result<Json, String> + Send + 'static,
    {
        let handle = JobHandle::new();
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            if state.closed {
                return Err(PoolClosed);
            }
            state.queue.push_back((handle.clone(), Box::new(job)));
            state.in_flight += 1;
        }
        self.shared.work.notify_one();
        Ok(handle)
    }

    /// Blocks until every accepted job has finished, without closing the
    /// pool. This is the drain half of a graceful shutdown for callers
    /// that hold the pool behind an `Arc` and cannot consume it for
    /// [`close`](ResidentPool::close).
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("pool poisoned");
        while state.in_flight > 0 {
            state = self.shared.settled.wait(state).expect("pool poisoned");
        }
    }

    /// Closes the pool gracefully: stops accepting submissions, lets
    /// every already-accepted job run to completion, then joins the
    /// workers. Queued jobs are *finished*, not dropped — callers
    /// holding handles still get results.
    pub fn close(self) {
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            state.closed = true;
            while state.in_flight > 0 {
                state = self.shared.settled.wait(state).expect("pool poisoned");
            }
        }
        self.shared.work.notify_all();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let (handle, job) = {
            let mut state = shared.state.lock().expect("pool poisoned");
            loop {
                if let Some(next) = state.queue.pop_front() {
                    break next;
                }
                if state.closed {
                    return;
                }
                state = shared.work.wait(state).expect("pool poisoned");
            }
        };
        {
            let mut job_state = handle.lock();
            job_state.stage = JobStage::Running;
        }
        let start = Instant::now();
        let result = match catch_unwind(AssertUnwindSafe(job)) {
            Ok(result) => result,
            Err(payload) => Err(format!("job panicked: {}", panic_message(payload.as_ref()))),
        };
        handle.finish(result, start.elapsed());
        {
            let mut state = shared.state.lock().expect("pool poisoned");
            state.in_flight -= 1;
        }
        shared.settled.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_complete_and_handles_observe_them() {
        let pool = ResidentPool::start(2);
        let handles: Vec<JobHandle> = (0..8)
            .map(|i| {
                pool.submit(move || Ok(Json::Num(f64::from(i) * 2.0)))
                    .unwrap()
            })
            .collect();
        for (i, handle) in handles.iter().enumerate() {
            assert_eq!(handle.wait(), Ok(Json::Num(i as f64 * 2.0)));
            assert_eq!(handle.stage(), JobStage::Done);
            assert!(handle.wall().is_some());
        }
        pool.close();
    }

    #[test]
    fn a_panicking_job_reports_failure_without_killing_workers() {
        let pool = ResidentPool::start(1);
        let bad = pool.submit(|| panic!("meltdown")).unwrap();
        let good = pool.submit(|| Ok(Json::Bool(true))).unwrap();
        let err = bad.wait().unwrap_err();
        assert!(err.contains("meltdown"), "{err}");
        // The same (sole) worker still serves the next job.
        assert_eq!(good.wait(), Ok(Json::Bool(true)));
        pool.close();
    }

    #[test]
    fn close_drains_queued_jobs_then_rejects_new_ones() {
        let pool = ResidentPool::start(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<JobHandle> = (0..4)
            .map(|_| {
                let ran = Arc::clone(&ran);
                pool.submit(move || {
                    thread::sleep(Duration::from_millis(10));
                    ran.fetch_add(1, Ordering::SeqCst);
                    Ok(Json::Null)
                })
                .unwrap()
            })
            .collect();
        pool.close();
        // Every accepted job ran to completion before close returned.
        assert_eq!(ran.load(Ordering::SeqCst), 4);
        for handle in handles {
            assert_eq!(handle.stage(), JobStage::Done);
        }
    }

    #[test]
    fn submit_after_close_fails() {
        let pool = ResidentPool::start(1);
        let shared = Arc::clone(&pool.shared);
        pool.close();
        // The pool value is consumed by close; simulate a late submitter
        // racing shutdown via the shared state directly.
        assert!(shared.state.lock().unwrap().closed);
    }

    #[test]
    fn in_flight_tracks_queued_plus_running() {
        let pool = ResidentPool::start(1);
        assert_eq!(pool.in_flight(), 0);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let blocker = {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(Json::Null)
            })
            .unwrap()
        };
        let queued = pool.submit(|| Ok(Json::Null)).unwrap();
        // One running (or about to), one queued behind it.
        assert_eq!(pool.in_flight(), 2);
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        blocker.wait().unwrap();
        queued.wait().unwrap();
        // The in-flight gauge drops just after the result is published;
        // give the worker a moment to get there.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.in_flight() > 0 && Instant::now() < deadline {
            thread::yield_now();
        }
        assert_eq!(pool.in_flight(), 0);
        pool.close();
    }

    #[test]
    fn stage_strings_are_stable() {
        assert_eq!(JobStage::Queued.as_str(), "queued");
        assert_eq!(JobStage::Running.as_str(), "running");
        assert_eq!(JobStage::Done.as_str(), "done");
    }
}
