//! Integration tests: the batch engine driving real LLG gate
//! simulations on miniature layouts.
//!
//! These verify the headline guarantees of the batch runner against the
//! actual micromagnetic backend:
//!
//! * a parallel run produces **bit-for-bit** the same output phasors as
//!   a serial run (T = 0 LLG integration is deterministic and the drive
//!   trims are shared through the calibration cache), and
//! * checkpoint/resume skips completed jobs, reconstructing their
//!   outputs from the manifest instead of re-simulating.

use std::path::PathBuf;

use swgates::encoding::{all_patterns, Bit};
use swgates::layout::{TriangleMaj3Layout, TriangleXorLayout};
use swgates::mumag::MumagBackend;
use swrun::batch::RunOptions;
use swrun::gates::{maj3_patterns, xor_patterns};

fn mini_maj3_layout() -> TriangleMaj3Layout {
    TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 4, 1).expect("valid mini layout")
}

fn mini_xor_layout() -> TriangleXorLayout {
    TriangleXorLayout::new(55e-9, 50e-9, 110e-9, 40e-9).expect("valid mini layout")
}

fn quick_backend() -> MumagBackend {
    MumagBackend::fast()
        .with_measure_periods(2)
        .with_settle_factor(1.2)
}

fn temp_manifest(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("swrun-it-{}-{name}", std::process::id()));
    p
}

#[test]
fn parallel_maj3_patterns_match_serial_exactly() {
    let backend = quick_backend();
    let layout = mini_maj3_layout();

    let serial =
        maj3_patterns(&backend, &layout, &RunOptions::serial().quiet()).expect("serial batch runs");
    // Same backend: the parallel workers reuse the cached calibration,
    // exactly as a long sweep would.
    let parallel = maj3_patterns(
        &backend,
        &layout,
        &RunOptions::serial().with_jobs(4).quiet(),
    )
    .expect("parallel batch runs");

    assert_eq!(serial.patterns.len(), 8);
    assert_eq!(parallel.patterns.len(), 8);
    for (s, p) in serial.patterns.iter().zip(parallel.patterns.iter()) {
        assert_eq!(s.pattern, p.pattern);
        let (so1, so2) = s.phasors.expect("serial pattern succeeded");
        let (po1, po2) = p.phasors.expect("parallel pattern succeeded");
        // T = 0 LLG integration with shared trims is deterministic:
        // the phasors must agree to the last bit.
        assert_eq!(so1, po1, "O1 differs for {:?}", s.pattern);
        assert_eq!(so2, po2, "O2 differs for {:?}", s.pattern);
    }

    // Both runs decode the same truth table through the memo backend.
    let gate = swgates::gates::Maj3Gate::new(layout).with_phase_margin(std::f64::consts::PI / 32.0);
    let table_serial = gate.truth_table(&serial.memo()).expect("decodes");
    let table_parallel = gate.truth_table(&parallel.memo()).expect("decodes");
    assert_eq!(table_serial.rows(), table_parallel.rows());
    table_serial
        .verify(|p| Bit::majority(p[0], p[1], p[2]))
        .expect("majority decodes");
}

#[test]
fn batched_maj3_patterns_match_independent_runs_exactly() {
    // The lockstep batched solve is purely a throughput shape: a K = 4
    // batch of the 8 MAJ3 patterns must produce bit-for-bit the phasors
    // of eight independent runs, at serial and parallel sweep widths.
    use swgates::encoding::all_patterns;
    use swrun::gates::BatchedBackend;

    let backend = quick_backend();
    let layout = mini_maj3_layout();
    backend.prewarm_maj3(&layout).expect("calibration");

    let independent: Vec<_> = all_patterns::<3>()
        .into_iter()
        .map(|p| {
            let run = backend.maj3_run(&layout, p).expect("independent run");
            (p, run.o1, run.o2)
        })
        .collect();

    for threads in [1, 2] {
        let batched = BatchedBackend::new(backend.clone().with_threads(threads), 4);
        let report = batched.maj3_patterns(&layout).expect("batched sweep");
        assert_eq!(report.metrics.total, 8);
        assert_eq!(report.metrics.failed, 0);
        for (outcome, &(pattern, o1, o2)) in report.patterns.iter().zip(independent.iter()) {
            assert_eq!(outcome.pattern, pattern);
            let (bo1, bo2) = outcome.phasors.expect("batched pattern succeeded");
            assert_eq!(bo1, o1, "O1 differs for {pattern:?} at {threads} threads");
            assert_eq!(bo2, o2, "O2 differs for {pattern:?} at {threads} threads");
        }
        // The batched truth table decodes to the same majority function.
        let gate =
            swgates::gates::Maj3Gate::new(layout).with_phase_margin(std::f64::consts::PI / 32.0);
        let table = gate.truth_table(&report.memo()).expect("decodes");
        table
            .verify(|p| Bit::majority(p[0], p[1], p[2]))
            .expect("majority decodes");
    }
}

#[test]
fn xor_batch_resumes_from_manifest() {
    let path = temp_manifest("xor-resume.jsonl");
    std::fs::remove_file(&path).ok();
    let backend = quick_backend();
    let layout = mini_xor_layout();
    let options = RunOptions::serial().with_manifest(&path).quiet();

    // First run simulates everything.
    let first = xor_patterns(&backend, &layout, &options).expect("first run");
    assert_eq!(first.metrics.done, 4);
    assert_eq!(first.metrics.resumed, 0);

    // Second run on the same manifest: nothing simulates. A fresh
    // backend with an empty trim cache proves no calibration happens
    // either (prewarm is skipped when there is no pending work).
    let cold = quick_backend();
    let second = xor_patterns(&cold, &layout, &options).expect("resumed run");
    assert_eq!(second.metrics.resumed, 4);
    assert_eq!(second.metrics.done, 0);
    assert_eq!(cold.cached_trim_count(), 0, "resume must not calibrate");

    // Resumed phasors match the recorded magnitude/phase to round-trip
    // precision.
    for (a, b) in first.patterns.iter().zip(second.patterns.iter()) {
        assert!(b.resumed);
        assert!(b.run.is_none(), "resumed jobs carry no snapshot");
        let (fo1, fo2) = a.phasors.unwrap();
        let (ro1, ro2) = b.phasors.unwrap();
        assert!((fo1 - ro1).abs() <= 1e-15 * fo1.abs());
        assert!((fo2 - ro2).abs() <= 1e-15 * fo2.abs());
    }

    // Simulate a killed run: drop one pattern's record from the
    // manifest. Only that job re-executes.
    let kept: Vec<String> = std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .filter(|l| !l.contains("\"xor-10\""))
        .map(String::from)
        .collect();
    std::fs::write(&path, kept.join("\n") + "\n").unwrap();
    let third = xor_patterns(&backend, &layout, &options).expect("partial resume");
    assert_eq!(third.metrics.resumed, 3);
    assert_eq!(third.metrics.done, 1);
    let rerun = third
        .patterns
        .iter()
        .find(|p| p.pattern == [Bit::One, Bit::Zero])
        .unwrap();
    assert!(!rerun.resumed);
    // The re-simulated phasors agree with the first run (same backend,
    // cached trims).
    let (fo1, _) = first
        .patterns
        .iter()
        .find(|p| p.pattern == [Bit::One, Bit::Zero])
        .unwrap()
        .phasors
        .unwrap();
    assert_eq!(rerun.phasors.unwrap().0, fo1);

    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_ids_stay_unique_across_patterns() {
    // Guard the manifest id scheme: every pattern of every gate gets a
    // distinct id, so resume can never confuse jobs.
    use swrun::gates::pattern_id;
    let mut ids: Vec<String> = all_patterns::<3>()
        .into_iter()
        .map(|p| pattern_id("maj3", p))
        .chain(
            all_patterns::<2>()
                .into_iter()
                .map(|p| pattern_id("xor", p)),
        )
        .collect();
    let before = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), before);
}
