//! `parbench` — wall-clock scaling of magnum's intra-simulation threading,
//! plus the `swserve` loadtest and smoke probe.
//!
//! Eight modes:
//!
//! * Default: `parbench [--size N] [--steps N] [--threads LIST]` runs the
//!   same deterministic LLG workload (an N×N film with exchange,
//!   anisotropy, local demag and an antenna) at each thread count and
//!   reports wall time, speedup over the serial run, and whether the
//!   final magnetization is bitwise identical to the serial trajectory.
//!   Defaults: a 256×256 mesh, 50 steps, thread counts `1,2,4`.
//!
//! * `parbench --demag [--grids LIST] [--threads LIST] [--evals N]
//!   [--out PATH]` benchmarks one Newell demag field evaluation per grid
//!   size against the pre-optimization implementation (running-product
//!   twiddles, per-column gather/scatter 2-D FFT, complex kernel tables,
//!   six transforms per evaluation — reimplemented verbatim in the
//!   [`legacy`] module), checks the new path's error against that
//!   reference and its bitwise identity across thread counts, and writes
//!   a machine-readable JSON report. Defaults: grids `64,128,256`,
//!   threads `1,2,4`, auto eval count, output `BENCH_demag.json`.
//!
//! * `parbench --bigfft [--grids WxH,...] [--threads LIST] [--evals N]
//!   [--out PATH]` proves the mixed-radix FFT headline: for each (possibly
//!   non-square, non-power-of-two) grid it times one Newell demag field
//!   evaluation under the good-size padding planner against the same
//!   engine restricted to radix-2 padded transforms
//!   ([`PadPolicy::PowerOfTwo`], the pre-mixed-radix grids), cross-checks
//!   the two fields against each other, asserts the planned path is
//!   bitwise identical across thread counts, and reports ns/cell/eval,
//!   cells/sec, and the speedup per thread count. Each grid also carries
//!   a `thread_scaling` table (cells/sec, speedup vs the serial arm,
//!   bitwise identity) and the report records the machine's hardware
//!   thread count (`cpus`), since scaling numbers are meaningless
//!   without it. The runs use the default FFT clamp, so sub-threshold
//!   pads (e.g. 256² → 512²) deliberately report ~1.0x: the clamp keeps
//!   them serial instead of letting fan-out overhead make them slower.
//!   Defaults: grids `256x256,320x320,960x384,1500x700` (the last is a
//!   1.05M-cell film), threads `1,2,4`, auto eval count, output
//!   `BENCH_fft.json`.
//!
//! * `parbench --rhs [--grids LIST] [--threads LIST] [--steps N]
//!   [--out PATH]` benchmarks the fused single-sweep SoA RHS against the
//!   pre-refactor shape (array-of-structs state, one full-mesh pass per
//!   integrator stage, per-cell prefactor division — reimplemented
//!   faithfully in [`legacy::LegacyLlg`]): both run the same RK4 workload
//!   (full film, exchange + anisotropy + thin-film demag + Zeeman bias,
//!   no antenna) and the report records ns/cell per RHS evaluation, the
//!   error of the new path's final state against the legacy trajectory,
//!   and bitwise identity across thread counts. Defaults: grids
//!   `64,128,256`, threads `1,2,4`, auto step count, output
//!   `BENCH_rhs.json`. The scaling runs disable the small-grid serial
//!   clamp so they measure the genuine parallel sweeps; a separate guard
//!   then re-times the *default* build (clamp active) at the highest
//!   requested thread count and fails if it loses more than 5% to the
//!   serial arm — the regression the clamp exists to prevent.
//!
//! * `parbench --batch [--ks LIST] [--steps N] [--out PATH]` benchmarks
//!   the batched K-way advance: for each K it times K independent serial
//!   runs of the triangle-gate workload (each member with its own drive
//!   phase) against one `BatchedSimulation` advancing all K in lockstep,
//!   asserts every member's final state is bitwise identical to its
//!   independent run, and requires the batch at the largest K to be at
//!   least 1.5x faster. Writes `BENCH_batch.json`. Defaults: Ks `1,4,8`,
//!   2000 steps.
//!
//! * `parbench --netlist [--patterns N] [--out PATH]` benchmarks the
//!   `swnet` circuit compiler end to end: the 16-bit ripple-carry adder,
//!   the 4×4 array multiplier, and a truth-table-synthesized full adder
//!   are each compiled (construct/synthesize → legalize → lower) to a
//!   fan-out-legal `swgates` circuit, then N pseudo-random patterns are
//!   verified against integer arithmetic with the 64-lane word-parallel
//!   evaluator. The report (`BENCH_netlist.json`) records compile time,
//!   verification throughput, and the logical-effort scorecard (energy,
//!   delay, CMOS ratios) per case. Defaults: 65536 patterns.
//!
//! * `parbench --serve [--addr HOST:PORT] [--connections N]
//!   [--requests N] [--scenarios LIST] [--out PATH]` loadtests the
//!   serving tier over real sockets. N keep-alive connections — each
//!   issuing R gate-evaluation requests drawn from a rotating pool of
//!   distinct inputs — are multiplexed over a bounded worker-thread
//!   pool, so N can exceed the machine's thread budget. With `--addr`
//!   it loadtests that one external server; without, it runs the
//!   scenario suite and writes one report entry per scenario to
//!   `BENCH_serve.json` (throughput, p50/p99 latency, client-observed
//!   `X-Cache` split, hit rate):
//!   - `hot` — in-process server, RAM cache warms over the run (the
//!     pre-store steady-state number);
//!   - `cold` — fresh server + empty disk store, every first touch is
//!     a miss;
//!   - `restart` — seed a disk store through one server, drain it,
//!     boot a *second* server on the same store, and measure the
//!     restart answering from disk (asserts disk hits > 0);
//!   - `router` — `repro route` in front of 2 `repro serve` shard
//!     processes, loadtest through the router;
//!   - `kill` — same topology, but one shard is SIGKILLed a third of
//!     the way through; the run must finish with zero failures
//!     (asserted) while the router fails the dead shard's keys over.
//!
//!   Defaults: 64 connections, 32 requests each, all five scenarios.
//!
//! * `parbench --probe ADDR [--expect-cached] [--shutdown]` smoke-tests
//!   a running server or router: `/healthz`, one `/v1/gate/eval`
//!   (checked byte-for-byte against the local evaluator), `/metrics`,
//!   and optionally a graceful `/v1/admin/shutdown`. `--expect-cached`
//!   repeats the eval and requires the second answer to come from a
//!   cache level (`X-Cache: ram|disk|coalesced`) with a byte-identical
//!   body — the restart/warm-disk acceptance check. Exits non-zero on
//!   any mismatch.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Instant;

use bench::httpc::Client;
use bench::{write_bench_json, write_report};

use magnum::field::demag::{DemagMethod, NewellDemag, PadPolicy};
use magnum::field::FieldTerm;
use magnum::par::WorkerTeam;
use magnum::prelude::*;
use magnum::solver::IntegratorKind;
use swperf::cmos::CmosNode;
use swrun::json::Json;

/// The pre-optimization Newell demag pipeline, preserved as the benchmark
/// reference. Every design decision the optimization removed is kept on
/// purpose: the FFT grows its twiddle with a per-butterfly running
/// product, the 2-D transform gathers and scatters each column through a
/// freshly allocated scratch vector, the kernel tables store complex
/// values whose imaginary halves are always zero, and each field
/// evaluation runs six full complex transforms (three forward, three
/// inverse) strictly serially.
mod legacy {
    use magnum::fft::next_power_of_two;
    use magnum::field::demag::{newell_nxx, newell_nxy};
    use magnum::{Complex64, Material, Mesh, Vec3, MU0};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Direction {
        Forward,
        Inverse,
    }

    /// The pre-PR radix-2 FFT with running-product twiddles.
    pub fn fft_in_place(data: &mut [Complex64], direction: Direction) {
        let n = data.len();
        assert!(n.is_power_of_two() && n > 0);
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if j > i {
                data.swap(i, j);
            }
        }
        let sign = match direction {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        };
        let mut len = 2;
        while len <= n {
            let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex64::cis(angle);
            for start in (0..n).step_by(len) {
                let mut w = Complex64::ONE;
                for k in 0..len / 2 {
                    let a = data[start + k];
                    let b = data[start + k + len / 2] * w;
                    data[start + k] = a + b;
                    data[start + k + len / 2] = a - b;
                    w *= wlen;
                }
            }
            len <<= 1;
        }
        if direction == Direction::Inverse {
            let inv = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z = z.scale(inv);
            }
        }
    }

    /// The pre-PR 2-D FFT: rows in place, columns through a gather/scatter
    /// scratch vector allocated per call.
    pub fn fft2_in_place(data: &mut [Complex64], nx: usize, ny: usize, direction: Direction) {
        assert_eq!(data.len(), nx * ny);
        for row in data.chunks_mut(nx) {
            fft_in_place(row, direction);
        }
        let mut column = vec![Complex64::ZERO; ny];
        for ix in 0..nx {
            for iy in 0..ny {
                column[iy] = data[iy * nx + ix];
            }
            fft_in_place(&mut column, direction);
            for iy in 0..ny {
                data[iy * nx + ix] = column[iy];
            }
        }
    }

    /// The pre-PR FFT-accelerated Newell demag field.
    pub struct LegacyNewellDemag {
        nx: usize,
        ny: usize,
        px: usize,
        py: usize,
        ms: f64,
        mask: Vec<bool>,
        kxx: Vec<Complex64>,
        kyy: Vec<Complex64>,
        kzz: Vec<Complex64>,
        kxy: Vec<Complex64>,
        mx: Vec<Complex64>,
        my: Vec<Complex64>,
        mz: Vec<Complex64>,
    }

    impl LegacyNewellDemag {
        pub fn new(mesh: &Mesh, material: &Material) -> Self {
            let nx = mesh.nx();
            let ny = mesh.ny();
            let px = next_power_of_two(2 * nx);
            let py = next_power_of_two(2 * ny);
            let [dx, dy, dz] = mesh.cell_size();
            let mut kxx = vec![Complex64::ZERO; px * py];
            let mut kyy = vec![Complex64::ZERO; px * py];
            let mut kzz = vec![Complex64::ZERO; px * py];
            let mut kxy = vec![Complex64::ZERO; px * py];
            for jy in 0..py {
                let oy = if jy <= py / 2 {
                    jy as isize
                } else {
                    jy as isize - py as isize
                };
                for jx in 0..px {
                    let ox = if jx <= px / 2 {
                        jx as isize
                    } else {
                        jx as isize - px as isize
                    };
                    let x = ox as f64 * dx;
                    let y = oy as f64 * dy;
                    let idx = jy * px + jx;
                    kxx[idx] = Complex64::new(-newell_nxx(x, y, 0.0, dx, dy, dz), 0.0);
                    kyy[idx] = Complex64::new(-newell_nxx(y, x, 0.0, dy, dx, dz), 0.0);
                    kzz[idx] = Complex64::new(-newell_nxx(0.0, y, x, dz, dy, dx), 0.0);
                    kxy[idx] = Complex64::new(-newell_nxy(x, y, 0.0, dx, dy, dz), 0.0);
                }
            }
            for k in [&mut kxx, &mut kyy, &mut kzz, &mut kxy] {
                fft2_in_place(k, px, py, Direction::Forward);
            }
            LegacyNewellDemag {
                nx,
                ny,
                px,
                py,
                ms: material.saturation_magnetization(),
                mask: mesh.mask().to_vec(),
                kxx,
                kyy,
                kzz,
                kxy,
                mx: vec![Complex64::ZERO; px * py],
                my: vec![Complex64::ZERO; px * py],
                mz: vec![Complex64::ZERO; px * py],
            }
        }

        pub fn accumulate(&mut self, m: &[Vec3], h: &mut [Vec3]) {
            self.mx.fill(Complex64::ZERO);
            self.my.fill(Complex64::ZERO);
            self.mz.fill(Complex64::ZERO);
            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let i = iy * self.nx + ix;
                    if !self.mask[i] {
                        continue;
                    }
                    let p = iy * self.px + ix;
                    self.mx[p] = Complex64::new(self.ms * m[i].x, 0.0);
                    self.my[p] = Complex64::new(self.ms * m[i].y, 0.0);
                    self.mz[p] = Complex64::new(self.ms * m[i].z, 0.0);
                }
            }
            for buf in [&mut self.mx, &mut self.my, &mut self.mz] {
                fft2_in_place(buf, self.px, self.py, Direction::Forward);
            }
            for i in 0..self.px * self.py {
                let hx = self.kxx[i] * self.mx[i] + self.kxy[i] * self.my[i];
                let hy = self.kxy[i] * self.mx[i] + self.kyy[i] * self.my[i];
                let hz = self.kzz[i] * self.mz[i];
                self.mx[i] = hx;
                self.my[i] = hy;
                self.mz[i] = hz;
            }
            for buf in [&mut self.mx, &mut self.my, &mut self.mz] {
                fft2_in_place(buf, self.px, self.py, Direction::Inverse);
            }
            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let i = iy * self.nx + ix;
                    if !self.mask[i] {
                        continue;
                    }
                    let p = iy * self.px + ix;
                    h[i] += Vec3::new(self.mx[p].re, self.my[p].re, self.mz[p].re);
                }
            }
        }
    }

    /// The pre-refactor LLG right-hand side and RK4 step, preserved as
    /// the RHS benchmark reference. The shape the structure-of-arrays
    /// refactor replaced is kept on purpose: the state is an
    /// array-of-structs `Vec<Vec3>`, each integrator stage materializes
    /// its trial state in a separate full-mesh pass before the next RHS
    /// evaluation, the final combination and the renormalization are two
    /// more full-mesh passes, and the torque prefactor divides per cell
    /// per evaluation. The per-cell arithmetic — term order, neighbour
    /// order, stage expressions, renormalization — matches the fused
    /// kernel exactly, so the new path's trajectory can be checked
    /// against this reference to machine precision.
    pub struct LegacyLlg {
        nx: usize,
        mask: Vec<bool>,
        coeff_x: f64,
        coeff_y: f64,
        ku_coeff: f64,
        ku_axis: Vec3,
        ms: f64,
        zeeman: Vec3,
        alpha: f64,
        gamma: f64,
    }

    impl LegacyLlg {
        pub fn new(mesh: &Mesh, material: &Material, zeeman: Vec3) -> Self {
            let [dx, dy, _] = mesh.cell_size();
            let ms = material.saturation_magnetization();
            let base = 2.0 * material.exchange_stiffness() / (MU0 * ms);
            LegacyLlg {
                nx: mesh.nx(),
                mask: mesh.mask().to_vec(),
                coeff_x: base / (dx * dx),
                coeff_y: base / (dy * dy),
                ku_coeff: 2.0 * material.anisotropy_constant() / (MU0 * ms),
                ku_axis: material.anisotropy_axis(),
                ms,
                zeeman,
                alpha: material.gilbert_damping(),
                gamma: material.gamma(),
            }
        }

        /// `dm/dt` into `k`: effective field (exchange, uniaxial
        /// anisotropy, thin-film demag, Zeeman — in term order) and the
        /// LLG torque, serially, cell by cell.
        fn rhs(&self, m: &[Vec3], k: &mut [Vec3]) {
            let n = m.len();
            for i in 0..n {
                if !self.mask[i] {
                    k[i] = Vec3::ZERO;
                    continue;
                }
                let mi = m[i];
                let mut h = Vec3::ZERO;
                let ix = i % self.nx;
                let mut acc = Vec3::ZERO;
                if ix > 0 && self.mask[i - 1] {
                    acc += (m[i - 1] - mi) * self.coeff_x;
                }
                if ix + 1 < self.nx && self.mask[i + 1] {
                    acc += (m[i + 1] - mi) * self.coeff_x;
                }
                if i >= self.nx && self.mask[i - self.nx] {
                    acc += (m[i - self.nx] - mi) * self.coeff_y;
                }
                if i + self.nx < n && self.mask[i + self.nx] {
                    acc += (m[i + self.nx] - mi) * self.coeff_y;
                }
                h += acc;
                h += self.ku_axis * (self.ku_coeff * mi.dot(self.ku_axis));
                h.z -= self.ms * mi.z;
                h += self.zeeman;
                let prefactor = -self.gamma * MU0 / (1.0 + self.alpha * self.alpha);
                let mxh = mi.cross(h);
                let mxmxh = mi.cross(mxh);
                k[i] = (mxh + mxmxh * self.alpha) * prefactor;
            }
        }

        /// One classic RK4 step in the pre-refactor shape: four RHS
        /// passes interleaved with separate full-mesh stage-combination
        /// passes, then the combination pass and the renormalization
        /// pass.
        #[allow(clippy::too_many_arguments)]
        pub fn rk4_step(&self, m: &mut [Vec3], dt: f64, scratch: &mut LegacyRk4Scratch) {
            let n = m.len();
            let LegacyRk4Scratch {
                k1,
                k2,
                k3,
                k4,
                stage,
            } = scratch;
            self.rhs(m, k1);
            for i in 0..n {
                stage[i] = m[i] + k1[i] * (dt / 2.0);
            }
            self.rhs(stage, k2);
            for i in 0..n {
                stage[i] = m[i] + k2[i] * (dt / 2.0);
            }
            self.rhs(stage, k3);
            for i in 0..n {
                stage[i] = m[i] + k3[i] * dt;
            }
            self.rhs(stage, k4);
            for i in 0..n {
                m[i] += (k1[i] + (k2[i] + k3[i]) * 2.0 + k4[i]) * (dt / 6.0);
            }
            for (i, mi) in m.iter_mut().enumerate() {
                if !self.mask[i] {
                    continue;
                }
                let norm = mi.norm();
                assert!(norm.is_finite() && norm != 0.0, "legacy step diverged");
                *mi /= norm;
            }
        }
    }

    /// The pre-refactor RK4 working buffers (one array per stage slope
    /// plus the trial state).
    pub struct LegacyRk4Scratch {
        k1: Vec<Vec3>,
        k2: Vec<Vec3>,
        k3: Vec<Vec3>,
        k4: Vec<Vec3>,
        stage: Vec<Vec3>,
    }

    impl LegacyRk4Scratch {
        pub fn new(cells: usize) -> Self {
            LegacyRk4Scratch {
                k1: vec![Vec3::ZERO; cells],
                k2: vec![Vec3::ZERO; cells],
                k3: vec![Vec3::ZERO; cells],
                k4: vec![Vec3::ZERO; cells],
                stage: vec![Vec3::ZERO; cells],
            }
        }
    }
}

fn build(size: usize, threads: usize) -> Simulation {
    let cell = 5e-9;
    let mesh = Mesh::new(size, size, [cell, cell, 1e-9]).unwrap();
    let h = size as f64 * cell;
    let antenna = Antenna::over_rect(
        &mesh,
        0.0,
        0.0,
        2.0 * cell,
        h,
        Vec3::X,
        Drive::logic_cw(3e3, 9e9, 0.0),
    );
    Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(Vec3::Z)
        .demag(DemagMethod::ThinFilmLocal)
        .absorbing_frame(AbsorbingFrame::new(8, 0.5))
        .antenna(antenna)
        .integrator(IntegratorKind::RungeKutta4)
        .threads(threads)
        // This mode measures raw thread scaling, so the small-grid serial
        // clamp must not silently rewrite the thread count.
        .min_cells_per_thread(0)
        .build()
        .unwrap()
}

fn run(size: usize, steps: usize, threads: usize) -> (f64, Vec<Vec3>) {
    let mut sim = build(size, threads);
    let start = Instant::now();
    for _ in 0..steps {
        sim.step().unwrap();
    }
    (start.elapsed().as_secs_f64(), sim.magnetization().to_vec())
}

/// A deterministic non-uniform test magnetization: tilted unit vectors
/// with spatially varying in-plane components.
fn test_magnetization(n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| {
            let x = i as f64 * 0.7;
            Vec3::new(0.4 * (0.3 * x).sin(), 0.4 * (0.2 * x).cos(), 1.0).normalized()
        })
        .collect()
}

/// One evaluation of the optimized demag path (zero + accumulate).
fn eval_new(
    demag: &NewellDemag,
    m: &Field3,
    h: &mut Field3,
    team: &WorkerTeam,
    scratch: &mut Option<Box<dyn std::any::Any + Send + Sync>>,
) {
    h.fill(Vec3::ZERO);
    demag.accumulate_par(m, 0.0, h, team, scratch.as_mut().map(|s| &mut **s));
}

/// Benchmarks one grid size; returns its JSON report fragment.
fn demag_grid_report(size: usize, threads: &[usize], evals: usize) -> Json {
    let cell = 5e-9;
    let mesh = Mesh::new(size, size, [cell, cell, 1e-9]).unwrap();
    let material = Material::fecob();
    let n = mesh.cell_count();
    let m = test_magnetization(n);

    // Reference: the pre-optimization path, serial by construction.
    let mut reference = legacy::LegacyNewellDemag::new(&mesh, &material);
    let mut h_ref = vec![Vec3::ZERO; n];
    reference.accumulate(&m, &mut h_ref); // warm-up + reference field
    let start = Instant::now();
    for _ in 0..evals {
        h_ref.fill(Vec3::ZERO);
        reference.accumulate(&m, &mut h_ref);
    }
    let legacy_ns = start.elapsed().as_secs_f64() * 1e9 / evals as f64;

    let h_peak = h_ref.iter().map(|v| v.norm()).fold(0.0, f64::max);

    // Optimized path at each thread count. The serial run doubles as the
    // accuracy and bitwise baselines.
    let mf = Field3::from_vec3s(&m);
    let mut h_serial: Vec<Vec3> = Vec::new();
    let mut max_rel_err = 0.0_f64;
    let mut rows = Vec::new();
    for &t in threads {
        let team = WorkerTeam::new(t);
        let demag = NewellDemag::new_with_team(&mesh, &material, &team);
        let mut scratch = demag.make_scratch();
        let mut h = Field3::zeros(n);
        eval_new(&demag, &mf, &mut h, &team, &mut scratch); // warm-up
        let start = Instant::now();
        for _ in 0..evals {
            eval_new(&demag, &mf, &mut h, &team, &mut scratch);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / evals as f64;

        let h = h.to_vec();
        let bitwise = if h_serial.is_empty() {
            max_rel_err = h
                .iter()
                .zip(h_ref.iter())
                .map(|(a, b)| (*a - *b).norm())
                .fold(0.0, f64::max)
                / h_peak;
            h_serial = h;
            true
        } else {
            h == h_serial
        };
        assert!(
            bitwise,
            "{size}x{size} demag diverged from the serial evaluation at {t} threads"
        );
        println!(
            "  {size:3}x{size:<3} threads {t:2}: {:>12.0} ns/eval  speedup vs legacy {:5.2}x",
            ns,
            legacy_ns / ns
        );
        rows.push(Json::obj([
            ("threads", Json::Num(t as f64)),
            ("ns_per_eval", Json::Num(ns)),
            ("speedup_vs_legacy", Json::Num(legacy_ns / ns)),
            ("bitwise_identical_to_serial", Json::Bool(bitwise)),
        ]));
    }
    println!(
        "  {size:3}x{size:<3} legacy    : {legacy_ns:>12.0} ns/eval  max rel err {max_rel_err:.3e}"
    );
    assert!(
        max_rel_err <= 1e-10,
        "{size}x{size} optimized demag drifted {max_rel_err:.3e} from the legacy reference"
    );

    Json::obj([
        ("size", Json::Num(size as f64)),
        ("cells", Json::Num(n as f64)),
        ("evals", Json::Num(evals as f64)),
        ("legacy_ns_per_eval", Json::Num(legacy_ns)),
        ("max_rel_err_vs_legacy", Json::Num(max_rel_err)),
        ("results", Json::Arr(rows)),
    ])
}

fn demag_main(grids: Vec<usize>, threads: Vec<usize>, evals: usize, out: String) {
    println!("demag benchmark: optimized NewellFft vs pre-optimization reference");
    let mut reports = Vec::new();
    for &size in &grids {
        // Fewer repetitions on big grids keep the wall time bounded while
        // the per-eval cost is large enough to time accurately.
        let evals = if evals > 0 {
            evals
        } else {
            ((1 << 22) / (size * size)).clamp(3, 40)
        };
        reports.push(demag_grid_report(size, &threads, evals));
    }
    write_bench_json(
        &out,
        "demag_field_eval",
        "ns_per_eval",
        "pre-optimization serial Newell FFT path",
        reports,
    );
}

/// Benchmarks one `WxH` grid for `--bigfft`: good-size planned padding vs
/// the radix-2 padded baseline, per thread count.
fn bigfft_grid_report(nx: usize, ny: usize, threads: &[usize], evals: usize) -> Json {
    let cell = 5e-9;
    let mesh = Mesh::new(nx, ny, [cell, cell, 1e-9]).unwrap();
    let material = Material::fecob();
    let n = mesh.cell_count();
    let mf = Field3::from_vec3s(&test_magnetization(n));

    // One timed sweep of a padding policy: returns ns/eval, the field it
    // produced, and the padded transform dims.
    let time_policy = |policy: PadPolicy, team: &WorkerTeam| -> (f64, Vec<Vec3>, (usize, usize)) {
        let demag = NewellDemag::with_padding(&mesh, &material, team, policy);
        let dims = demag.padded_dims();
        let mut scratch = demag.make_scratch();
        let mut h = Field3::zeros(n);
        eval_new(&demag, &mf, &mut h, team, &mut scratch); // warm-up
        let start = Instant::now();
        for _ in 0..evals {
            eval_new(&demag, &mf, &mut h, team, &mut scratch);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / evals as f64;
        (ns, h.to_vec(), dims)
    };

    let mut planned_serial: Vec<Vec3> = Vec::new();
    let mut serial_ns = 0.0_f64;
    let mut max_rel_err = 0.0_f64;
    let mut planned_dims = (0, 0);
    let mut pow2_dims = (0, 0);
    let mut rows = Vec::new();
    let mut scaling = Vec::new();
    for &t in threads {
        let team = WorkerTeam::new(t);
        let (pow2_ns, h_pow2, dims2) = time_policy(PadPolicy::PowerOfTwo, &team);
        let (ns, h, dims) = time_policy(PadPolicy::GoodSize, &team);
        planned_dims = dims;
        pow2_dims = dims2;

        let bitwise = if planned_serial.is_empty() {
            // Serial pass: the two paddings solve the same convolution, so
            // their fields must agree to rounding; the planned field then
            // becomes the bitwise baseline for every other thread count.
            let peak = h_pow2.iter().map(|v| v.norm()).fold(0.0, f64::max);
            max_rel_err = h
                .iter()
                .zip(h_pow2.iter())
                .map(|(a, b)| (*a - *b).norm())
                .fold(0.0, f64::max)
                / peak;
            planned_serial = h;
            serial_ns = ns;
            true
        } else {
            h == planned_serial
        };
        assert!(
            bitwise,
            "{nx}x{ny} planned demag diverged from the serial evaluation at {t} threads"
        );

        let speedup = pow2_ns / ns;
        let speedup_vs_serial = serial_ns / ns;
        let cells_per_sec = n as f64 / (ns * 1e-9);
        println!(
            "  {nx}x{ny} threads {t:2}: {:>8.2} ns/cell planned  {:>8.2} ns/cell pow2-padded  \
             speedup {speedup:5.2}x  vs serial {speedup_vs_serial:5.2}x  {:.3e} cells/s",
            ns / n as f64,
            pow2_ns / n as f64,
            cells_per_sec
        );
        rows.push(Json::obj([
            ("threads", Json::Num(t as f64)),
            ("ns_per_eval", Json::Num(ns)),
            ("ns_per_cell_per_eval", Json::Num(ns / n as f64)),
            ("pow2_ns_per_eval", Json::Num(pow2_ns)),
            ("speedup_vs_pow2_pad", Json::Num(speedup)),
            ("speedup_vs_serial", Json::Num(speedup_vs_serial)),
            ("cells_per_sec", Json::Num(cells_per_sec)),
            ("bitwise_identical_to_serial", Json::Bool(bitwise)),
        ]));
        scaling.push(Json::obj([
            ("threads", Json::Num(t as f64)),
            ("cells_per_sec", Json::Num(cells_per_sec)),
            ("speedup_vs_serial", Json::Num(speedup_vs_serial)),
            ("bitwise_identical_to_serial", Json::Bool(bitwise)),
        ]));
    }
    println!(
        "  {nx}x{ny}: padded {}x{} planned vs {}x{} pow2, max rel err {max_rel_err:.3e}",
        planned_dims.0, planned_dims.1, pow2_dims.0, pow2_dims.1
    );
    assert!(
        max_rel_err <= 1e-9,
        "{nx}x{ny} planned-padding demag drifted {max_rel_err:.3e} from the pow2-padded field"
    );

    Json::obj([
        ("grid", Json::Str(format!("{nx}x{ny}"))),
        ("cells", Json::Num(n as f64)),
        ("evals", Json::Num(evals as f64)),
        (
            "padded_planned",
            Json::Arr(vec![
                Json::Num(planned_dims.0 as f64),
                Json::Num(planned_dims.1 as f64),
            ]),
        ),
        (
            "padded_pow2",
            Json::Arr(vec![
                Json::Num(pow2_dims.0 as f64),
                Json::Num(pow2_dims.1 as f64),
            ]),
        ),
        ("max_rel_err_vs_pow2_pad", Json::Num(max_rel_err)),
        ("thread_scaling", Json::Arr(scaling)),
        ("results", Json::Arr(rows)),
    ])
}

fn bigfft_main(grids: Vec<(usize, usize)>, threads: Vec<usize>, evals: usize, out: String) {
    let cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "bigfft benchmark: good-size planned padding vs radix-2 padded baseline \
         ({cpus} hardware thread(s))"
    );
    let mut reports = Vec::new();
    for &(nx, ny) in &grids {
        let evals = if evals > 0 {
            evals
        } else {
            ((1 << 22) / (nx * ny)).clamp(2, 20)
        };
        reports.push(bigfft_grid_report(nx, ny, &threads, evals));
    }
    // Thread-scaling numbers only mean something next to the machine's
    // real core count, so the report records it alongside the grids.
    let report = Json::obj([
        ("benchmark", Json::str("bigfft_demag_field_eval")),
        ("unit", Json::str("ns_per_eval")),
        (
            "reference",
            Json::str("same engine restricted to radix-2 padded transforms"),
        ),
        ("cpus", Json::Num(cpus as f64)),
        ("grids", Json::Arr(reports)),
    ]);
    write_report(&out, &report);
}

/// Zeeman bias for the RHS benchmark workload (A/m, out of plane).
const RHS_BIAS: Vec3 = Vec3::new(0.0, 0.0, 5e4);

/// Tilted initial magnetization for the RHS benchmark (normalized by the
/// builder), so the exchange and torque terms all do real work.
const RHS_TILT: Vec3 = Vec3::new(0.3, 0.2, 1.0);

/// The RHS benchmark simulation: an N×N full film with every fusable
/// term active (exchange + uniaxial anisotropy + thin-film demag +
/// Zeeman bias) and nothing else — no antenna, no absorbing frame, no
/// FFT pre-pass — so the measurement isolates the fused sweep the SoA
/// refactor targets, and the legacy reimplementation can mirror the
/// workload exactly.
fn rhs_sim_builder(size: usize, threads: usize) -> SimulationBuilder {
    let cell = 5e-9;
    let mesh = Mesh::new(size, size, [cell, cell, 1e-9]).unwrap();
    Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(RHS_TILT)
        .demag(DemagMethod::ThinFilmLocal)
        .external_field(RHS_BIAS)
        .integrator(IntegratorKind::RungeKutta4)
        .threads(threads)
}

fn build_rhs_sim(size: usize, threads: usize) -> Simulation {
    // The scaling sweep measures the genuine parallel path, so the
    // small-grid serial clamp is disabled here; the clamp itself is
    // exercised (and guarded) separately in `rhs_grid_report`.
    rhs_sim_builder(size, threads)
        .min_cells_per_thread(0)
        .build()
        .unwrap()
}

/// Benchmarks the RHS at one grid size; returns its JSON report fragment.
fn rhs_grid_report(size: usize, threads: &[usize], steps: usize) -> Json {
    let cell = 5e-9;
    let mesh = Mesh::new(size, size, [cell, cell, 1e-9]).unwrap();
    let material = Material::fecob();
    let n = mesh.cell_count();
    let evals = steps * 4; // four RHS evaluations per RK4 step

    // The time step and initial state come from the simulation itself so
    // both paths integrate the identical problem.
    let dt = build_rhs_sim(size, 1).time_step();
    let m0 = RHS_TILT.normalized();

    // Reference: the pre-refactor shape, serial by construction.
    let reference = legacy::LegacyLlg::new(&mesh, &material, RHS_BIAS);
    let mut scratch = legacy::LegacyRk4Scratch::new(n);
    let mut m_legacy = vec![m0; n];
    for _ in 0..steps.min(3) {
        reference.rk4_step(&mut m_legacy, dt, &mut scratch); // warm-up
    }
    m_legacy.fill(m0);
    let start = Instant::now();
    for _ in 0..steps {
        reference.rk4_step(&mut m_legacy, dt, &mut scratch);
    }
    let legacy_ns = start.elapsed().as_secs_f64() * 1e9 / (evals * n) as f64;

    // Fused single-sweep path at each thread count. The serial run
    // doubles as the accuracy and bitwise baselines.
    let mut m_serial: Vec<Vec3> = Vec::new();
    let mut max_rel_err = 0.0_f64;
    let mut rows = Vec::new();
    for &t in threads {
        {
            let mut warm = build_rhs_sim(size, t);
            for _ in 0..steps.min(3) {
                warm.step().unwrap();
            }
        }
        let mut sim = build_rhs_sim(size, t);
        let start = Instant::now();
        for _ in 0..steps {
            sim.step().unwrap();
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / (evals * n) as f64;

        let m = sim.magnetization().to_vec();
        let bitwise = if m_serial.is_empty() {
            // |m| = 1, so the absolute deviation is the relative error.
            max_rel_err = m
                .iter()
                .zip(m_legacy.iter())
                .map(|(a, b)| (*a - *b).norm())
                .fold(0.0, f64::max);
            m_serial = m;
            true
        } else {
            m == m_serial
        };
        assert!(
            bitwise,
            "{size}x{size} RHS diverged from the serial trajectory at {t} threads"
        );
        println!(
            "  {size:3}x{size:<3} threads {t:2}: {ns:8.2} ns/cell/eval  speedup vs legacy {:5.2}x",
            legacy_ns / ns
        );
        rows.push(Json::obj([
            ("threads", Json::Num(t as f64)),
            ("ns_per_cell_eval", Json::Num(ns)),
            ("speedup_vs_legacy", Json::Num(legacy_ns / ns)),
            ("bitwise_identical_to_serial", Json::Bool(bitwise)),
        ]));
    }
    println!(
        "  {size:3}x{size:<3} legacy    : {legacy_ns:8.2} ns/cell/eval  max rel err {max_rel_err:.3e}"
    );
    assert!(
        max_rel_err <= 1e-12,
        "{size}x{size} fused RHS drifted {max_rel_err:.3e} from the legacy trajectory"
    );

    // Regression guard for the small-grid serial clamp: a *default* build
    // (clamp active) at the highest requested thread count must never
    // lose more than 5% to the serial arm. Sub-threshold grids silently
    // take the serial path, so requesting threads can't regress them; on
    // grids above the threshold the parallel sweeps have to carry their
    // own weight. The two arms are measured interleaved, best-of-5 each,
    // so CPU-frequency drift between them cannot fake a regression (on a
    // sub-threshold grid both arms run the identical serial path and any
    // ratio away from 1.0 is pure timer noise). The guard picks its own
    // step count — enough cell-updates per timed run to push the wall
    // time well past timer jitter even when `--steps` is a smoke value.
    let max_threads = threads.iter().copied().max().unwrap_or(1);
    let guard_steps = steps.max(2_000_000 / n);
    let timed_run = |make: &dyn Fn() -> Simulation| -> f64 {
        let mut sim = make();
        let start = Instant::now();
        for _ in 0..guard_steps {
            sim.step().unwrap();
        }
        start.elapsed().as_secs_f64()
    };
    let clamped_threads = rhs_sim_builder(size, max_threads)
        .build()
        .unwrap()
        .threads();
    let (mut t_clamped, mut t_serial) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        t_clamped = t_clamped.min(timed_run(&|| {
            rhs_sim_builder(size, max_threads).build().unwrap()
        }));
        t_serial = t_serial.min(timed_run(&|| build_rhs_sim(size, 1)));
    }
    let clamp_ratio = t_clamped / t_serial;
    println!(
        "  {size:3}x{size:<3} clamp     : requested {max_threads} -> effective {clamped_threads} \
         threads, {:.3}x the serial wall time",
        clamp_ratio
    );
    assert!(
        clamp_ratio <= 1.05,
        "{size}x{size}: default (clamped) build at {max_threads} threads took {clamp_ratio:.3}x \
         the serial wall time — the small-grid serial clamp is not protecting this grid"
    );

    Json::obj([
        ("size", Json::Num(size as f64)),
        ("cells", Json::Num(n as f64)),
        ("steps", Json::Num(steps as f64)),
        ("legacy_ns_per_cell_eval", Json::Num(legacy_ns)),
        ("max_rel_err_vs_legacy", Json::Num(max_rel_err)),
        (
            "clamp_guard",
            Json::obj([
                ("threads_requested", Json::Num(max_threads as f64)),
                ("threads_effective", Json::Num(clamped_threads as f64)),
                ("wall_time_ratio_vs_serial", Json::Num(clamp_ratio)),
            ]),
        ),
        ("results", Json::Arr(rows)),
    ])
}

fn rhs_main(grids: Vec<usize>, threads: Vec<usize>, steps: usize, out: String) {
    println!("RHS benchmark: fused single-sweep SoA path vs pre-refactor shape");
    let mut reports = Vec::new();
    for &size in &grids {
        // Fewer steps on big grids keep the wall time bounded while the
        // per-step cost is large enough to time accurately.
        let steps = if steps > 0 {
            steps
        } else {
            ((1 << 21) / (size * size)).clamp(10, 200)
        };
        reports.push(rhs_grid_report(size, &threads, steps));
    }
    write_bench_json(
        &out,
        "llg_rhs_eval",
        "ns_per_cell_eval",
        "pre-refactor serial AoS RHS with separate stage passes",
        reports,
    );
}

/// The batched-advance workload: the paper's triangle gate shape (apex
/// to the right) driven by a phase-encoded antenna on the left edge —
/// the geometry of the parity suites, at serial thread count, so the
/// measurement isolates what batching itself buys.
fn build_gate_sim(phase: f64) -> Simulation {
    const NX: usize = 48;
    const NY: usize = 24;
    let cell = 5e-9;
    let mut mesh = Mesh::new(NX, NY, [cell, cell, 1e-9]).unwrap();
    let w = NX as f64 * cell;
    let h = NY as f64 * cell;
    let triangle = magnum::geometry::Polygon::new(vec![(0.0, 0.0), (0.0, h), (w, h / 2.0)]);
    magnum::geometry::rasterize(&mut mesh, &triangle);
    let antenna = Antenna::over_rect(
        &mesh,
        0.0,
        0.0,
        2.0 * cell,
        h,
        Vec3::X,
        Drive::logic_cw(3e3, 9e9, phase),
    );
    Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(Vec3::Z)
        .demag(DemagMethod::ThinFilmLocal)
        .absorbing_frame(AbsorbingFrame::new(3, 0.5))
        .antenna(antenna)
        .integrator(IntegratorKind::RungeKutta4)
        .threads(1)
        .build()
        .unwrap()
}

/// `--batch`: K independent serial runs vs one batched K-way advance on
/// the triangle-gate workload, with bitwise parity checked per member.
/// Writes `BENCH_batch.json` and fails unless the largest K is at least
/// 1.5x faster batched.
fn batch_main(ks: Vec<usize>, steps: usize, out: String) {
    println!(
        "batch benchmark: K-way lockstep advance vs K independent serial runs, {steps} RK4 steps"
    );
    let kmax = ks.iter().copied().max().unwrap_or(1);
    let mut speedup_at_kmax = f64::INFINITY;
    let mut rows = Vec::new();
    // Warm-up so page faults and lazy allocation hit neither timer.
    {
        let mut sim = build_gate_sim(0.0);
        for _ in 0..steps.min(100) {
            sim.step().unwrap();
        }
    }
    for &k in &ks {
        // One drive phase per member, like the patterns of a logic sweep.
        let phases: Vec<f64> = (0..k)
            .map(|s| s as f64 * std::f64::consts::PI / 4.0)
            .collect();

        let start = Instant::now();
        let independent: Vec<Vec<Vec3>> = phases
            .iter()
            .map(|&p| {
                let mut sim = build_gate_sim(p);
                for _ in 0..steps {
                    sim.step().unwrap();
                }
                sim.magnetization().to_vec()
            })
            .collect();
        let t_independent = start.elapsed().as_secs_f64();

        let sims: Vec<Simulation> = phases.iter().map(|&p| build_gate_sim(p)).collect();
        let mut batch = BatchedSimulation::new(sims).expect("members are structurally identical");
        let start = Instant::now();
        for _ in 0..steps {
            batch.step().unwrap();
        }
        let t_batch = start.elapsed().as_secs_f64();

        let members = batch.into_members();
        for (s, sim) in members.iter().enumerate() {
            assert!(
                sim.magnetization().to_vec() == independent[s],
                "K={k}: member {s} diverged bitwise from its independent run"
            );
        }
        let speedup = t_independent / t_batch;
        if k == kmax {
            speedup_at_kmax = speedup;
        }
        println!(
            "  K={k}: independent {t_independent:7.3} s, batched {t_batch:7.3} s, \
             speedup {speedup:5.2}x, bitwise-identical: yes"
        );
        rows.push(Json::obj([
            ("k", Json::Num(k as f64)),
            ("steps", Json::Num(steps as f64)),
            ("independent_s", Json::Num(t_independent)),
            ("batched_s", Json::Num(t_batch)),
            ("speedup_vs_independent", Json::Num(speedup)),
            ("bitwise_identical_to_independent", Json::Bool(true)),
        ]));
    }
    write_bench_json(
        &out,
        "batched_llg_advance",
        "speedup_vs_independent",
        "K independent serial runs of the triangle-gate workload",
        rows,
    );
    assert!(
        speedup_at_kmax >= 1.5,
        "K={kmax} batch ran only {speedup_at_kmax:.2}x faster than {kmax} independent serial \
         runs (the acceptance floor is 1.5x)"
    );
}

/// One `--netlist` case: compile the netlist `build` produces into a
/// circuit (timed), assert the result is fan-out legal, then verify
/// `patterns` pseudo-random patterns against `expect` (timed) with the
/// word-parallel evaluator. Returns the case's report row.
fn netlist_case(
    name: &str,
    patterns: usize,
    build: impl FnOnce() -> swnet::ir::Netlist,
    expect: impl Fn(u64) -> u64,
) -> Json {
    let start = Instant::now();
    let netlist = build();
    let legal = swnet::legalize::legalize(&netlist).expect("legalize");
    let circuit = swnet::lower::to_circuit(&legal).expect("lower");
    let compile_us = start.elapsed().as_secs_f64() * 1e6;
    assert!(
        circuit.fanout_violations().is_empty(),
        "{name}: compiled circuit must be fan-out legal"
    );
    let stats = swnet::legalize::stats(&legal).expect("legal netlist");
    let card = swnet::effort::score(&legal, &swnet::effort::EffortModel::paper()).expect("score");

    let start = Instant::now();
    let verified = swnet::sim::verify_against(&circuit, patterns, 0x5117_c0de, expect);
    let per_sec = verified as f64 / start.elapsed().as_secs_f64();
    println!(
        "  {name:9} compile {compile_us:9.1} µs  {:4} gates  depth {:3}  verified {verified} patterns at {per_sec:10.0}/s",
        stats.gates, stats.depth
    );
    Json::obj([
        ("name", Json::str(name)),
        ("inputs", Json::Num(circuit.input_count() as f64)),
        ("outputs", Json::Num(circuit.outputs().len() as f64)),
        ("gates", Json::Num(stats.gates as f64)),
        ("buffers", Json::Num(stats.buffers as f64)),
        ("depth", Json::Num(stats.depth as f64)),
        ("compile_us", Json::Num(compile_us)),
        ("patterns", Json::Num(verified as f64)),
        ("patterns_per_sec", Json::Num(per_sec)),
        ("energy_aj", Json::Num(card.spinwave.energy_aj())),
        ("delay_ns", Json::Num(card.spinwave.delay_ns())),
        (
            "energy_ratio_n16",
            Json::Num(card.energy_ratio(CmosNode::N16)),
        ),
        (
            "delay_ratio_n16",
            Json::Num(card.delay_ratio(CmosNode::N16)),
        ),
    ])
}

/// `--netlist`: benchmark the swnet compiler and the word-parallel
/// verifier, then write `BENCH_netlist.json`.
fn netlist_main(patterns: usize, out: String) {
    println!("netlist benchmark: swnet compile + word-parallel verification, {patterns} patterns per case");
    let cases = vec![
        netlist_case(
            "rca16",
            patterns,
            || swnet::arith::ripple_carry_adder(16),
            |p| (p & 0xffff) + (p >> 16 & 0xffff) + (p >> 32 & 1),
        ),
        netlist_case(
            "mul4",
            patterns,
            || swnet::arith::array_multiplier(4),
            |p| (p & 0xf) * (p >> 4 & 0xf),
        ),
        netlist_case(
            "fa_table",
            patterns,
            || {
                // The full adder again, but re-synthesized from its raw
                // truth tables (sum, cout) so the compile time covers
                // MAJ/XOR synthesis rather than netlist construction.
                let tables = [
                    swnet::synth::Table::parse("01101001").expect("sum table"),
                    swnet::synth::Table::parse("00010111").expect("cout table"),
                ];
                swnet::synth::synthesize(&tables).expect("synthesize full adder")
            },
            |p| (p & 1) + (p >> 1 & 1) + (p >> 2 & 1),
        ),
    ];
    let report = Json::obj([
        ("benchmark", Json::str("netlist_compile_eval")),
        ("unit", Json::str("patterns_per_sec")),
        (
            "reference",
            Json::str(
                "swnet compile (construct/synthesize + legalize + lower) verified \
                 against integer arithmetic by the 64-lane word-parallel evaluator",
            ),
        ),
        ("patterns", Json::Num(patterns as f64)),
        ("cases", Json::Arr(cases)),
    ]);
    write_report(&out, &report);
}

/// Resolves `HOST:PORT` to a socket address or dies with a usage error.
fn resolve(addr: &str) -> SocketAddr {
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .unwrap_or_else(|| {
            eprintln!("cannot resolve address `{addr}`");
            std::process::exit(2);
        })
}

/// The rotating pool of distinct gate-evaluation requests the loadtest
/// draws from: all 8 MAJ3 patterns, all 4 XOR patterns, all 4 NAND
/// patterns. Each connection starts at a different offset, so early on
/// the server sees misses and coalescing, and once the pool is covered
/// everything hits the cache.
fn request_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for p in 0..8u8 {
        pool.push(format!(
            r#"{{"gate":"maj3","inputs":[{},{},{}]}}"#,
            p & 1,
            (p >> 1) & 1,
            (p >> 2) & 1
        ));
    }
    for gate in ["xor", "nand"] {
        for p in 0..4u8 {
            pool.push(format!(
                r#"{{"gate":"{gate}","inputs":[{},{}]}}"#,
                p & 1,
                (p >> 1) & 1
            ));
        }
    }
    pool
}

/// One loadtest outcome: request counts by `X-Cache` class, latency
/// distribution, failures.
struct LoadOutcome {
    elapsed_s: f64,
    /// Sorted client-side latencies, microseconds.
    latencies_us: Vec<f64>,
    failures: usize,
    shed: usize,
    ram: usize,
    disk: usize,
    coalesced: usize,
    miss: usize,
}

impl LoadOutcome {
    fn total(&self) -> usize {
        self.latencies_us.len()
    }

    fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as usize).clamp(1, total);
        self.latencies_us[rank - 1]
    }

    /// Client-observed hit rate: any cache level, or a coalesced
    /// follower, over all answered requests.
    fn hit_rate(&self) -> f64 {
        let answered = self.ram + self.disk + self.coalesced + self.miss;
        if answered == 0 {
            return 0.0;
        }
        (self.ram + self.disk + self.coalesced) as f64 / answered as f64
    }

    /// The scenario's JSON report fragment (shared fields).
    fn report(&self, scenario: &str, topology: &str, connections: usize, requests: usize) -> Json {
        let total = self.total();
        let mean = self.latencies_us.iter().sum::<f64>() / total.max(1) as f64;
        Json::obj([
            ("scenario", Json::str(scenario)),
            ("topology", Json::str(topology)),
            ("connections", Json::Num(connections as f64)),
            ("requests_per_connection", Json::Num(requests as f64)),
            ("total_requests", Json::Num(total as f64)),
            ("elapsed_s", Json::Num(self.elapsed_s)),
            (
                "throughput_rps",
                Json::Num(total as f64 / self.elapsed_s.max(1e-9)),
            ),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::Num(self.quantile(0.50))),
                    ("p99", Json::Num(self.quantile(0.99))),
                    ("mean", Json::Num(mean)),
                    (
                        "max",
                        Json::Num(self.latencies_us.last().copied().unwrap_or(0.0)),
                    ),
                ]),
            ),
            (
                "xcache",
                Json::obj([
                    ("ram", Json::Num(self.ram as f64)),
                    ("disk", Json::Num(self.disk as f64)),
                    ("coalesced", Json::Num(self.coalesced as f64)),
                    ("miss", Json::Num(self.miss as f64)),
                ]),
            ),
            ("hit_rate", Json::Num(self.hit_rate())),
            ("shed", Json::Num(self.shed as f64)),
            ("failures", Json::Num(self.failures as f64)),
        ])
    }
}

/// Drives `connections` keep-alive connections x `requests` each against
/// `addr`, multiplexed over a bounded worker pool (so the connection
/// count is not a thread count — the fix for the old thread-per-
/// connection model that capped the loadtest at the thread budget).
/// Every worker owns the connections with its index modulo the worker
/// count and interleaves them round-robin, so all `connections` sockets
/// stay concurrently active from the server's point of view.
///
/// `trigger`: optionally run an action (e.g. SIGKILL a shard) once the
/// given fraction of all requests has completed.
fn loadtest(
    addr: SocketAddr,
    connections: usize,
    requests: usize,
    trigger: Option<(f64, Box<dyn FnOnce() + Send>)>,
) -> LoadOutcome {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let pool = Arc::new(request_pool());
    let cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    let workers = connections.min((2 * cpus).max(8)).max(1);
    let total = connections * requests;
    let progress = Arc::new(AtomicUsize::new(0));
    let watcher = trigger.map(|(fraction, action)| {
        let progress = Arc::clone(&progress);
        let at = ((total as f64 * fraction) as usize).clamp(1, total);
        std::thread::spawn(move || {
            while progress.load(Ordering::Relaxed) < at {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            action();
        })
    });

    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let pool = Arc::clone(&pool);
            let progress = Arc::clone(&progress);
            std::thread::spawn(move || {
                let mut clients: Vec<(usize, Client)> = (w..connections)
                    .step_by(workers)
                    .map(|c| (c, Client::connect(addr).expect("loadtest connect")))
                    .collect();
                let mut outcome = LoadOutcome {
                    elapsed_s: 0.0,
                    latencies_us: Vec::with_capacity(clients.len() * requests),
                    failures: 0,
                    shed: 0,
                    ram: 0,
                    disk: 0,
                    coalesced: 0,
                    miss: 0,
                };
                for r in 0..requests {
                    for (c, client) in &mut clients {
                        let body = &pool[(*c + r) % pool.len()];
                        let sent = Instant::now();
                        let response = client.request("POST", "/v1/gate/eval", body);
                        outcome
                            .latencies_us
                            .push(sent.elapsed().as_secs_f64() * 1e6);
                        progress.fetch_add(1, Ordering::Relaxed);
                        match response {
                            Ok(response) => match response.status {
                                200 => match response.header("x-cache") {
                                    Some("ram") => outcome.ram += 1,
                                    Some("disk") => outcome.disk += 1,
                                    Some("coalesced") => outcome.coalesced += 1,
                                    _ => outcome.miss += 1,
                                },
                                429 => outcome.shed += 1,
                                _ => outcome.failures += 1,
                            },
                            Err(_) => {
                                // A dropped socket is a failed request;
                                // reconnect so the rest of this
                                // connection's budget still runs.
                                outcome.failures += 1;
                                if let Ok(fresh) = Client::connect(addr) {
                                    *client = fresh;
                                }
                            }
                        }
                    }
                }
                outcome
            })
        })
        .collect();

    let mut merged = LoadOutcome {
        elapsed_s: 0.0,
        latencies_us: Vec::with_capacity(total),
        failures: 0,
        shed: 0,
        ram: 0,
        disk: 0,
        coalesced: 0,
        miss: 0,
    };
    for handle in handles {
        let outcome = handle.join().expect("loadtest worker panicked");
        merged.latencies_us.extend(outcome.latencies_us);
        merged.failures += outcome.failures;
        merged.shed += outcome.shed;
        merged.ram += outcome.ram;
        merged.disk += outcome.disk;
        merged.coalesced += outcome.coalesced;
        merged.miss += outcome.miss;
    }
    merged.elapsed_s = start.elapsed().as_secs_f64();
    if let Some(watcher) = watcher {
        watcher.join().expect("trigger watcher panicked");
    }
    merged.latencies_us.sort_by(|a, b| a.total_cmp(b));
    merged
}

/// Boots an in-process server and returns its handle plus the runner
/// thread (join after draining).
fn boot_inprocess(
    config: &swserve::ServerConfig,
) -> (swserve::ServerHandle, std::thread::JoinHandle<()>) {
    let server = swserve::Server::bind(config).expect("bind loadtest server");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("loadtest server run"));
    (handle, runner)
}

/// Gracefully drains an in-process server over its socket.
fn drain_inprocess(addr: SocketAddr, runner: std::thread::JoinHandle<()>) {
    let mut control = Client::connect(addr).expect("drain connect");
    control
        .request("POST", "/v1/admin/shutdown", "")
        .expect("graceful shutdown");
    drop(control);
    runner.join().expect("server thread");
}

/// The sibling `repro` binary (parbench and repro build into the same
/// directory), for the multi-process scenarios.
fn repro_binary() -> std::path::PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary directory");
    let repro = dir.join(format!("repro{}", std::env::consts::EXE_SUFFIX));
    assert!(
        repro.exists(),
        "{} not found — build the `repro` binary first (cargo build --workspace)",
        repro.display()
    );
    repro
}

/// Spawns a `repro` service process (`serve` or `route`) on an
/// ephemeral port and waits for its address file.
fn spawn_service(
    scratch: &std::path::Path,
    name: &str,
    args: &[String],
) -> (std::process::Child, SocketAddr) {
    let addr_file = scratch.join(format!("{name}.addr"));
    std::fs::remove_file(&addr_file).ok();
    let mut command = std::process::Command::new(repro_binary());
    command
        .args(args)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--addr-file")
        .arg(&addr_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    let mut child = command.spawn().expect("spawn repro service");
    let deadline = Instant::now() + std::time::Duration::from_secs(20);
    loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if !text.trim().is_empty() {
                return (child, resolve(text.trim()));
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("repro {name} exited during startup: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "repro {name} never wrote its address"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// Drains a spawned service via its admin endpoint and reaps it.
fn drain_service(addr: SocketAddr, mut child: std::process::Child) {
    if let Ok(mut control) = Client::connect(addr) {
        control.request("POST", "/v1/admin/shutdown", "").ok();
    }
    child.wait().expect("service child reaped");
}

/// Boots the router + 2 shard topology; returns (router, shards).
#[allow(clippy::type_complexity)]
fn boot_router_topology(
    scratch: &std::path::Path,
) -> (
    (std::process::Child, SocketAddr),
    Vec<(std::process::Child, SocketAddr)>,
) {
    let shards: Vec<_> = (0..2)
        .map(|s| {
            spawn_service(
                scratch,
                &format!("shard{s}"),
                &[
                    "serve".to_string(),
                    "--workers".to_string(),
                    "1".to_string(),
                    "--store".to_string(),
                    scratch.join(format!("store{s}")).display().to_string(),
                ],
            )
        })
        .collect();
    let mut args = vec!["route".to_string()];
    for (_, addr) in &shards {
        args.push("--backend".to_string());
        args.push(addr.to_string());
    }
    let router = spawn_service(scratch, "router", &args);
    (router, shards)
}

/// `--serve`: run the loadtest scenario suite (or one external target)
/// and write `BENCH_serve.json`.
fn serve_main(
    external: Option<String>,
    connections: usize,
    requests: usize,
    scenarios: Vec<String>,
    out: String,
) {
    let mut reports = Vec::new();

    if let Some(addr) = external {
        let addr = resolve(&addr);
        println!("loadtest: {connections} connections x {requests} requests against {addr}");
        let outcome = loadtest(addr, connections, requests, None);
        print_outcome("external", &outcome);
        reports.push(outcome.report("external", "user-provided server", connections, requests));
        write_scenarios(&out, connections, requests, reports);
        return;
    }

    let scratch = std::env::temp_dir().join(format!("parbench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    for scenario in &scenarios {
        let report = match scenario.as_str() {
            "hot" => scenario_hot(connections, requests),
            "cold" => scenario_cold(&scratch, connections, requests),
            "restart" => scenario_restart(&scratch, connections, requests),
            "router" => scenario_router(&scratch, connections, requests, false),
            "kill" => scenario_router(&scratch, connections, requests, true),
            other => {
                eprintln!("unknown scenario `{other}` (hot, cold, restart, router, kill)");
                std::process::exit(2);
            }
        };
        reports.push(report);
    }
    std::fs::remove_dir_all(&scratch).ok();
    write_scenarios(&out, connections, requests, reports);
}

fn write_scenarios(out: &str, connections: usize, requests: usize, reports: Vec<Json>) {
    write_report(
        out,
        &Json::obj([
            ("benchmark", Json::str("swserve_loadtest")),
            ("connections", Json::Num(connections as f64)),
            ("requests_per_connection", Json::Num(requests as f64)),
            ("scenarios", Json::Arr(reports)),
        ]),
    );
}

fn print_outcome(scenario: &str, outcome: &LoadOutcome) {
    println!(
        "  {scenario:8} {:6} requests in {:6.2}s = {:7.0} req/s; p50 {:5.0} us p99 {:6.0} us; \
         hit rate {:5.1}% (ram {} disk {} coalesced {} miss {}); {} shed, {} failed",
        outcome.total(),
        outcome.elapsed_s,
        outcome.total() as f64 / outcome.elapsed_s.max(1e-9),
        outcome.quantile(0.50),
        outcome.quantile(0.99),
        outcome.hit_rate() * 100.0,
        outcome.ram,
        outcome.disk,
        outcome.coalesced,
        outcome.miss,
        outcome.shed,
        outcome.failures
    );
}

/// `hot`: one in-process RAM-only server, cache warming over the run —
/// the pre-store steady-state configuration.
fn scenario_hot(connections: usize, requests: usize) -> Json {
    println!("scenario hot: in-process server, RAM cache only");
    let (handle, runner) = boot_inprocess(&swserve::ServerConfig::default());
    let outcome = loadtest(handle.addr(), connections, requests, None);
    drain_inprocess(handle.addr(), runner);
    assert_eq!(outcome.failures, 0, "hot scenario must not drop requests");
    print_outcome("hot", &outcome);
    outcome.report(
        "hot",
        "in-process server, RAM cache only",
        connections,
        requests,
    )
}

/// `cold`: a fresh server with an empty disk store — every first touch
/// of a request is a genuine miss that must write through to disk.
fn scenario_cold(scratch: &std::path::Path, connections: usize, requests: usize) -> Json {
    println!("scenario cold: fresh server, empty RAM cache and empty disk store");
    let dir = scratch.join("cold-store");
    std::fs::remove_dir_all(&dir).ok();
    let config = swserve::ServerConfig {
        store: Some(dir),
        ..swserve::ServerConfig::default()
    };
    let (handle, runner) = boot_inprocess(&config);
    let outcome = loadtest(handle.addr(), connections, requests, None);
    // Store counters sync into the metrics registry during drain.
    drain_inprocess(handle.addr(), runner);
    let store_puts = handle.metrics().render();
    assert_eq!(outcome.failures, 0, "cold scenario must not drop requests");
    print_outcome("cold", &outcome);
    let puts = store_puts
        .get("store")
        .and_then(|s| s.get("puts"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(
        puts > 0.0,
        "cold scenario must write results through to disk"
    );
    let mut report = outcome
        .report(
            "cold",
            "in-process server, empty disk store",
            connections,
            requests,
        )
        .as_obj()
        .expect("report object")
        .clone();
    report.insert("store_puts".to_string(), Json::Num(puts));
    Json::Obj(report)
}

/// `restart`: seed a disk store through one server, drain it, boot a
/// second server on the same store directory, and loadtest the restart.
/// The first touch of every request must answer from disk (asserted via
/// the store counters), which is the whole point of the store.
fn scenario_restart(scratch: &std::path::Path, connections: usize, requests: usize) -> Json {
    println!("scenario restart: re-open a warmed disk store in a fresh server");
    let dir = scratch.join("restart-store");
    std::fs::remove_dir_all(&dir).ok();
    let config = swserve::ServerConfig {
        store: Some(dir),
        ..swserve::ServerConfig::default()
    };

    // Seeding pass: one client walks the whole request pool once.
    let (handle, runner) = boot_inprocess(&config);
    let mut seeder = Client::connect(handle.addr()).expect("seed connect");
    for body in request_pool() {
        let response = seeder
            .request("POST", "/v1/gate/eval", &body)
            .expect("seed request");
        assert_eq!(response.status, 200, "seeding must succeed");
    }
    drop(seeder);
    drain_inprocess(handle.addr(), runner);

    // The restart: a brand-new server (empty RAM cache) on the same
    // store directory.
    let (handle, runner) = boot_inprocess(&config);
    let outcome = loadtest(handle.addr(), connections, requests, None);
    // Store counters sync into the metrics registry during drain.
    drain_inprocess(handle.addr(), runner);
    let metrics = handle.metrics().render();
    assert_eq!(
        outcome.failures, 0,
        "restart scenario must not drop requests"
    );
    assert!(
        outcome.disk > 0,
        "a restarted server must answer previously-seen requests from disk"
    );
    assert_eq!(
        outcome.miss, 0,
        "every request was seeded, so the restart must never re-evaluate"
    );
    print_outcome("restart", &outcome);
    let disk_hits = metrics
        .get("store")
        .and_then(|s| s.get("hits"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let mut report = outcome
        .report(
            "restart",
            "fresh server process re-opening a warmed disk store",
            connections,
            requests,
        )
        .as_obj()
        .expect("report object")
        .clone();
    report.insert("store_hits_after_restart".to_string(), Json::Num(disk_hits));
    Json::Obj(report)
}

/// `router` / `kill`: `repro route` in front of 2 `repro serve` shard
/// processes. With `kill_one`, one shard is SIGKILLed a third of the
/// way through the run and the loadtest must still finish with zero
/// failed requests (the acceptance criterion for shard failover).
fn scenario_router(
    scratch: &std::path::Path,
    connections: usize,
    requests: usize,
    kill_one: bool,
) -> Json {
    let name = if kill_one { "kill" } else { "router" };
    println!(
        "scenario {name}: router + 2 shard processes{}",
        if kill_one {
            ", SIGKILL one shard mid-run"
        } else {
            ""
        }
    );
    let ((router_child, router_addr), shards) = boot_router_topology(scratch);

    let mut shards: Vec<Option<(std::process::Child, SocketAddr)>> =
        shards.into_iter().map(Some).collect();
    let victim = if kill_one {
        shards[1]
            .take()
            .map(|(child, addr)| (Arc::new(std::sync::Mutex::new(child)), addr))
    } else {
        None
    };
    let trigger = victim.as_ref().map(|(child, _)| {
        let child = Arc::clone(child);
        (
            1.0 / 3.0,
            Box::new(move || {
                child
                    .lock()
                    .expect("victim shard handle")
                    .kill()
                    .expect("SIGKILL shard");
            }) as Box<dyn FnOnce() + Send>,
        )
    });

    let outcome = loadtest(router_addr, connections, requests, trigger);

    // Router-side counters before teardown.
    let mut control = Client::connect(router_addr).expect("router metrics connect");
    let metrics = control
        .request("GET", "/metrics", "")
        .ok()
        .and_then(|r| Json::parse(&r.body).ok())
        .unwrap_or(Json::Null);
    drop(control);

    if let Some((child, _)) = victim {
        let mut child = Arc::try_unwrap(child)
            .unwrap_or_else(|_| panic!("victim still shared"))
            .into_inner()
            .expect("victim shard handle");
        child.wait().expect("killed shard reaped");
    }
    drain_service(router_addr, router_child);
    for shard in shards.into_iter().flatten() {
        let (child, addr) = shard;
        drain_service(addr, child);
    }

    assert_eq!(
        outcome.failures, 0,
        "the router must keep serving 200s through a shard death"
    );
    print_outcome(name, &outcome);
    let counter = |field: &str| metrics.get(field).and_then(Json::as_f64).unwrap_or(0.0);
    let mut report = outcome
        .report(
            name,
            if kill_one {
                "router + 2 shard processes, one SIGKILLed at 1/3 progress"
            } else {
                "router + 2 shard processes"
            },
            connections,
            requests,
        )
        .as_obj()
        .expect("report object")
        .clone();
    report.insert("shard_killed".to_string(), Json::Bool(kill_one));
    report.insert(
        "router_failovers".to_string(),
        Json::Num(counter("failovers")),
    );
    report.insert(
        "router_ejections".to_string(),
        Json::Num(counter("ejections")),
    );
    Json::Obj(report)
}

/// `--probe`: smoke-test a running server; exits non-zero on failure.
fn probe_main(addr: &str, expect_cached: bool, shutdown: bool) {
    let addr = resolve(addr);
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("probe: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let mut step = |what: &str, method: &str, path: &str, body: &str| -> bench::httpc::Response {
        match client.request(method, path, body) {
            Ok(response) if response.status == 200 => response,
            Ok(response) => {
                eprintln!(
                    "probe: {what} answered {}: {}",
                    response.status, response.body
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("probe: {what} failed: {e}");
                std::process::exit(1);
            }
        }
    };

    let health = step("GET /healthz", "GET", "/healthz", "");
    if !health.body.contains(r#""status":"ok""#) {
        eprintln!("probe: unexpected health body: {}", health.body);
        std::process::exit(1);
    }

    let raw = r#"{"gate":"maj3","inputs":[0,1,1]}"#;
    let eval = step("POST /v1/gate/eval", "POST", "/v1/gate/eval", raw);
    // When probing through a router, say who answered so scripts can
    // target that shard (e.g. to SIGKILL it and re-probe failover).
    if let Some(shard) = eval.header("x-shard") {
        println!("eval served by shard {shard}");
    }
    let local =
        swserve::respond(&Json::parse(raw).expect("probe request")).expect("local evaluation");
    if eval.body != local {
        eprintln!(
            "probe: HTTP response differs from the local evaluator\n  http:  {}\n  local: {local}",
            eval.body
        );
        std::process::exit(1);
    }

    if expect_cached {
        // Repeat the eval: the answer must now come from a cache level
        // (RAM, disk, or a coalesced in-flight leader), byte-identical.
        let again = step("POST /v1/gate/eval (repeat)", "POST", "/v1/gate/eval", raw);
        match again.header("x-cache") {
            Some("ram" | "disk" | "coalesced") => {}
            other => {
                eprintln!(
                    "probe: repeated eval was not served from cache (x-cache: {})",
                    other.unwrap_or("<missing>")
                );
                std::process::exit(1);
            }
        }
        if again.body != eval.body {
            eprintln!(
                "probe: cached response differs from the first\n  first:  {}\n  cached: {}",
                eval.body, again.body
            );
            std::process::exit(1);
        }
    }

    let metrics = step("GET /metrics", "GET", "/metrics", "");
    if Json::parse(&metrics.body).is_err() {
        eprintln!("probe: /metrics is not valid JSON");
        std::process::exit(1);
    }

    if shutdown {
        step("POST /v1/admin/shutdown", "POST", "/v1/admin/shutdown", "");
    }
    println!(
        "probe ok: healthz, gate eval (byte-identical to local){}, metrics{}",
        if expect_cached {
            ", cached repeat (byte-identical)"
        } else {
            ""
        },
        if shutdown { ", shutdown" } else { "" }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if let Some(position) = args.iter().position(|a| a == "--probe") {
        let addr = args.get(position + 1).cloned().unwrap_or_else(|| {
            eprintln!("--probe needs an address (HOST:PORT)");
            std::process::exit(2);
        });
        probe_main(
            &addr,
            args.iter().any(|a| a == "--expect-cached"),
            args.iter().any(|a| a == "--shutdown"),
        );
        return;
    }

    if args.iter().any(|a| a == "--serve") {
        let connections: usize = value_of("--connections")
            .map(|v| v.parse().expect("--connections needs an integer"))
            .unwrap_or(64);
        let requests: usize = value_of("--requests")
            .map(|v| v.parse().expect("--requests needs an integer"))
            .unwrap_or(32);
        let scenarios: Vec<String> = value_of("--scenarios")
            .unwrap_or_else(|| "hot,cold,restart,router,kill".to_string())
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let out = value_of("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
        serve_main(value_of("--addr"), connections, requests, scenarios, out);
        return;
    }

    if args.iter().any(|a| a == "--netlist") {
        let patterns: usize = value_of("--patterns")
            .map(|v| v.parse().expect("--patterns needs an integer"))
            .unwrap_or(1 << 16);
        let out = value_of("--out").unwrap_or_else(|| "BENCH_netlist.json".to_string());
        netlist_main(patterns, out);
        return;
    }
    let parse_list = |v: String, flag: &str| -> Vec<usize> {
        v.split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{flag} needs integers"))
            })
            .collect()
    };
    let threads: Vec<usize> = value_of("--threads")
        .map(|v| parse_list(v, "--threads"))
        .unwrap_or_else(|| vec![1, 2, 4]);

    if args.iter().any(|a| a == "--batch") {
        let ks: Vec<usize> = value_of("--ks")
            .map(|v| parse_list(v, "--ks"))
            .unwrap_or_else(|| vec![1, 4, 8]);
        let steps: usize = value_of("--steps")
            .map(|v| v.parse().expect("--steps needs an integer"))
            .unwrap_or(2000);
        let out = value_of("--out").unwrap_or_else(|| "BENCH_batch.json".to_string());
        batch_main(ks, steps, out);
        return;
    }

    if args.iter().any(|a| a == "--bigfft") {
        let grids: Vec<(usize, usize)> = value_of("--grids")
            .unwrap_or_else(|| "256x256,320x320,960x384,1500x700".to_string())
            .split(',')
            .map(|s| {
                let (w, h) = s
                    .trim()
                    .split_once('x')
                    .unwrap_or_else(|| panic!("--grids needs WxH entries, got {s:?}"));
                (
                    w.parse().expect("--grids needs integers"),
                    h.parse().expect("--grids needs integers"),
                )
            })
            .collect();
        let evals: usize = value_of("--evals")
            .map(|v| v.parse().expect("--evals needs an integer"))
            .unwrap_or(0);
        let out = value_of("--out").unwrap_or_else(|| "BENCH_fft.json".to_string());
        // The serial run is the accuracy and bitwise baseline, so make
        // sure 1 is in the sweep and leads it.
        let mut threads = threads;
        threads.retain(|&t| t != 1);
        threads.insert(0, 1);
        bigfft_main(grids, threads, evals, out);
        return;
    }

    if args.iter().any(|a| a == "--demag") {
        let grids: Vec<usize> = value_of("--grids")
            .map(|v| parse_list(v, "--grids"))
            .unwrap_or_else(|| vec![64, 128, 256]);
        let evals: usize = value_of("--evals")
            .map(|v| v.parse().expect("--evals needs an integer"))
            .unwrap_or(0);
        let out = value_of("--out").unwrap_or_else(|| "BENCH_demag.json".to_string());
        // The demag benchmark times the serial path first, so make sure 1
        // is in the sweep and leads it.
        let mut threads = threads;
        threads.retain(|&t| t != 1);
        threads.insert(0, 1);
        demag_main(grids, threads, evals, out);
        return;
    }

    if args.iter().any(|a| a == "--rhs") {
        let grids: Vec<usize> = value_of("--grids")
            .map(|v| parse_list(v, "--grids"))
            .unwrap_or_else(|| vec![64, 128, 256]);
        let steps: usize = value_of("--steps")
            .map(|v| v.parse().expect("--steps needs an integer"))
            .unwrap_or(0);
        let out = value_of("--out").unwrap_or_else(|| "BENCH_rhs.json".to_string());
        // The serial run is the accuracy and bitwise baseline, so make
        // sure 1 is in the sweep and leads it.
        let mut threads = threads;
        threads.retain(|&t| t != 1);
        threads.insert(0, 1);
        rhs_main(grids, threads, steps, out);
        return;
    }

    let size: usize = value_of("--size")
        .map(|v| v.parse().expect("--size needs an integer"))
        .unwrap_or(256);
    let steps: usize = value_of("--steps")
        .map(|v| v.parse().expect("--steps needs an integer"))
        .unwrap_or(50);

    println!(
        "mesh {size}x{size}, {steps} RK4 steps (exchange + anisotropy + local demag + antenna)"
    );
    // Warm-up run so page faults and lazy allocation don't skew t(1).
    run(size, steps.min(5), 1);
    let (t_serial, m_serial) = run(size, steps, 1);
    println!("threads  1: {:8.3} s  (baseline)", t_serial);
    for &n in threads.iter().filter(|&&n| n != 1) {
        let (t, m) = run(size, steps, n);
        let identical = m == m_serial;
        println!(
            "threads {n:2}: {t:8.3} s  speedup {:.2}x  bitwise-identical: {}",
            t_serial / t,
            if identical { "yes" } else { "NO" },
        );
        assert!(
            identical,
            "parallel run diverged from serial at {n} threads"
        );
    }
}
