//! `parbench` — wall-clock scaling of magnum's intra-simulation threading.
//!
//! Usage: `parbench [--size N] [--steps N] [--threads LIST]`
//!
//! Runs the same deterministic LLG workload (an N×N film with exchange,
//! anisotropy, local demag and an antenna) at each thread count and
//! reports wall time, speedup over the serial run, and whether the final
//! magnetization is bitwise identical to the serial trajectory.
//!
//! Defaults: a 256×256 mesh, 50 steps, thread counts `1,2,4`.

use std::time::Instant;

use magnum::field::demag::DemagMethod;
use magnum::prelude::*;
use magnum::solver::IntegratorKind;

fn build(size: usize, threads: usize) -> Simulation {
    let cell = 5e-9;
    let mesh = Mesh::new(size, size, [cell, cell, 1e-9]).unwrap();
    let h = size as f64 * cell;
    let antenna = Antenna::over_rect(
        &mesh,
        0.0,
        0.0,
        2.0 * cell,
        h,
        Vec3::X,
        Drive::logic_cw(3e3, 9e9, 0.0),
    );
    Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(Vec3::Z)
        .demag(DemagMethod::ThinFilmLocal)
        .absorbing_frame(AbsorbingFrame::new(8, 0.5))
        .antenna(antenna)
        .integrator(IntegratorKind::RungeKutta4)
        .threads(threads)
        .build()
        .unwrap()
}

fn run(size: usize, steps: usize, threads: usize) -> (f64, Vec<Vec3>) {
    let mut sim = build(size, threads);
    let start = Instant::now();
    for _ in 0..steps {
        sim.step().unwrap();
    }
    (start.elapsed().as_secs_f64(), sim.magnetization().to_vec())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let size: usize = value_of("--size")
        .map(|v| v.parse().expect("--size needs an integer"))
        .unwrap_or(256);
    let steps: usize = value_of("--steps")
        .map(|v| v.parse().expect("--steps needs an integer"))
        .unwrap_or(50);
    let threads: Vec<usize> = value_of("--threads")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--threads needs integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);

    println!(
        "mesh {size}x{size}, {steps} RK4 steps (exchange + anisotropy + local demag + antenna)"
    );
    // Warm-up run so page faults and lazy allocation don't skew t(1).
    run(size, steps.min(5), 1);
    let (t_serial, m_serial) = run(size, steps, 1);
    println!("threads  1: {:8.3} s  (baseline)", t_serial);
    for &n in threads.iter().filter(|&&n| n != 1) {
        let (t, m) = run(size, steps, n);
        let identical = m == m_serial;
        println!(
            "threads {n:2}: {t:8.3} s  speedup {:.2}x  bitwise-identical: {}",
            t_serial / t,
            if identical { "yes" } else { "NO" },
        );
        assert!(
            identical,
            "parallel run diverged from serial at {n} threads"
        );
    }
}
