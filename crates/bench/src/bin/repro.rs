//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage: `repro <experiment> [--fast] [--mumag] [--jobs N] [--threads N]
//!         [--manifest PATH] [--fresh] [--quiet]`
//!
//! Micromagnetic experiments (`fig5`, `thermal`, `variability`, and
//! `table1`/`table2` with `--mumag`) run through the [`swrun`] batch
//! engine:
//!
//! * `--jobs N` runs N LLG simulations in parallel (default 1, i.e.
//!   serial — identical behaviour and results to the pre-batch runner).
//! * `--threads N` gives each simulation N worker threads (0 = one per
//!   core). The default splits the machine's cores across the batch
//!   jobs (`swrun::thread_budget`), so `--jobs 4` on a 16-core box runs
//!   each simulation on 4 threads. Results are bitwise independent of
//!   the thread count.
//! * Every batch writes a JSON-lines manifest (default
//!   `target/swrun/<experiment>.manifest.jsonl`, override with
//!   `--manifest PATH`) recording each job's inputs, outputs and wall
//!   time. Re-running the same experiment **resumes**: jobs already in
//!   the manifest are skipped. `--fresh` truncates the manifest and
//!   reruns everything.
//! * `--quiet` suppresses the per-job progress lines.
//!
//! Experiments:
//! * `table1` — Table I: FO2 MAJ3 normalized output magnetization
//!   (analytic by default; `--mumag` runs the full LLG validation,
//!   `--fast` shrinks the gate for a quick run).
//! * `table2` — Table II: FO2 XOR normalized output magnetization.
//! * `table3` — Table III: energy/delay comparison.
//! * `ratios` — the §IV-D ratio analysis.
//! * `fig1` — Fig. 1: spin-wave parameter waveforms.
//! * `fig2` — Fig. 2: constructive/destructive interference.
//! * `fig3` / `fig4` — Fig. 3/4: gate geometry masks.
//! * `fig5` — Fig. 5: micromagnetic m_x field maps for all 8 MAJ3
//!   patterns (`--fast` uses the scaled-down gate; default is the
//!   full-size paper gate and takes tens of minutes).
//! * `thermal` — §IV-D: gate operation at finite temperature.
//! * `variability` — §IV-D: gate operation with lithographic edge
//!   roughness.
//! * `ablation` — effect of the backend's numerical-fidelity features
//!   (lattice compensation, drive trimming).
//! * `all` — every analytic experiment (tables 1-3, ratios, figs 1-4).
//!
//! Service commands (see the `swserve` crate):
//! * `eval [REQUEST_JSON]` — evaluate one gate/circuit request locally
//!   and print the canonical JSON response (reads stdin when no request
//!   argument is given). The bytes are identical to what `POST
//!   /v1/gate/eval` returns for the same request.
//! * `compile [REQUEST_JSON] [--demo NAME]` — compile a netlist request
//!   (a `demo` name, swnet netlist text under `source`, structural
//!   JSON under `netlist`, or truth tables under `table`) into a
//!   legalized, splitter/repeater-sized, CMOS-scored circuit.
//!   `--demo full_adder|rca4|rca8|rca16|mul2|mul4` is shorthand for
//!   `{"demo":"..."}`. The bytes are identical to what `POST
//!   /v1/netlist/eval` returns for the same request.
//! * `serve [--addr A] [--workers N] [--queue-depth N]
//!   [--cache-capacity N] [--manifest PATH] [--addr-file PATH]
//!   [--store DIR] [--store-capacity-mb N] [--prewarm PATH]` — run
//!   the HTTP gate-evaluation service until `POST /v1/admin/shutdown`.
//!   `--addr 127.0.0.1:0` binds an ephemeral port; `--addr-file` writes
//!   the resolved address for scripts to pick up. `--store DIR` adds
//!   the disk cache level (results survive restarts; `X-Cache:
//!   ram|disk|miss` says which level answered), and `--prewarm PATH`
//!   replays a swrun JSONL manifest into the store at boot.
//! * `route --backend HOST:PORT [--backend ...] [--addr A]
//!   [--vnodes N] [--pool N] [--addr-file PATH]` — the consistent-hash
//!   shard router (see the `swrouter` crate): request keys hash onto
//!   the shard ring, dead shards are ejected and retried on the next
//!   ring node, recovered shards are re-admitted by health probes.
//! * `warm --store DIR MANIFEST [MANIFEST ...]` — replay swrun JSONL
//!   manifests into a disk store offline (same mapping the server's
//!   `--prewarm` uses), so a shard can boot with a hot disk cache.

use std::f64::consts::PI;

use magnum::geometry::rasterize;
use magnum::mesh::Mesh;
use swgates::encoding::Bit;
use swgates::prelude::*;
use swperf::compare::Comparison;
use swrun::batch::RunOptions;
use swrun::gates::{maj3_patterns, xor_patterns, xor_sweep, SweepPoint};
use swrun::RunError;

/// Batch-runner settings shared by the micromagnetic experiments.
struct BatchArgs {
    jobs: usize,
    /// Worker threads per simulation (0 = auto-detect in magnum).
    threads: usize,
    manifest: Option<String>,
    fresh: bool,
    quiet: bool,
}

impl BatchArgs {
    /// The [`RunOptions`] for one experiment: `--manifest` wins,
    /// otherwise `target/swrun/<experiment>.manifest.jsonl`.
    fn options(&self, experiment: &str) -> RunOptions {
        let path = self.manifest.clone().unwrap_or_else(|| {
            std::path::Path::new("target/swrun")
                .join(format!("{experiment}.manifest.jsonl"))
                .to_string_lossy()
                .into_owned()
        });
        // Create the manifest's directory up front so a fresh checkout
        // (or a user-chosen path) doesn't burn the calibration runs
        // only to fail at the first checkpoint write.
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        let mut options = RunOptions::default()
            .with_jobs(self.jobs)
            .with_manifest(path);
        if self.fresh {
            options = options.fresh();
        }
        if self.quiet {
            options = options.quiet();
        }
        options
    }
}

/// Batch-level failures (manifest I/O, calibration) folded into the
/// experiment error type.
fn batch_err(e: RunError) -> SwGateError {
    SwGateError::Simulation {
        reason: e.to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let mumag = args.iter().any(|a| a == "--mumag");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let jobs = match value_of("--jobs").map(|v| v.parse::<usize>()) {
        None if !args.iter().any(|a| a == "--jobs") => 1,
        Some(Ok(n)) if n >= 1 => n,
        _ => {
            eprintln!("--jobs needs a positive integer");
            std::process::exit(2);
        }
    };
    let threads = match value_of("--threads").map(|v| v.parse::<usize>()) {
        None if !args.iter().any(|a| a == "--threads") => swrun::thread_budget(jobs),
        Some(Ok(n)) => n,
        _ => {
            eprintln!("--threads needs a non-negative integer (0 = auto)");
            std::process::exit(2);
        }
    };
    let manifest = value_of("--manifest");
    if manifest.is_none() && args.iter().any(|a| a == "--manifest") {
        eprintln!("--manifest needs a path");
        std::process::exit(2);
    }
    let batch = BatchArgs {
        jobs,
        threads,
        manifest,
        fresh: args.iter().any(|a| a == "--fresh"),
        quiet: args.iter().any(|a| a == "--quiet"),
    };
    // Skip flag values ("--jobs 4") when looking for the command word.
    let command = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0
                    || !matches!(
                        args[i - 1].as_str(),
                        "--jobs"
                            | "--threads"
                            | "--manifest"
                            | "--addr"
                            | "--workers"
                            | "--queue-depth"
                            | "--cache-capacity"
                            | "--addr-file"
                            | "--demo"
                            | "--backend"
                            | "--vnodes"
                            | "--pool"
                            | "--store"
                            | "--store-capacity-mb"
                            | "--prewarm"
                    ))
        })
        .map(|(_, a)| a.as_str())
        .unwrap_or("all");

    let result = match command {
        "table1" => table1(fast, mumag, &batch),
        "table2" => table2(fast, mumag, &batch),
        "table3" => {
            table3();
            Ok(())
        }
        "ratios" => {
            ratios();
            Ok(())
        }
        "fig1" => {
            fig1();
            Ok(())
        }
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(fast, &batch),
        "thermal" => thermal(&batch),
        "variability" => variability(&batch),
        "ablation" => ablation(),
        "eval" => eval_command(&args),
        "compile" => compile_command(&args),
        "serve" => serve(&args),
        "route" => route(&args),
        "warm" => warm(&args),
        "all" => all(),
        other => {
            eprintln!("unknown experiment `{other}`; see the module docs for the list");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn all() -> Result<(), SwGateError> {
    let serial = BatchArgs {
        jobs: 1,
        threads: 1,
        manifest: None,
        fresh: false,
        quiet: true,
    };
    table1(false, false, &serial)?;
    println!();
    table2(false, false, &serial)?;
    println!();
    table3();
    println!();
    ratios();
    println!();
    fig1();
    println!();
    fig2()?;
    println!();
    fig3()?;
    println!();
    fig4()
}

fn maj3_layout(fast: bool) -> Result<TriangleMaj3Layout, SwGateError> {
    if fast {
        TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 4, 1)
    } else {
        Ok(TriangleMaj3Layout::paper())
    }
}

fn xor_layout(fast: bool) -> Result<TriangleXorLayout, SwGateError> {
    if fast {
        TriangleXorLayout::new(55e-9, 50e-9, 110e-9, 40e-9)
    } else {
        Ok(TriangleXorLayout::paper())
    }
}

/// Table I — FO2 MAJ3 normalized output magnetization.
fn table1(fast: bool, mumag: bool, batch: &BatchArgs) -> Result<(), SwGateError> {
    println!("=== Table I — fan-in of 3 fan-out of 2 Majority gate ===");
    println!("paper reference values (O1 ≈ O2): 000/111 -> 1.0; I1-minority -> 0.083,");
    println!("I2-minority -> 0.16, I3-minority -> 0.164\n");
    let layout = maj3_layout(fast && mumag)?;
    let gate = Maj3Gate::new(layout);
    let table = if mumag {
        let backend = MumagBackend::fast().with_threads(batch.threads);
        eprintln!("running 3 calibration + 8 pattern LLG simulations ...");
        let report =
            maj3_patterns(&backend, &layout, &batch.options("table1")).map_err(batch_err)?;
        if let Some(error) = report.first_error() {
            eprintln!("warning: a pattern failed: {error}");
        }
        gate.truth_table(&report.memo())?
    } else {
        gate.truth_table(&AnalyticBackend::paper())?
    };
    println!(
        "{}",
        table.render(if mumag {
            "measured (micromagnetic backend)"
        } else {
            "measured (analytic backend)"
        })
    );
    table.verify(|p| Bit::majority(p[0], p[1], p[2]))?;
    println!(
        "majority decoded correctly on all patterns at both outputs;\n\
         max O1/O2 amplitude mismatch = {:.3} (paper: outputs identical)",
        table.max_fanout_mismatch()
    );
    Ok(())
}

/// Table II — FO2 XOR normalized output magnetization.
fn table2(fast: bool, mumag: bool, batch: &BatchArgs) -> Result<(), SwGateError> {
    println!("=== Table II — fan-in of 2 fan-out of 2 XOR gate ===");
    println!("paper reference values: 00 -> 0.99/1, 01/10 -> ≈0, 11 -> 1\n");
    let layout = xor_layout(fast && mumag)?;
    let gate = XorGate::new(layout);
    let table = if mumag {
        let backend = MumagBackend::fast().with_threads(batch.threads);
        eprintln!("running 2 calibration + 4 pattern LLG simulations ...");
        let report =
            xor_patterns(&backend, &layout, &batch.options("table2")).map_err(batch_err)?;
        if let Some(error) = report.first_error() {
            eprintln!("warning: a pattern failed: {error}");
        }
        gate.truth_table(&report.memo())?
    } else {
        gate.truth_table(&AnalyticBackend::paper())?
    };
    println!(
        "{}",
        table.render(if mumag {
            "measured (micromagnetic backend)"
        } else {
            "measured (analytic backend)"
        })
    );
    table.verify(|p| Bit::xor(p[0], p[1]))?;
    println!("XOR decoded correctly with threshold 0.5 at both outputs");
    Ok(())
}

/// Table III — performance comparison.
fn table3() {
    println!("=== Table III — performance comparison ===\n");
    print!("{}", Comparison::paper().render());
    println!(
        "\npaper reference row (this work): MAJ 5 cells / 0.4 ns / 10.3 aJ, \
         XOR 4 cells / 0.4 ns / 6.9 aJ"
    );
}

/// §IV-D ratio analysis.
fn ratios() {
    println!("=== §IV-D ratio analysis ===\n");
    print!("{}", Comparison::paper().ratios().render());
    println!(
        "\nnote: the paper's prose claims 11x MAJ energy reduction vs 16 nm CMOS while its \
         Table III numbers give 466/10.3 ≈ 45x; we reproduce the table."
    );
}

/// Fig. 1 — spin-wave parameters (φ = 0, k = 1 vs φ = π, k = 3).
fn fig1() {
    println!("=== Fig. 1 — spin wave parameters ===\n");
    let width = 64;
    let render = |phase: f64, k: u32| {
        let rows = 9;
        let mut grid = vec![vec![' '; width]; rows];
        let ys = (0..width).map(|x| {
            let theta = 2.0 * PI * k as f64 * x as f64 / width as f64 + phase;
            ((theta.sin() + 1.0) / 2.0 * (rows - 1) as f64).round() as usize
        });
        for (x, y) in ys.enumerate() {
            grid[rows - 1 - y][x] = '*';
        }
        for row in grid {
            println!("{}", row.into_iter().collect::<String>());
        }
    };
    println!("a) φ = 0, k = 1:");
    render(0.0, 1);
    println!("\nb) φ = π, k = 3:");
    render(PI, 3);
}

/// Fig. 2 — constructive and destructive interference.
fn fig2() -> Result<(), SwGateError> {
    println!("=== Fig. 2 — constructive / destructive interference ===\n");
    let backend = AnalyticBackend::ideal();
    let layout = xor_layout(false)?;
    let (same, _) = backend.xor_outputs(&layout, [Bit::Zero, Bit::Zero]);
    let (opposite, _) = backend.xor_outputs(&layout, [Bit::Zero, Bit::One]);
    println!(
        "wave 1 + wave 2, same phase:      |A| = {:.3} (constructive)",
        same.abs()
    );
    println!(
        "wave 1 + wave 2, opposite phase:  |A| = {:.3} (destructive)",
        opposite.abs()
    );
    let samples = 48;
    println!("\nsuperposed waveforms over one period:");
    for (label, w2_phase) in [("constructive", 0.0), ("destructive", PI)] {
        let mut line = String::new();
        for i in 0..samples {
            let t = 2.0 * PI * i as f64 / samples as f64;
            let sum = t.sin() + (t + w2_phase).sin();
            line.push(match sum {
                s if s > 1.0 => '#',
                s if s > 0.3 => '+',
                s if s > -0.3 => '-',
                s if s > -1.0 => '+',
                _ => '#',
            });
        }
        println!("  {label:<13} {line}");
    }
    Ok(())
}

/// Renders a layout's rasterized mask (Fig. 3/4 geometry).
fn render_geometry(kind: &str) -> Result<(), SwGateError> {
    let backend = MumagBackend::new(swphys::film::PerpendicularFilm::fecob(1e-9), 55e-9 / 2.0);
    let cell = backend.cell();
    let (shape, bounds) = match kind {
        "maj3" => backend.maj3_geometry(&TriangleMaj3Layout::paper())?,
        _ => backend.xor_geometry(&TriangleXorLayout::paper())?,
    };
    let (x0, y0, x1, y1) = bounds;
    let nx = ((x1 - x0) / cell).ceil() as usize + 1;
    let ny = ((y1 - y0) / cell).ceil() as usize + 1;
    let mut mesh = Mesh::new(nx, ny, [cell, cell, 1e-9]).map_err(SwGateError::from)?;
    struct Shifted {
        inner: Box<dyn magnum::geometry::Shape>,
        dx: f64,
        dy: f64,
    }
    impl magnum::geometry::Shape for Shifted {
        fn contains(&self, x: f64, y: f64) -> bool {
            self.inner.contains(x - self.dx, y - self.dy)
        }
    }
    let shifted = Shifted {
        inner: shape,
        dx: -x0,
        dy: -y0,
    };
    rasterize(&mut mesh, &shifted);
    println!("{}", mesh.mask_ascii());
    Ok(())
}

/// Fig. 3 — the MAJ3 gate geometry.
fn fig3() -> Result<(), SwGateError> {
    println!("=== Fig. 3 — fan-out of 2 MAJ3 gate geometry (rasterized) ===");
    let l = TriangleMaj3Layout::paper();
    println!(
        "λ = {:.0} nm, w = {:.0} nm, d1 = {:.0} nm, d2 = {:.0} nm, d3 = {:.0} nm, d4 = {:.0} nm\n",
        l.wavelength() * 1e9,
        l.width() * 1e9,
        l.d1() * 1e9,
        l.d2() * 1e9,
        l.d3() * 1e9,
        l.d4() * 1e9
    );
    render_geometry("maj3")
}

/// Fig. 4 — the XOR gate geometry.
fn fig4() -> Result<(), SwGateError> {
    println!("=== Fig. 4 — fan-out of 2 XOR gate geometry (rasterized) ===");
    let l = TriangleXorLayout::paper();
    println!(
        "λ = {:.0} nm, w = {:.0} nm, d1 = {:.0} nm, d2 = {:.0} nm\n",
        l.wavelength() * 1e9,
        l.width() * 1e9,
        l.d1() * 1e9,
        l.d2() * 1e9
    );
    render_geometry("xor")
}

/// Fig. 5 — micromagnetic field maps for all 8 MAJ3 input patterns.
fn fig5(fast: bool, batch: &BatchArgs) -> Result<(), SwGateError> {
    println!("=== Fig. 5 — MAJ3 micromagnetic simulations (m_x maps) ===\n");
    let backend = MumagBackend::fast().with_threads(batch.threads);
    let layout = maj3_layout(fast)?;
    if !fast {
        eprintln!("full-size gate: this runs 3 + 8 LLG simulations and may take a while;");
        eprintln!("pass --fast for the scaled-down gate.");
    }
    let report = maj3_patterns(&backend, &layout, &batch.options("fig5")).map_err(batch_err)?;
    for (i, outcome) in report.patterns.iter().enumerate() {
        let pattern = outcome.pattern;
        let (o1, o2) = outcome
            .phasors
            .map(|(a, b)| (a.abs(), b.abs()))
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{}) inputs (I1, I2, I3) = ({}, {}, {}); |O1| = {:.3e}, |O2| = {:.3e}",
            (b'a' + i as u8) as char,
            pattern[0],
            pattern[1],
            pattern[2],
            o1,
            o2,
        );
        if let Some(error) = &outcome.error {
            println!("   FAILED: {error}\n");
        } else if let Some(run) = &outcome.run {
            let snap = &run.snapshot;
            let scale = snap.max().max(-snap.min());
            println!("{}", snap.to_ascii(scale));
        } else {
            println!(
                "   (resumed from manifest — field map not recorded; rerun with --fresh \
                 to regenerate it)\n"
            );
        }
    }
    Ok(())
}

/// §IV-D — thermal-noise robustness (micromagnetic, scaled-down XOR).
fn thermal(batch: &BatchArgs) -> Result<(), SwGateError> {
    println!("=== §IV-D — gate operation at finite temperature ===\n");
    let layout = xor_layout(true)?;
    let gate = XorGate::new(layout);
    let temperatures = [0.0, 100.0, 300.0];
    let points: Vec<SweepPoint> = temperatures
        .iter()
        .map(|&temperature| {
            // T > 0 needs a stronger drive and longer averaging: the
            // thermal-magnon background of a 1 nm film rivals a weakly
            // driven signal (see EXPERIMENTS.md, experiment X2), and with
            // per-cell fluctuation–dissipation the film sits at a genuine
            // thermal magnon equilibrium (absorbing frames radiate too).
            let backend = if temperature > 0.0 {
                MumagBackend::fast()
                    .with_temperature(temperature, 42)
                    .with_drive_amplitude(80e3)
                    .with_measure_periods(32)
            } else {
                MumagBackend::fast()
            };
            SweepPoint::new(
                format!("T{temperature:.0}K"),
                backend.with_threads(batch.threads),
            )
        })
        .collect();
    let sweep = xor_sweep(&points, &layout, &batch.options("thermal")).map_err(batch_err)?;
    for (temperature, point) in temperatures.iter().zip(&sweep.points) {
        if let Some(error) = point.patterns.iter().find_map(|p| p.error.as_deref()) {
            println!("T = {temperature:>5.0} K: FAILED — {error}");
            continue;
        }
        let table = gate.truth_table(&point.memo())?;
        let ok = table.verify(|p| Bit::xor(p[0], p[1])).is_ok();
        println!(
            "T = {temperature:>5.0} K: XOR truth table {} (min strong {:.2}, max weak {:.2})",
            if ok { "correct" } else { "CORRUPTED" },
            table.min_normalized_where(|r| r.inputs[0] == r.inputs[1]),
            table.max_normalized_where(|r| r.inputs[0] != r.inputs[1]),
        );
    }
    println!("\n(the paper cites [36], [43]: thermal noise has limited impact — same finding)");
    Ok(())
}

/// §IV-D — variability: edge roughness on the gate geometry.
fn variability(batch: &BatchArgs) -> Result<(), SwGateError> {
    println!("=== §IV-D — gate operation with edge roughness ===\n");
    let layout = xor_layout(true)?;
    let gate = XorGate::new(layout);
    let roughnesses = [0.0, 1.0, 2.0, 3.0];
    let points: Vec<SweepPoint> = roughnesses
        .iter()
        .map(|&roughness_nm| {
            let backend = if roughness_nm > 0.0 {
                MumagBackend::fast().with_edge_roughness(roughness_nm * 1e-9, 20e-9, 7)
            } else {
                MumagBackend::fast()
            };
            SweepPoint::new(
                format!("rough{roughness_nm:.0}nm"),
                backend.with_threads(batch.threads),
            )
        })
        .collect();
    let sweep = xor_sweep(&points, &layout, &batch.options("variability")).map_err(batch_err)?;
    for (roughness_nm, point) in roughnesses.iter().zip(&sweep.points) {
        if let Some(error) = point.patterns.iter().find_map(|p| p.error.as_deref()) {
            println!("edge roughness ±{roughness_nm:.0} nm: FAILED — {error}");
            continue;
        }
        let table = gate.truth_table(&point.memo())?;
        let ok = table.verify(|p| Bit::xor(p[0], p[1])).is_ok();
        println!(
            "edge roughness ±{roughness_nm:.0} nm: XOR truth table {} \
             (strong ≥ {:.2}, weak ≤ {:.2}, fan-out mismatch {:.2})",
            if ok { "correct" } else { "CORRUPTED" },
            table.min_normalized_where(|r| r.inputs[0] == r.inputs[1]),
            table.max_normalized_where(|r| r.inputs[0] != r.inputs[1]),
            table.max_fanout_mismatch(),
        );
    }
    println!("\n(matches [36]/[43]: moderate roughness does not disturb gate functionality)");
    Ok(())
}

/// Ablation: what the numerical-fidelity machinery buys. The XOR's two
/// paths are mirror-symmetric, so trims barely matter there; the proof
/// point is the MAJ3's I3-minority pattern (110), where the two-junction
/// trunk path and the one-junction I3 path meet with uncorrected
/// scattering phases and losses.
fn ablation() -> Result<(), SwGateError> {
    println!("=== ablation — drive trimming / lattice compensation on MAJ3(1,1,0) ===\n");
    let layout = maj3_layout(true)?;
    let configs: [(&str, MumagBackend); 3] = [
        ("full (trims + compensation)", MumagBackend::fast()),
        (
            "no lattice compensation",
            MumagBackend::fast().without_compensation(),
        ),
        (
            "no drive trimming",
            MumagBackend::fast().without_phase_trim(),
        ),
    ];
    for (name, backend) in configs {
        let (r, _) = backend.maj3_outputs(&layout, [Bit::Zero; 3])?;
        // I3-minority: I1 = I2 = 1 outvote I3 = 0; the output must carry
        // phase π (logic 1) with a suppressed amplitude.
        let (o, _) = backend.maj3_outputs(&layout, [Bit::One, Bit::One, Bit::Zero])?;
        let relphase = (o * r.conj()).arg();
        let decoded = if relphase.abs() > std::f64::consts::FRAC_PI_2 {
            1
        } else {
            0
        };
        println!(
            "{name:<30} norm {:.3}, rel. phase {:+.2} rad -> decodes {} ({})",
            o.abs() / r.abs(),
            relphase,
            decoded,
            if decoded == 1 {
                "correct"
            } else {
                "WRONG — majority violated"
            },
        );
    }
    println!("\n(the drive calibration is what keeps the tie-break semantics of the majority)");
    Ok(())
}

/// Positional (non-flag, non-flag-value) arguments, in order.
fn positionals(args: &[String]) -> Vec<&str> {
    args.iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0
                    || !matches!(
                        args[i - 1].as_str(),
                        "--jobs"
                            | "--threads"
                            | "--manifest"
                            | "--addr"
                            | "--workers"
                            | "--queue-depth"
                            | "--cache-capacity"
                            | "--addr-file"
                            | "--demo"
                            | "--backend"
                            | "--vnodes"
                            | "--pool"
                            | "--store"
                            | "--store-capacity-mb"
                            | "--prewarm"
                    ))
        })
        .map(|(_, a)| a.as_str())
        .collect()
}

/// Reads the request document for `eval`/`compile`: the positional
/// after the command word, or stdin when absent.
fn request_arg(args: &[String]) -> Result<String, SwGateError> {
    match positionals(args).get(1) {
        Some(request) => Ok((*request).to_string()),
        None => {
            let mut buffer = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buffer).map_err(|e| {
                SwGateError::Simulation {
                    reason: format!("reading request from stdin: {e}"),
                }
            })?;
            Ok(buffer)
        }
    }
}

/// `repro eval [REQUEST_JSON]` — one local gate/circuit evaluation,
/// byte-identical to the server's `POST /v1/gate/eval` response.
fn eval_command(args: &[String]) -> Result<(), SwGateError> {
    // The request is the positional after the `eval` command word;
    // without one, read it from stdin (`echo '{...}' | repro eval`).
    let raw = request_arg(args)?;
    let request = swjson::Json::parse(raw.trim()).map_err(|e| SwGateError::Simulation {
        reason: format!("bad request JSON: {e}"),
    })?;
    let response = swserve::respond(&request).map_err(|e| SwGateError::Simulation {
        reason: e.to_string(),
    })?;
    println!("{response}");
    Ok(())
}

/// `repro compile [REQUEST_JSON] [--demo NAME]` — one local netlist
/// compilation, byte-identical to `POST /v1/netlist/eval`.
fn compile_command(args: &[String]) -> Result<(), SwGateError> {
    let request = match args
        .iter()
        .position(|a| a == "--demo")
        .and_then(|i| args.get(i + 1))
    {
        Some(name) => swjson::Json::obj([("demo", swjson::Json::str(name))]),
        None => {
            if args.iter().any(|a| a == "--demo") {
                eprintln!(
                    "--demo needs a name (one of {})",
                    swserve::netlist::DEMOS.join(", ")
                );
                std::process::exit(2);
            }
            let raw = request_arg(args)?;
            swjson::Json::parse(raw.trim()).map_err(|e| SwGateError::Simulation {
                reason: format!("bad request JSON: {e}"),
            })?
        }
    };
    let response = swserve::netlist::respond(&request).map_err(|e| SwGateError::Simulation {
        reason: e.to_string(),
    })?;
    println!("{response}");
    Ok(())
}

/// `repro serve` — the HTTP gate-evaluation service (see `swserve`).
fn serve(args: &[String]) -> Result<(), SwGateError> {
    let io_err = |context: &str| {
        let context = context.to_string();
        move |e: std::io::Error| SwGateError::Simulation {
            reason: format!("{context}: {e}"),
        }
    };
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_count = |flag: &str, default: usize| -> usize {
        match value_of(flag).map(|v| v.parse::<usize>()) {
            None => default,
            Some(Ok(n)) => n,
            Some(Err(_)) => {
                eprintln!("{flag} needs a non-negative integer");
                std::process::exit(2);
            }
        }
    };
    let manifest = value_of("--manifest")
        .map(std::path::PathBuf::from)
        .or_else(|| {
            Some(std::path::PathBuf::from(
                "target/swrun/serve.manifest.jsonl",
            ))
        });
    if let Some(parent) = manifest.as_deref().and_then(std::path::Path::parent) {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).ok();
        }
    }
    let store = value_of("--store").map(std::path::PathBuf::from);
    if store.is_none() && args.iter().any(|a| a == "--store") {
        eprintln!("--store needs a directory");
        std::process::exit(2);
    }
    let prewarm = value_of("--prewarm").map(std::path::PathBuf::from);
    if prewarm.is_some() && store.is_none() {
        eprintln!("--prewarm needs --store DIR (nothing to warm without a disk store)");
        std::process::exit(2);
    }
    let config = swserve::ServerConfig {
        addr: value_of("--addr").unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        workers: parse_count("--workers", 2),
        queue_depth: parse_count("--queue-depth", 64),
        cache_capacity: parse_count("--cache-capacity", 1024),
        manifest,
        store,
        store_capacity_bytes: (parse_count("--store-capacity-mb", 64) as u64) << 20,
        prewarm,
    };
    let server = swserve::Server::bind(&config).map_err(io_err("binding the server"))?;
    let addr = server.local_addr();
    if let Some(path) = value_of("--addr-file") {
        std::fs::write(&path, addr.to_string()).map_err(io_err("writing the address file"))?;
    }
    eprintln!(
        "swserve listening on http://{addr} ({} job workers, queue depth {}{}); \
         POST /v1/admin/shutdown to drain",
        config.workers,
        config.queue_depth,
        match &config.store {
            Some(dir) => format!(", disk store {}", dir.display()),
            None => String::new(),
        }
    );
    server.run().map_err(io_err("serving"))
}

/// `repro route` — the consistent-hash shard router (see `swrouter`).
fn route(args: &[String]) -> Result<(), SwGateError> {
    let io_err = |context: &str| {
        let context = context.to_string();
        move |e: std::io::Error| SwGateError::Simulation {
            reason: format!("{context}: {e}"),
        }
    };
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_count = |flag: &str, default: usize| -> usize {
        match value_of(flag).map(|v| v.parse::<usize>()) {
            None => default,
            Some(Ok(n)) => n,
            Some(Err(_)) => {
                eprintln!("{flag} needs a non-negative integer");
                std::process::exit(2);
            }
        }
    };
    // `--backend HOST:PORT`, repeated once per shard.
    let backends: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--backend")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    let config = swrouter::RouterConfig {
        addr: value_of("--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        backends,
        vnodes: parse_count("--vnodes", 64),
        pool_per_backend: parse_count("--pool", 8),
        ..swrouter::RouterConfig::default()
    };
    let router = swrouter::Router::bind(&config).map_err(io_err("binding the router"))?;
    let addr = router.local_addr();
    if let Some(path) = value_of("--addr-file") {
        std::fs::write(&path, addr.to_string()).map_err(io_err("writing the address file"))?;
    }
    eprintln!(
        "swrouter listening on http://{addr} ({} shard(s), {} vnodes); \
         POST /v1/admin/shutdown to drain",
        config.backends.len(),
        config.vnodes
    );
    router.run().map_err(io_err("routing"))
}

/// `repro warm` — replay swrun manifests into a disk store offline.
fn warm(args: &[String]) -> Result<(), SwGateError> {
    let store_err = |reason: String| SwGateError::Simulation { reason };
    let dir = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .unwrap_or_else(|| {
            eprintln!("warm needs --store DIR");
            std::process::exit(2);
        });
    let manifests = &positionals(args)[1..]; // after the `warm` word
    if manifests.is_empty() {
        eprintln!("warm needs at least one manifest path");
        std::process::exit(2);
    }
    let capacity = match args
        .iter()
        .position(|a| a == "--store-capacity-mb")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<u64>())
    {
        None => 64u64,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("--store-capacity-mb needs a non-negative integer");
            std::process::exit(2);
        }
    };
    let store = std::sync::Arc::new(
        swstore::Store::open(swstore::StoreConfig::new(dir).capacity_bytes(capacity << 20))
            .map_err(|e| store_err(format!("store `{dir}`: {e}")))?,
    );
    for manifest in manifests {
        let warmed = swserve::store::prewarm(&store, std::path::Path::new(manifest))
            .map_err(|e| store_err(format!("pre-warm `{manifest}`: {e}")))?;
        println!("{manifest}: {warmed} result(s) warmed");
    }
    let counters = store.counters();
    println!(
        "store `{dir}`: {} entr(ies), {} byte(s) on disk",
        counters.entries, counters.disk_bytes
    );
    Ok(())
}
