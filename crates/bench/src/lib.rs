//! Shared helpers for the benchmark binaries.
//!
//! The `parbench` reports (`BENCH_demag.json`, `BENCH_rhs.json`) use a
//! common machine-readable envelope so downstream tooling can parse them
//! uniformly: a benchmark name, the metric unit, a one-line description of
//! the reference implementation, and one entry per benchmarked grid size.

use swrun::json::Json;

/// Assembles the common benchmark-report envelope, writes it to `out`
/// with a trailing newline, and prints the path.
///
/// # Panics
///
/// Panics if the report file cannot be written.
pub fn write_bench_json(out: &str, benchmark: &str, unit: &str, reference: &str, grids: Vec<Json>) {
    let report = Json::obj([
        ("benchmark", Json::str(benchmark)),
        ("unit", Json::str(unit)),
        ("reference", Json::str(reference)),
        ("grids", Json::Arr(grids)),
    ]);
    std::fs::write(out, report.render() + "\n").expect("failed to write report");
    println!("wrote {out}");
}
