//! Shared helpers for the benchmark binaries.
//!
//! The `parbench` reports (`BENCH_demag.json`, `BENCH_rhs.json`,
//! `BENCH_serve.json`) use machine-readable JSON envelopes so downstream
//! tooling can parse them uniformly. The grid-sweep benchmarks share one
//! envelope shape ([`write_bench_json`]); other benchmarks assemble their
//! own document and write it through [`write_report`]. The [`httpc`]
//! module is the tiny blocking HTTP/1.1 client the `swserve` loadtest and
//! smoke probe drive the server with.

use swrun::json::Json;

/// Assembles the common benchmark-report envelope, writes it to `out`
/// with a trailing newline, and prints the path.
///
/// # Panics
///
/// Panics if the report file cannot be written.
pub fn write_bench_json(out: &str, benchmark: &str, unit: &str, reference: &str, grids: Vec<Json>) {
    let report = Json::obj([
        ("benchmark", Json::str(benchmark)),
        ("unit", Json::str(unit)),
        ("reference", Json::str(reference)),
        ("grids", Json::Arr(grids)),
    ]);
    write_report(out, &report);
}

/// Writes any JSON benchmark report to `out` with a trailing newline and
/// prints the path. Use this for reports whose shape doesn't fit the
/// grid-sweep envelope of [`write_bench_json`].
///
/// # Panics
///
/// Panics if the report file cannot be written.
pub fn write_report(out: &str, report: &Json) {
    std::fs::write(out, report.render() + "\n").expect("failed to write report");
    println!("wrote {out}");
}

/// A minimal blocking HTTP/1.1 client over `std::net`, just enough to
/// drive the `swserve` API: keep-alive connections, `Content-Length`
/// framed bodies, lowercase header access.
pub mod httpc {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    /// One parsed response.
    #[derive(Debug)]
    pub struct Response {
        /// The HTTP status code.
        pub status: u16,
        /// Header name/value pairs, names lowercased.
        pub headers: Vec<(String, String)>,
        /// The body with the server's cosmetic trailing newline removed.
        pub body: String,
    }

    impl Response {
        /// The first header with this (lowercase) name.
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
        }
    }

    /// A keep-alive connection to the server.
    pub struct Client {
        stream: TcpStream,
    }

    impl Client {
        /// Connects with a generous read timeout.
        ///
        /// # Errors
        ///
        /// Propagates connection failures.
        pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(60)))?;
            stream.set_nodelay(true)?;
            Ok(Client { stream })
        }

        /// Issues one request and reads the response, reusing the
        /// connection (keep-alive).
        ///
        /// # Errors
        ///
        /// Socket failures and malformed responses surface as
        /// `io::Error`.
        pub fn request(
            &mut self,
            method: &str,
            path: &str,
            body: &str,
        ) -> std::io::Result<Response> {
            let head = format!(
                "{method} {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n",
                body.len()
            );
            self.stream.write_all(head.as_bytes())?;
            self.stream.write_all(body.as_bytes())?;
            self.read_response()
        }

        fn read_line(&mut self) -> std::io::Result<String> {
            let mut line = Vec::new();
            let mut byte = [0u8; 1];
            loop {
                let n = self.stream.read(&mut byte)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ));
                }
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line).map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 header")
                    });
                }
                line.push(byte[0]);
            }
        }

        fn read_response(&mut self) -> std::io::Result<Response> {
            let status_line = self.read_line()?;
            let status: u16 = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad status line `{status_line}`"),
                    )
                })?;
            let mut headers = Vec::new();
            loop {
                let line = self.read_line()?;
                if line.is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                }
            }
            let length: usize = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse().ok())
                .ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "missing content-length")
                })?;
            let mut body = vec![0u8; length];
            self.stream.read_exact(&mut body)?;
            let mut body = String::from_utf8(body).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body")
            })?;
            if body.ends_with('\n') {
                body.pop();
            }
            Ok(Response {
                status,
                headers,
                body,
            })
        }
    }
}
