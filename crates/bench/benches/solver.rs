//! Criterion benches for the micromagnetic solver kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use magnum::damping::AbsorbingFrame;
use magnum::fft::{fft2_in_place, fft_in_place, Direction};
use magnum::field::anisotropy::UniaxialAnisotropy;
use magnum::field::demag::{DemagMethod, NewellDemag, ThinFilmDemag};
use magnum::field::exchange::Exchange;
use magnum::field::thermal::ThermalField;
use magnum::field::FieldTerm;
use magnum::material::Material;
use magnum::math::{Complex64, Vec3};
use magnum::mesh::Mesh;
use magnum::sim::Simulation;
use magnum::solver::IntegratorKind;

fn mesh(nx: usize, ny: usize) -> Mesh {
    Mesh::new(nx, ny, [5e-9, 5e-9, 1e-9]).expect("valid mesh")
}

fn tilted_state(n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| {
            Vec3::new(
                0.01 * ((i % 17) as f64).sin(),
                0.01 * ((i % 13) as f64).cos(),
                1.0,
            )
            .normalized()
        })
        .collect()
}

fn bench_field_terms(c: &mut Criterion) {
    let mesh = mesh(128, 32);
    let mat = Material::fecob();
    let m = tilted_state(mesh.cell_count());
    let mut h = vec![Vec3::ZERO; mesh.cell_count()];

    let exchange = Exchange::new(&mesh, &mat);
    c.bench_function("field/exchange 128x32", |b| {
        b.iter(|| {
            h.fill(Vec3::ZERO);
            exchange.accumulate(black_box(&m), 0.0, &mut h);
        })
    });

    let anis = UniaxialAnisotropy::new(&mesh, &mat);
    c.bench_function("field/anisotropy 128x32", |b| {
        b.iter(|| {
            h.fill(Vec3::ZERO);
            anis.accumulate(black_box(&m), 0.0, &mut h);
        })
    });

    let local = ThinFilmDemag::new(&mesh, &mat);
    c.bench_function("field/demag_local 128x32", |b| {
        b.iter(|| {
            h.fill(Vec3::ZERO);
            local.accumulate(black_box(&m), 0.0, &mut h);
        })
    });

    let small = Mesh::new(32, 32, [5e-9, 5e-9, 1e-9]).expect("valid mesh");
    let m_small = tilted_state(small.cell_count());
    let mut h_small = vec![Vec3::ZERO; small.cell_count()];
    let newell = NewellDemag::new(&small, &mat);
    c.bench_function("field/demag_newell_fft 32x32", |b| {
        b.iter(|| {
            h_small.fill(Vec3::ZERO);
            newell.accumulate(black_box(&m_small), 0.0, &mut h_small);
        })
    });
}

fn bench_integrators(c: &mut Criterion) {
    for kind in [IntegratorKind::Heun, IntegratorKind::RungeKutta4] {
        let name = format!("integrator/{kind:?} 64x16 x10 steps");
        c.bench_function(&name, |b| {
            b.iter_batched(
                || {
                    Simulation::builder(mesh(64, 16), Material::fecob())
                        .integrator(kind)
                        .uniform_magnetization(Vec3::new(0.1, 0.0, 1.0))
                        .build()
                        .expect("build")
                },
                |mut sim| {
                    for _ in 0..10 {
                        sim.step().expect("step");
                    }
                    black_box(sim.time())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_thermal_and_damping(c: &mut Criterion) {
    let mesh = mesh(64, 16);
    let mat = Material::fecob();
    let mut thermal = ThermalField::new(&mesh, &mat, 300.0, 7);
    let mut buf = vec![Vec3::ZERO; mesh.cell_count()];
    c.bench_function("thermal/draw 64x16", |b| {
        b.iter(|| thermal.draw(1e-13, black_box(&mut buf)))
    });

    c.bench_function("damping/frame map 128x32", |b| {
        let big = Mesh::new(128, 32, [5e-9, 5e-9, 1e-9]).expect("mesh");
        b.iter(|| AbsorbingFrame::new(8, 0.5).damping_map(black_box(&big), 0.004))
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut data: Vec<Complex64> = (0..1024)
        .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos()))
        .collect();
    c.bench_function("fft/1d 1024 round trip", |b| {
        b.iter(|| {
            fft_in_place(black_box(&mut data), Direction::Forward);
            fft_in_place(black_box(&mut data), Direction::Inverse);
        })
    });

    let mut grid = vec![Complex64::ONE; 64 * 64];
    c.bench_function("fft/2d 64x64 round trip", |b| {
        b.iter(|| {
            fft2_in_place(black_box(&mut grid), 64, 64, Direction::Forward);
            fft2_in_place(black_box(&mut grid), 64, 64, Direction::Inverse);
        })
    });
}

fn bench_demag_setup(c: &mut Criterion) {
    c.bench_function("demag/newell kernel build 32x16", |b| {
        let mesh = Mesh::new(32, 16, [5e-9, 5e-9, 1e-9]).expect("mesh");
        let mat = Material::fecob();
        b.iter(|| black_box(NewellDemag::new(&mesh, &mat)))
    });

    c.bench_function("sim/build local demag 128x32", |b| {
        b.iter(|| {
            Simulation::builder(mesh(128, 32), Material::fecob())
                .demag(DemagMethod::ThinFilmLocal)
                .build()
                .expect("build")
        })
    });
}

criterion_group!(
    benches,
    bench_field_terms,
    bench_integrators,
    bench_thermal_and_damping,
    bench_fft,
    bench_demag_setup
);
criterion_main!(benches);
