//! Criterion benches regenerating each table and figure of the paper
//! (the analytic fast paths; the full micromagnetic regenerations live
//! in the `repro` binary where they belong — they take minutes, not
//! microseconds).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use magnum::geometry::rasterize;
use magnum::mesh::Mesh;
use swgates::encoding::Bit;
use swgates::prelude::*;
use swperf::circuit_cost::fanout_advantage;
use swperf::compare::Comparison;
use swperf::mecell::MeCell;

/// Table I: the FO2 MAJ3 truth table with verification.
fn bench_table1(c: &mut Criterion) {
    let backend = AnalyticBackend::paper();
    let gate = Maj3Gate::paper();
    c.bench_function("table1/maj3 truth table + verify", |b| {
        b.iter(|| {
            let table = gate.truth_table(black_box(&backend)).expect("evaluates");
            table
                .verify(|p| Bit::majority(p[0], p[1], p[2]))
                .expect("correct");
            black_box(table.max_fanout_mismatch())
        })
    });
}

/// Table II: the FO2 XOR truth table with threshold verification.
fn bench_table2(c: &mut Criterion) {
    let backend = AnalyticBackend::paper();
    let gate = XorGate::paper();
    c.bench_function("table2/xor truth table + verify", |b| {
        b.iter(|| {
            let table = gate.truth_table(black_box(&backend)).expect("evaluates");
            table.verify(|p| Bit::xor(p[0], p[1])).expect("correct");
            black_box(table.max_fanout_mismatch())
        })
    });
}

/// Table III + the §IV-D ratios.
fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/comparison + ratios", |b| {
        b.iter(|| {
            let table = Comparison::paper();
            black_box((table.render(), table.ratios().render()))
        })
    });
}

/// Fig. 1: waveform synthesis (sampled sinusoids with φ/k parameters).
fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1/waveform synthesis", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (phase, k) in [(0.0, 1.0), (std::f64::consts::PI, 3.0)] {
                for x in 0..256 {
                    acc += (2.0 * std::f64::consts::PI * k * x as f64 / 256.0 + phase).sin();
                }
            }
            black_box(acc)
        })
    });
}

/// Fig. 2: two-wave interference on the ideal backend.
fn bench_fig2(c: &mut Criterion) {
    let backend = AnalyticBackend::ideal();
    let layout = TriangleXorLayout::paper();
    c.bench_function("fig2/interference pair", |b| {
        b.iter(|| {
            let (same, _) = backend.xor_outputs(&layout, [Bit::Zero, Bit::Zero]);
            let (opp, _) = backend.xor_outputs(&layout, [Bit::Zero, Bit::One]);
            black_box((same.abs(), opp.abs()))
        })
    });
}

/// Fig. 3/4: geometry rasterization of the paper-size gates.
fn bench_fig34(c: &mut Criterion) {
    let backend = MumagBackend::new(swphys::film::PerpendicularFilm::fecob(1e-9), 55e-9 / 4.0);
    c.bench_function("fig3/maj3 geometry rasterize", |b| {
        let (shape, bounds) = backend
            .maj3_geometry(&TriangleMaj3Layout::paper())
            .expect("valid layout");
        let nx = ((bounds.2 - bounds.0) / backend.cell()).ceil() as usize + 1;
        let ny = ((bounds.3 - bounds.1) / backend.cell()).ceil() as usize + 1;
        b.iter(|| {
            let mut mesh = Mesh::new(nx, ny, [backend.cell(), backend.cell(), 1e-9]).expect("mesh");
            struct Shifted<'a> {
                inner: &'a dyn magnum::geometry::Shape,
                dx: f64,
                dy: f64,
            }
            impl magnum::geometry::Shape for Shifted<'_> {
                fn contains(&self, x: f64, y: f64) -> bool {
                    self.inner.contains(x - self.dx, y - self.dy)
                }
            }
            rasterize(
                &mut mesh,
                &Shifted {
                    inner: shape.as_ref(),
                    dx: -bounds.0,
                    dy: -bounds.1,
                },
            );
            black_box(mesh.magnetic_cell_count())
        })
    });
    c.bench_function("fig4/xor geometry rasterize", |b| {
        let (shape, bounds) = backend
            .xor_geometry(&TriangleXorLayout::paper())
            .expect("valid layout");
        b.iter(|| {
            let nx = ((bounds.2 - bounds.0) / backend.cell()).ceil() as usize + 1;
            let ny = ((bounds.3 - bounds.1) / backend.cell()).ceil() as usize + 1;
            let mut count = 0;
            let mut mesh = Mesh::new(nx, ny, [backend.cell(), backend.cell(), 1e-9]).expect("mesh");
            mesh.set_mask_by(|x, y| shape.contains(x + bounds.0, y + bounds.1));
            count += mesh.magnetic_cell_count();
            black_box(count)
        })
    });
}

/// Fig. 5 proxy: the per-pattern simulation *setup* cost (mesh, mask,
/// damping map, antennas). The full field-map regeneration is
/// `repro fig5`.
fn bench_fig5_setup(c: &mut Criterion) {
    let backend = MumagBackend::fast();
    let layout =
        TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 4, 1).expect("valid layout");
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("mini maj3 plan + geometry", |b| {
        b.iter(|| black_box(backend.maj3_geometry(&layout).expect("valid")))
    });
    group.finish();
}

/// The §I circuit-level claim: FO2 vs replication on adders.
fn bench_circuit_comparison(c: &mut Criterion) {
    use swgates::circuit::Circuit;
    c.bench_function("circuit/32-bit adder fanout advantage", |b| {
        let adder = Circuit::ripple_carry_adder(32);
        let me = MeCell::paper();
        b.iter(|| black_box(fanout_advantage(&adder, &me)))
    });
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_fig1,
    bench_fig2,
    bench_fig34,
    bench_fig5_setup,
    bench_circuit_comparison
);
criterion_main!(benches);
