//! Criterion benches for gate evaluation: the analytic backend (the
//! tool a circuit designer iterates with) and the micromagnetic
//! building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swgates::detect::{PhaseDetector, ThresholdDetector};
use swgates::encoding::{all_patterns, Bit};
use swgates::prelude::*;

fn bench_analytic_gates(c: &mut Criterion) {
    let backend = AnalyticBackend::paper();

    let maj = Maj3Gate::paper();
    c.bench_function("analytic/maj3 single evaluate", |b| {
        b.iter(|| maj.evaluate(&backend, black_box([Bit::One, Bit::Zero, Bit::One])))
    });
    c.bench_function("analytic/maj3 truth table (8 patterns)", |b| {
        b.iter(|| maj.truth_table(black_box(&backend)))
    });

    let xor = XorGate::paper();
    c.bench_function("analytic/xor truth table (4 patterns)", |b| {
        b.iter(|| xor.truth_table(black_box(&backend)))
    });

    let ladder = LadderMaj3Gate::paper();
    c.bench_function("analytic/ladder maj3 truth table", |b| {
        b.iter(|| ladder.truth_table(black_box(&backend)))
    });

    let nand = NandGate::paper().expect("valid layout");
    c.bench_function("analytic/nand truth table", |b| {
        b.iter(|| nand.truth_table(black_box(&backend)))
    });
}

fn bench_detectors(c: &mut Criterion) {
    let phase = PhaseDetector::new(0.0);
    c.bench_function("detect/phase decode", |b| {
        b.iter(|| {
            for i in 0..64 {
                let phi = (i as f64) * 0.097;
                let _ = black_box(phase.decode(black_box(phi)));
            }
        })
    });
    let threshold = ThresholdDetector::paper();
    c.bench_function("detect/threshold decode", |b| {
        b.iter(|| {
            for i in 0..64 {
                let a = (i as f64) / 64.0;
                let _ = black_box(threshold.decode(black_box(a)));
            }
        })
    });
}

fn bench_layouts(c: &mut Criterion) {
    c.bench_function("layout/maj3 validation", |b| {
        b.iter(|| {
            TriangleMaj3Layout::new(55e-9, 50e-9, 330e-9, 880e-9, 220e-9, 55e-9)
                .expect("paper layout is valid")
        })
    });
    c.bench_function("layout/all patterns enumeration", |b| {
        b.iter(|| black_box(all_patterns::<3>()))
    });
}

fn bench_mumag_building_blocks(c: &mut Criterion) {
    let backend = MumagBackend::fast();
    c.bench_function("mumag/discrete wavenumber solve", |b| {
        let f = backend.drive_frequency(55e-9);
        b.iter(|| {
            backend
                .discrete_wavenumber(black_box(f), 0.7)
                .expect("in band")
        })
    });
    c.bench_function("mumag/maj3 geometry build", |b| {
        let layout = TriangleMaj3Layout::paper();
        b.iter(|| backend.maj3_geometry(black_box(&layout)).expect("valid"))
    });

    // One short end-to-end LLG segment: the per-pattern cost driver.
    let mut group = c.benchmark_group("mumag/llg");
    group.sample_size(10);
    group.bench_function("mini xor 50 steps", |b| {
        use magnum::material::Material;
        use magnum::mesh::Mesh;
        use magnum::sim::Simulation;
        let mesh = Mesh::new(96, 24, [6.875e-9, 6.875e-9, 1e-9]).expect("mesh");
        b.iter(|| {
            let mut sim = Simulation::builder(mesh.clone(), Material::fecob())
                .build()
                .expect("build");
            for _ in 0..50 {
                sim.step().expect("step");
            }
            black_box(sim.time())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_analytic_gates,
    bench_detectors,
    bench_layouts,
    bench_mumag_building_blocks
);
criterion_main!(benches);
