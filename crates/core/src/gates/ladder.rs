//! The ladder-shaped fan-out-of-2 MAJ3 baseline gate of the prior art
//! (\[22\], \[23\]) — functionally equivalent to the triangle gate but with
//! an extra excitation transducer (the replicated input), which is
//! exactly the energy overhead Table III charges it for.

use crate::detect::PhaseDetector;
use crate::encoding::{all_patterns, Bit};
use crate::layout::LadderLayout;
use crate::truth::{TruthRow, TruthTable};
use crate::wavemodel::AnalyticBackend;
use crate::SwGateError;

use super::{wrap_phase, GateOutputs, OutputSignal};

/// The ladder MAJ3 baseline (analytic backend only — the prior art is
/// reproduced for comparison purposes, not re-validated
/// micromagnetically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderMaj3Gate {
    layout: LadderLayout,
    phase_margin: f64,
}

impl LadderMaj3Gate {
    /// The paper-comparable ladder MAJ3.
    pub fn paper() -> Self {
        LadderMaj3Gate::new(LadderLayout::paper_maj3())
    }

    /// A gate over a custom ladder layout.
    pub fn new(layout: LadderLayout) -> Self {
        LadderMaj3Gate {
            layout,
            phase_margin: std::f64::consts::PI / 16.0,
        }
    }

    /// The gate layout.
    pub fn layout(&self) -> &LadderLayout {
        &self.layout
    }

    /// Evaluates one input pattern on the analytic backend.
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn evaluate(
        &self,
        backend: &AnalyticBackend,
        inputs: [Bit; 3],
    ) -> Result<GateOutputs, SwGateError> {
        let reference = backend.ladder_outputs(&self.layout, &[Bit::Zero; 3])?;
        let raw = backend.ladder_outputs(&self.layout, &inputs)?;
        let decode = |out: magnum::Complex64,
                      reference: magnum::Complex64|
         -> Result<OutputSignal, SwGateError> {
            let ref_amp = reference.abs();
            if ref_amp == 0.0 {
                return Err(SwGateError::Undecodable {
                    output: "reference",
                    reason: "all-zeros reference amplitude is zero".into(),
                });
            }
            let phase = wrap_phase(out.arg() - reference.arg());
            let detector = PhaseDetector::new(0.0).with_margin(self.phase_margin);
            Ok(OutputSignal {
                raw: out,
                normalized: out.abs() / ref_amp,
                phase,
                bit: detector.decode(phase)?,
            })
        };
        Ok(GateOutputs {
            o1: decode(raw.0, reference.0)?,
            o2: decode(raw.1, reference.1)?,
        })
    }

    /// Evaluates all 8 patterns.
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn truth_table(&self, backend: &AnalyticBackend) -> Result<TruthTable<3>, SwGateError> {
        let mut rows = Vec::with_capacity(8);
        for pattern in all_patterns::<3>() {
            let outputs = self.evaluate(backend, pattern)?;
            rows.push(TruthRow {
                inputs: pattern,
                outputs,
            });
        }
        Ok(TruthTable::new(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_computes_majority_with_fanout() {
        let gate = LadderMaj3Gate::paper();
        let backend = AnalyticBackend::paper();
        let table = gate.truth_table(&backend).unwrap();
        table.verify(|p| Bit::majority(p[0], p[1], p[2])).unwrap();
        for row in table.rows() {
            assert!(row.outputs.fanout_consistent());
        }
    }

    #[test]
    fn ladder_and_triangle_agree_logically() {
        // The whole point of the paper: same function, cheaper gate.
        let backend = AnalyticBackend::paper();
        let ladder = LadderMaj3Gate::paper().truth_table(&backend).unwrap();
        let triangle = crate::gates::Maj3Gate::paper()
            .truth_table(&backend)
            .unwrap();
        for (l, t) in ladder.rows().iter().zip(triangle.rows().iter()) {
            assert_eq!(l.inputs, t.inputs);
            assert_eq!(l.outputs.o1.bit, t.outputs.o1.bit);
        }
    }
}
