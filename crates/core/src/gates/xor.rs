//! The triangle fan-out-of-2 2-input XOR gate (§III-B).

use crate::detect::ThresholdDetector;
use crate::encoding::{all_patterns, Bit};
use crate::layout::TriangleXorLayout;
use crate::truth::{TruthRow, TruthTable};
use crate::SwGateError;

use super::{wrap_phase, GateBackend, GateOutputs, OutputSignal};

/// The paper's triangle XOR gate: the MAJ3 structure without the third
/// input, read out by threshold detection (threshold 0.5 of the
/// normalized magnetization).
///
/// ```
/// use swgates::prelude::*;
///
/// # fn main() -> Result<(), SwGateError> {
/// let gate = XorGate::paper();
/// let backend = AnalyticBackend::paper();
/// let out = gate.evaluate(&backend, [Bit::One, Bit::Zero])?;
/// assert_eq!(out.o1.bit, Bit::One);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XorGate {
    layout: TriangleXorLayout,
    detector: ThresholdDetector,
}

impl XorGate {
    /// The gate with the paper's §IV-A layout and §IV-C detector.
    pub fn paper() -> Self {
        XorGate::new(TriangleXorLayout::paper())
    }

    /// A gate over a custom layout with the paper's detector settings.
    pub fn new(layout: TriangleXorLayout) -> Self {
        XorGate {
            layout,
            detector: ThresholdDetector::paper().with_margin(0.02),
        }
    }

    /// Overrides the threshold detector (e.g. for XNOR polarity — but
    /// prefer [`crate::gates::XnorGate`] for that).
    pub fn with_detector(mut self, detector: ThresholdDetector) -> Self {
        self.detector = detector;
        self
    }

    /// The gate layout.
    pub fn layout(&self) -> &TriangleXorLayout {
        &self.layout
    }

    /// The threshold detector in use.
    pub fn detector(&self) -> &ThresholdDetector {
        &self.detector
    }

    /// Evaluates one input pattern `(I1, I2)` (two backend calls; use
    /// [`XorGate::truth_table`] to amortize the reference).
    ///
    /// # Errors
    ///
    /// Propagates backend failures; [`SwGateError::Undecodable`] when an
    /// amplitude is too close to the threshold.
    pub fn evaluate<B: GateBackend>(
        &self,
        backend: &B,
        inputs: [Bit; 2],
    ) -> Result<GateOutputs, SwGateError> {
        let reference = backend.xor(&self.layout, [Bit::Zero; 2])?;
        self.decode_with_reference(backend, inputs, reference)
    }

    /// Evaluates all 4 input patterns into a truth table.
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn truth_table<B: GateBackend>(&self, backend: &B) -> Result<TruthTable<2>, SwGateError> {
        let reference = backend.xor(&self.layout, [Bit::Zero; 2])?;
        let mut rows = Vec::with_capacity(4);
        for pattern in all_patterns::<2>() {
            let outputs = self.decode_with_reference(backend, pattern, reference)?;
            rows.push(TruthRow {
                inputs: pattern,
                outputs,
            });
        }
        Ok(TruthTable::new(rows))
    }

    fn decode_with_reference<B: GateBackend>(
        &self,
        backend: &B,
        inputs: [Bit; 2],
        reference: (magnum::Complex64, magnum::Complex64),
    ) -> Result<GateOutputs, SwGateError> {
        let raw = if inputs == [Bit::Zero; 2] {
            reference
        } else {
            backend.xor(&self.layout, inputs)?
        };
        let decode = |out: magnum::Complex64,
                      reference: magnum::Complex64|
         -> Result<OutputSignal, SwGateError> {
            let ref_amp = reference.abs();
            if ref_amp == 0.0 {
                return Err(SwGateError::Undecodable {
                    output: "reference",
                    reason: "all-zeros reference amplitude is zero".into(),
                });
            }
            let normalized = out.abs() / ref_amp;
            Ok(OutputSignal {
                raw: out,
                normalized,
                phase: wrap_phase(out.arg() - reference.arg()),
                bit: self.detector.decode(normalized)?,
            })
        };
        Ok(GateOutputs {
            o1: decode(raw.0, reference.0)?,
            o2: decode(raw.1, reference.1)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::Polarity;
    use crate::wavemodel::AnalyticBackend;

    #[test]
    fn evaluates_xor_on_the_paper_backend() {
        let gate = XorGate::paper();
        let backend = AnalyticBackend::paper();
        for pattern in all_patterns::<2>() {
            let out = gate.evaluate(&backend, pattern).unwrap();
            assert_eq!(
                out.o1.bit,
                Bit::xor(pattern[0], pattern[1]),
                "pattern {pattern:?}"
            );
            assert!(out.fanout_consistent());
        }
    }

    #[test]
    fn truth_table_matches_table_ii_shape() {
        let gate = XorGate::paper();
        let backend = AnalyticBackend::paper();
        let table = gate.truth_table(&backend).unwrap();
        table.verify(|p| Bit::xor(p[0], p[1])).unwrap();
        for row in table.rows() {
            let norm = row.outputs.o1.normalized;
            if row.inputs[0] == row.inputs[1] {
                assert!(norm > 0.95, "{:?}: {norm}", row.inputs);
            } else {
                assert!(norm < 0.05, "{:?}: {norm}", row.inputs);
            }
        }
    }

    #[test]
    fn xnor_polarity_flips_decoding() {
        let gate = XorGate::paper()
            .with_detector(ThresholdDetector::new(0.5, Polarity::Xnor).with_margin(0.02));
        let backend = AnalyticBackend::paper();
        for pattern in all_patterns::<2>() {
            let out = gate.evaluate(&backend, pattern).unwrap();
            assert_eq!(out.o1.bit, !Bit::xor(pattern[0], pattern[1]));
        }
    }
}
