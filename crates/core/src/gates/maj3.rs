//! The triangle fan-out-of-2 3-input Majority gate (§III-A).

use crate::detect::PhaseDetector;
use crate::encoding::{all_patterns, Bit};
use crate::layout::TriangleMaj3Layout;
use crate::truth::{TruthRow, TruthTable};
use crate::SwGateError;

use super::{wrap_phase, GateBackend, GateOutputs, OutputSignal};

/// The paper's triangle MAJ3 gate: 3 phase-encoded inputs, 2 identical
/// phase-detected outputs.
///
/// ```
/// use swgates::prelude::*;
///
/// # fn main() -> Result<(), SwGateError> {
/// let gate = Maj3Gate::paper();
/// let backend = AnalyticBackend::paper();
/// let table = gate.truth_table(&backend)?;
/// assert!(table.verify(|p| Bit::majority(p[0], p[1], p[2])).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maj3Gate {
    layout: TriangleMaj3Layout,
    phase_margin: f64,
}

impl Maj3Gate {
    /// The gate with the paper's §IV-A layout.
    pub fn paper() -> Self {
        Maj3Gate::new(TriangleMaj3Layout::paper())
    }

    /// A gate over a custom (already validated) layout.
    pub fn new(layout: TriangleMaj3Layout) -> Self {
        Maj3Gate {
            layout,
            phase_margin: std::f64::consts::PI / 16.0,
        }
    }

    /// Overrides the phase-detector margin (radians in [0, π/2)).
    ///
    /// # Panics
    ///
    /// Panics if `margin` is outside [0, π/2).
    pub fn with_phase_margin(mut self, margin: f64) -> Self {
        assert!(
            (0.0..std::f64::consts::FRAC_PI_2).contains(&margin),
            "margin must be in [0, π/2), got {margin}"
        );
        self.phase_margin = margin;
        self
    }

    /// The gate layout.
    pub fn layout(&self) -> &TriangleMaj3Layout {
        &self.layout
    }

    /// Evaluates one input pattern `(I1, I2, I3)`.
    ///
    /// Runs the backend twice: once for the all-zeros reference (which
    /// fixes the logic-0 phase and the normalization amplitude) and once
    /// for the requested pattern. Use [`Maj3Gate::truth_table`] to
    /// amortize the reference over all patterns.
    ///
    /// # Errors
    ///
    /// Propagates backend failures; returns
    /// [`SwGateError::Undecodable`] when an output phase is ambiguous.
    pub fn evaluate<B: GateBackend>(
        &self,
        backend: &B,
        inputs: [Bit; 3],
    ) -> Result<GateOutputs, SwGateError> {
        let reference = backend.maj3(&self.layout, [Bit::Zero; 3])?;
        self.decode_with_reference(backend, inputs, reference)
    }

    /// Evaluates all 8 input patterns into a truth table (one reference
    /// evaluation shared across patterns — 8 backend calls total).
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn truth_table<B: GateBackend>(&self, backend: &B) -> Result<TruthTable<3>, SwGateError> {
        let reference = backend.maj3(&self.layout, [Bit::Zero; 3])?;
        let mut rows = Vec::with_capacity(8);
        for pattern in all_patterns::<3>() {
            let outputs = self.decode_with_reference(backend, pattern, reference)?;
            rows.push(TruthRow {
                inputs: pattern,
                outputs,
            });
        }
        Ok(TruthTable::new(rows))
    }

    fn decode_with_reference<B: GateBackend>(
        &self,
        backend: &B,
        inputs: [Bit; 3],
        reference: (magnum::Complex64, magnum::Complex64),
    ) -> Result<GateOutputs, SwGateError> {
        let raw = if inputs == [Bit::Zero; 3] {
            reference
        } else {
            backend.maj3(&self.layout, inputs)?
        };
        // The logic-0 phase at each output: the all-zeros case encodes
        // logic 0 on a non-inverting layout and logic 1 on an inverting
        // one (§III-A: d4 = (n+½)λ gives "logic inversion").
        let logic0_shift = if self.layout.inverting_output() {
            std::f64::consts::PI
        } else {
            0.0
        };
        let decode = |out: magnum::Complex64,
                      reference: magnum::Complex64|
         -> Result<OutputSignal, SwGateError> {
            let ref_amp = reference.abs();
            if ref_amp == 0.0 {
                return Err(SwGateError::Undecodable {
                    output: "reference",
                    reason: "all-zeros reference amplitude is zero".into(),
                });
            }
            let phase = wrap_phase(out.arg() - reference.arg());
            let detector = PhaseDetector::new(logic0_shift).with_margin(self.phase_margin);
            Ok(OutputSignal {
                raw: out,
                normalized: out.abs() / ref_amp,
                phase,
                bit: detector.decode(phase)?,
            })
        };
        Ok(GateOutputs {
            o1: decode(raw.0, reference.0)?,
            o2: decode(raw.1, reference.1)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavemodel::AnalyticBackend;

    #[test]
    fn evaluates_majority_on_the_paper_backend() {
        let gate = Maj3Gate::paper();
        let backend = AnalyticBackend::paper();
        for pattern in all_patterns::<3>() {
            let out = gate.evaluate(&backend, pattern).unwrap();
            let expected = Bit::majority(pattern[0], pattern[1], pattern[2]);
            assert_eq!(out.o1.bit, expected, "pattern {pattern:?}");
            assert!(out.fanout_consistent());
            assert!(out.amplitude_mismatch() < 1e-12);
        }
    }

    #[test]
    fn truth_table_matches_majority_and_normalizes_reference_to_one() {
        let gate = Maj3Gate::paper();
        let backend = AnalyticBackend::paper();
        let table = gate.truth_table(&backend).unwrap();
        assert_eq!(table.rows().len(), 8);
        table.verify(|p| Bit::majority(p[0], p[1], p[2])).unwrap();
        let reference_row = &table.rows()[0];
        assert!((reference_row.outputs.o1.normalized - 1.0).abs() < 1e-12);
        assert!(reference_row.outputs.o1.phase.abs() < 1e-9);
    }

    #[test]
    fn inverting_layout_computes_nmaj() {
        let layout =
            crate::layout::TriangleMaj3Layout::new(55e-9, 50e-9, 330e-9, 880e-9, 220e-9, 82.5e-9)
                .unwrap();
        let gate = Maj3Gate::new(layout);
        let backend = AnalyticBackend::paper();
        for pattern in all_patterns::<3>() {
            let out = gate.evaluate(&backend, pattern).unwrap();
            let expected = !Bit::majority(pattern[0], pattern[1], pattern[2]);
            assert_eq!(out.o1.bit, expected, "pattern {pattern:?}");
        }
    }

    #[test]
    fn unanimous_patterns_have_unit_amplitude() {
        let gate = Maj3Gate::paper();
        let backend = AnalyticBackend::paper();
        let table = gate.truth_table(&backend).unwrap();
        for row in table.rows() {
            let unanimous = row.inputs.iter().all(|&b| b == row.inputs[0]);
            if unanimous {
                assert!(
                    (row.outputs.o1.normalized - 1.0).abs() < 1e-9,
                    "unanimous {:?}: {}",
                    row.inputs,
                    row.outputs.o1.normalized
                );
            } else {
                assert!(row.outputs.o1.normalized < 0.6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "margin must be in")]
    fn phase_margin_is_validated() {
        let _ = Maj3Gate::paper().with_phase_margin(3.0);
    }
}
