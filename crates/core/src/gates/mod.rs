//! The gate types: triangle MAJ3 and XOR (the paper's contribution),
//! their derived (N)AND/(N)OR/XNOR variants, and the ladder baselines.

mod derived;
mod ladder;
mod maj3;
mod xor;

pub use derived::{AndGate, NandGate, NorGate, OrGate, XnorGate};
pub use ladder::LadderMaj3Gate;
pub use maj3::Maj3Gate;
pub use xor::XorGate;

use magnum::Complex64;

use crate::encoding::Bit;
use crate::layout::{TriangleMaj3Layout, TriangleXorLayout};
use crate::mumag::MumagBackend;
use crate::wavemodel::AnalyticBackend;
use crate::SwGateError;

/// A backend capable of producing the raw complex output amplitudes of
/// the triangle gates. Implemented by [`AnalyticBackend`] (microseconds)
/// and [`MumagBackend`] (full LLG simulation).
pub trait GateBackend {
    /// Raw `(O1, O2)` phasors of the triangle MAJ3 gate.
    ///
    /// # Errors
    ///
    /// Backend-specific failures as [`SwGateError`].
    fn maj3(
        &self,
        layout: &TriangleMaj3Layout,
        inputs: [Bit; 3],
    ) -> Result<(Complex64, Complex64), SwGateError>;

    /// Raw `(O1, O2)` phasors of the triangle XOR gate.
    ///
    /// # Errors
    ///
    /// Backend-specific failures as [`SwGateError`].
    fn xor(
        &self,
        layout: &TriangleXorLayout,
        inputs: [Bit; 2],
    ) -> Result<(Complex64, Complex64), SwGateError>;
}

impl GateBackend for AnalyticBackend {
    fn maj3(
        &self,
        layout: &TriangleMaj3Layout,
        inputs: [Bit; 3],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        Ok(self.maj3_outputs(layout, inputs))
    }

    fn xor(
        &self,
        layout: &TriangleXorLayout,
        inputs: [Bit; 2],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        Ok(self.xor_outputs(layout, inputs))
    }
}

impl GateBackend for MumagBackend {
    fn maj3(
        &self,
        layout: &TriangleMaj3Layout,
        inputs: [Bit; 3],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        self.maj3_outputs(layout, inputs)
    }

    fn xor(
        &self,
        layout: &TriangleXorLayout,
        inputs: [Bit; 2],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        self.xor_outputs(layout, inputs)
    }
}

/// One decoded gate output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputSignal {
    /// Raw complex amplitude as reported by the backend.
    pub raw: Complex64,
    /// Amplitude normalized to the all-zeros reference case (the
    /// quantity tabulated in the paper's Tables I and II).
    pub normalized: f64,
    /// Phase relative to the all-zeros reference, wrapped to (−π, π].
    pub phase: f64,
    /// The decoded logic value.
    pub bit: Bit,
}

/// The two decoded outputs of a fan-out-of-2 gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateOutputs {
    /// Output O1.
    pub o1: OutputSignal,
    /// Output O2.
    pub o2: OutputSignal,
}

impl GateOutputs {
    /// Both decoded bits as a pair.
    pub fn bits(&self) -> (Bit, Bit) {
        (self.o1.bit, self.o2.bit)
    }

    /// True if both outputs decode to the same value — the functional
    /// statement of "fan-out of 2 achieved".
    pub fn fanout_consistent(&self) -> bool {
        self.o1.bit == self.o2.bit
    }

    /// Largest relative difference between the two outputs' normalized
    /// amplitudes (0 for perfectly identical outputs).
    pub fn amplitude_mismatch(&self) -> f64 {
        let max = self.o1.normalized.max(self.o2.normalized);
        if max == 0.0 {
            return 0.0;
        }
        (self.o1.normalized - self.o2.normalized).abs() / max
    }
}

/// Wraps a phase to (−π, π].
pub(crate) fn wrap_phase(phi: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut p = phi % two_pi;
    if p > std::f64::consts::PI {
        p -= two_pi;
    } else if p <= -std::f64::consts::PI {
        p += two_pi;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_outputs_consistency_helpers() {
        let sig = |bit, normalized| OutputSignal {
            raw: Complex64::ONE,
            normalized,
            phase: 0.0,
            bit,
        };
        let same = GateOutputs {
            o1: sig(Bit::One, 1.0),
            o2: sig(Bit::One, 0.9),
        };
        assert!(same.fanout_consistent());
        assert!((same.amplitude_mismatch() - 0.1).abs() < 1e-12);
        let diff = GateOutputs {
            o1: sig(Bit::One, 1.0),
            o2: sig(Bit::Zero, 1.0),
        };
        assert!(!diff.fanout_consistent());
        assert_eq!(diff.bits(), (Bit::One, Bit::Zero));
    }

    #[test]
    fn zero_amplitudes_have_zero_mismatch() {
        let sig = OutputSignal {
            raw: Complex64::ZERO,
            normalized: 0.0,
            phase: 0.0,
            bit: Bit::Zero,
        };
        let out = GateOutputs { o1: sig, o2: sig };
        assert_eq!(out.amplitude_mismatch(), 0.0);
    }

    #[test]
    fn wrap_phase_range() {
        use std::f64::consts::PI;
        for &p in &[0.0, 1.0, -1.0, 3.5, -3.5, 7.0, 100.0] {
            let w = wrap_phase(p);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }
    }
}
