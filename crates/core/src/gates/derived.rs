//! Derived gates: (N)AND, (N)OR from the MAJ3 with a control input, and
//! XNOR from the XOR with flipped detection.
//!
//! §III-A: "the proposed structure can be utilized to implement (N)AND
//! and (N)OR gates of I1 and I2 if I3 is fixed to logic 0 for (N)AND
//! gate and logic 1 for the (N)OR gate realization", with the inverting
//! variants obtained by the `(n+½)λ` output-stub rule.

use crate::detect::{Polarity, ThresholdDetector};
use crate::encoding::{all_patterns, Bit};
use crate::layout::{TriangleMaj3Layout, TriangleXorLayout};
use crate::truth::{TruthRow, TruthTable};
use crate::SwGateError;

use super::{GateBackend, GateOutputs, Maj3Gate, XorGate};

/// Builds the inverting variant of a MAJ3 layout by stretching the
/// output stub to `d4 + λ/2`.
fn inverting_layout(base: &TriangleMaj3Layout) -> Result<TriangleMaj3Layout, SwGateError> {
    TriangleMaj3Layout::new(
        base.wavelength(),
        base.width(),
        base.d1(),
        base.d2(),
        base.d3(),
        base.d4() + base.wavelength() / 2.0,
    )
}

macro_rules! control_gate {
    (
        $(#[$doc:meta])*
        $name:ident, control = $control:expr, invert = $invert:expr, logic = $logic:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name {
            inner: Maj3Gate,
        }

        impl $name {
            /// The gate derived from the paper's MAJ3 layout.
            ///
            /// # Errors
            ///
            /// Propagates layout validation failures (only possible for
            /// inverting variants with pathological base layouts).
            pub fn paper() -> Result<Self, SwGateError> {
                Self::from_layout(TriangleMaj3Layout::paper())
            }

            /// Derives the gate from a custom MAJ3 layout.
            ///
            /// # Errors
            ///
            /// Propagates layout validation failures.
            pub fn from_layout(base: TriangleMaj3Layout) -> Result<Self, SwGateError> {
                let layout = if $invert { inverting_layout(&base)? } else { base };
                Ok($name {
                    inner: Maj3Gate::new(layout),
                })
            }

            /// The underlying MAJ3 gate (with the control wiring applied
            /// at evaluation time).
            pub fn inner(&self) -> &Maj3Gate {
                &self.inner
            }

            /// The ideal two-input logic function of this gate.
            pub fn logic(a: Bit, b: Bit) -> Bit {
                ($logic)(a, b)
            }

            /// Evaluates the gate on data inputs `(I1, I2)`; the control
            /// input I3 is fixed internally.
            ///
            /// # Errors
            ///
            /// Propagates backend and decode failures.
            pub fn evaluate<B: GateBackend>(
                &self,
                backend: &B,
                inputs: [Bit; 2],
            ) -> Result<GateOutputs, SwGateError> {
                self.inner
                    .evaluate(backend, [inputs[0], inputs[1], $control])
            }

            /// Evaluates all 4 input patterns.
            ///
            /// # Errors
            ///
            /// Propagates backend and decode failures.
            pub fn truth_table<B: GateBackend>(
                &self,
                backend: &B,
            ) -> Result<TruthTable<2>, SwGateError> {
                let mut rows = Vec::with_capacity(4);
                for pattern in all_patterns::<2>() {
                    let outputs = self.evaluate(backend, pattern)?;
                    rows.push(TruthRow { inputs: pattern, outputs });
                }
                Ok(TruthTable::new(rows))
            }
        }
    };
}

control_gate!(
    /// 2-input AND: MAJ3 with I3 pinned to logic 0.
    AndGate,
    control = Bit::Zero,
    invert = false,
    logic = |a: Bit, b: Bit| Bit::from_bool(a.as_bool() && b.as_bool())
);

control_gate!(
    /// 2-input OR: MAJ3 with I3 pinned to logic 1.
    OrGate,
    control = Bit::One,
    invert = false,
    logic = |a: Bit, b: Bit| Bit::from_bool(a.as_bool() || b.as_bool())
);

control_gate!(
    /// 2-input NAND: AND with the inverting (d4 + λ/2) output stub.
    NandGate,
    control = Bit::Zero,
    invert = true,
    logic = |a: Bit, b: Bit| !Bit::from_bool(a.as_bool() && b.as_bool())
);

control_gate!(
    /// 2-input NOR: OR with the inverting (d4 + λ/2) output stub.
    NorGate,
    control = Bit::One,
    invert = true,
    logic = |a: Bit, b: Bit| !Bit::from_bool(a.as_bool() || b.as_bool())
);

/// 2-input XNOR: the XOR gate with the flipped threshold condition
/// (§III-B: "if the XNOR is desired, the condition can be flipped").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XnorGate {
    inner: XorGate,
}

impl XnorGate {
    /// The gate with the paper's XOR layout and XNOR detection polarity.
    pub fn paper() -> Self {
        XnorGate::from_layout(TriangleXorLayout::paper())
    }

    /// Derives the gate from a custom XOR layout.
    pub fn from_layout(layout: TriangleXorLayout) -> Self {
        XnorGate {
            inner: XorGate::new(layout)
                .with_detector(ThresholdDetector::new(0.5, Polarity::Xnor).with_margin(0.02)),
        }
    }

    /// The underlying XOR gate (with XNOR detection).
    pub fn inner(&self) -> &XorGate {
        &self.inner
    }

    /// Evaluates one input pattern.
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn evaluate<B: GateBackend>(
        &self,
        backend: &B,
        inputs: [Bit; 2],
    ) -> Result<GateOutputs, SwGateError> {
        self.inner.evaluate(backend, inputs)
    }

    /// Evaluates all 4 input patterns.
    ///
    /// # Errors
    ///
    /// Propagates backend and decode failures.
    pub fn truth_table<B: GateBackend>(&self, backend: &B) -> Result<TruthTable<2>, SwGateError> {
        self.inner.truth_table(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavemodel::AnalyticBackend;

    fn check_two_input<F: Fn(Bit, Bit) -> Bit>(
        evaluate: impl Fn([Bit; 2]) -> GateOutputs,
        expected: F,
        name: &str,
    ) {
        for pattern in all_patterns::<2>() {
            let out = evaluate(pattern);
            assert_eq!(
                out.o1.bit,
                expected(pattern[0], pattern[1]),
                "{name} failed on {pattern:?}"
            );
            assert!(
                out.fanout_consistent(),
                "{name} fan-out broken on {pattern:?}"
            );
        }
    }

    #[test]
    fn and_gate_truth_table() {
        let backend = AnalyticBackend::paper();
        let gate = AndGate::paper().unwrap();
        check_two_input(
            |p| gate.evaluate(&backend, p).unwrap(),
            AndGate::logic,
            "AND",
        );
    }

    #[test]
    fn or_gate_truth_table() {
        let backend = AnalyticBackend::paper();
        let gate = OrGate::paper().unwrap();
        check_two_input(|p| gate.evaluate(&backend, p).unwrap(), OrGate::logic, "OR");
    }

    #[test]
    fn nand_gate_truth_table() {
        let backend = AnalyticBackend::paper();
        let gate = NandGate::paper().unwrap();
        check_two_input(
            |p| gate.evaluate(&backend, p).unwrap(),
            NandGate::logic,
            "NAND",
        );
    }

    #[test]
    fn nor_gate_truth_table() {
        let backend = AnalyticBackend::paper();
        let gate = NorGate::paper().unwrap();
        check_two_input(
            |p| gate.evaluate(&backend, p).unwrap(),
            NorGate::logic,
            "NOR",
        );
    }

    #[test]
    fn xnor_gate_truth_table() {
        let backend = AnalyticBackend::paper();
        let gate = XnorGate::paper();
        check_two_input(
            |p| gate.evaluate(&backend, p).unwrap(),
            |a, b| !Bit::xor(a, b),
            "XNOR",
        );
    }

    #[test]
    fn nand_layout_is_inverting() {
        let gate = NandGate::paper().unwrap();
        assert!(gate.inner().layout().inverting_output());
        let gate = AndGate::paper().unwrap();
        assert!(!gate.inner().layout().inverting_output());
    }

    #[test]
    fn logic_helpers_are_correct() {
        use Bit::{One as I, Zero as O};
        assert_eq!(AndGate::logic(I, I), I);
        assert_eq!(AndGate::logic(I, O), O);
        assert_eq!(OrGate::logic(O, O), O);
        assert_eq!(OrGate::logic(I, O), I);
        assert_eq!(NandGate::logic(I, I), O);
        assert_eq!(NorGate::logic(O, O), I);
    }
}
