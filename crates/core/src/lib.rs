//! # swgates — fan-out-of-2 triangle-shape spin wave logic gates
//!
//! The core library of this reproduction: the triangle-shaped 3-input /
//! 2-output **Majority** gate and 2-input / 2-output **XOR** gate of
//! *"Fan-out of 2 Triangle Shape Spin Wave Logic Gates"* (Mahmoud et al.,
//! DATE 2021), together with the ladder-shaped baseline gates of the
//! prior art it compares against (\[22\], \[23\]).
//!
//! ## Architecture
//!
//! * [`encoding`] — logic values as spin-wave phases (0 ⇒ φ=0, 1 ⇒ φ=π).
//! * [`layout`] — parametric gate geometries obeying the paper's `n·λ`
//!   dimension rules (§III-A).
//! * [`op`] — the operating point (λ, f, k, decay length) derived from
//!   the film's dispersion exactly as in §IV-A.
//! * [`wavemodel`] — fast analytic complex-amplitude interference model.
//! * [`mumag`] — the full micromagnetic validation path (drives the
//!   [`magnum`] LLG solver on the rasterized gate geometry).
//! * [`detect`] — phase detection (Majority) and threshold detection
//!   (XOR/XNOR), §III-A/B.
//! * [`gates`] — the gate types: [`gates::Maj3Gate`], [`gates::XorGate`],
//!   the ladder baselines, and the derived (N)AND/(N)OR gates.
//! * [`truth`] — truth-table evaluation and fan-out equivalence checks.
//! * [`circuit`] — gate-level netlists exercising the fan-out (full
//!   adder, majority trees).
//!
//! ## Quickstart
//!
//! ```
//! use swgates::prelude::*;
//!
//! # fn main() -> Result<(), swgates::SwGateError> {
//! let gate = Maj3Gate::paper();
//! let backend = AnalyticBackend::paper();
//! let out = gate.evaluate(&backend, [Bit::One, Bit::Zero, Bit::One])?;
//! assert_eq!(out.o1.bit, Bit::One); // majority(1, 0, 1) = 1
//! assert_eq!(out.o2.bit, Bit::One); // fan-out of 2: same value
//! # Ok(())
//! # }
//! ```

pub mod circuit;
pub mod detect;
pub mod encoding;
pub mod gates;
pub mod layout;
pub mod mumag;
pub mod op;
pub mod truth;
pub mod wavemodel;

mod error;

pub use error::SwGateError;

/// Commonly used items, re-exported for ergonomic glob imports.
pub mod prelude {
    pub use crate::detect::{PhaseDetector, Polarity, ThresholdDetector};
    pub use crate::encoding::Bit;
    pub use crate::gates::{
        AndGate, GateBackend, GateOutputs, LadderMaj3Gate, Maj3Gate, NandGate, NorGate, OrGate,
        OutputSignal, XnorGate, XorGate,
    };
    pub use crate::layout::{LadderLayout, TriangleMaj3Layout, TriangleXorLayout};
    pub use crate::mumag::MumagBackend;
    pub use crate::op::OperatingPoint;
    pub use crate::truth::TruthTable;
    pub use crate::wavemodel::AnalyticBackend;
    pub use crate::SwGateError;
}
