//! Parametric gate geometries and the paper's dimension rules.
//!
//! §III-A: "dimensions d1, d2 and d3 must be nλ" for the interference to
//! be constructive for in-phase waves (and `(n+½)λ` for the opposite
//! behaviour); d4 is `nλ` for a non-inverted output and `(n+½)λ` for an
//! inverted one. §IV-A fixes the paper's instance: λ = 55 nm, 50 nm wide
//! and 1 nm thick waveguides, d1 = 330 nm, d2 = 880 nm, d3 = 220 nm,
//! d4 = 55 nm for the MAJ3 gate and d1 = 330 nm, d2 = 40 nm for the XOR.
//!
//! ## Topology (reconstructed from Fig. 3/Fig. 5)
//!
//! The figures cannot be measured from the text alone, so this
//! reproduction fixes a concrete interference network that (a) realizes
//! the paper's two-stage description — "the excited SWs at I1 and I2
//! propagate ... where they interfere ... the resulting SWs propagate to
//! interfere at both interfering points with the SW excited at I3" —
//! (b) uses the published dimensions with every input path an integer
//! number of wavelengths, and (c) is built entirely from
//! mirror-symmetric Y-junctions, the configuration in which two
//! in-phase waves couple into the fundamental mode of the output guide
//! while anti-phase waves form the odd (cut-off) profile and scatter.
//! A junction must *combine before it splits*: a 4-way X would let each
//! wave continue ballistically into the arm collinear with its momentum
//! and destroy the interference contrast (we verified this
//! micromagnetically).
//!
//! ```text
//!  I1 ──d2──╲d1           ╱d1──C2L──[d4 stub]── O1
//!            ╲           ╱      ╲
//!             J ──d3──▶ S        ╲d1
//!            ╱           ╲        ╲
//!  I2 ──d1──╱             ╲d1──────S3 ◀──d2── I3
//!                          ╲      ╱
//!                           C2R──╱ (mirror of C2L; [d4 stub] → O2)
//! ```
//!
//! * `J` — symmetric combiner of I1 (d2 feed + d1 diagonal) and I2 (d1
//!   diagonal): the first interference point.
//! * `J → S` — the d3 trunk carrying the stage-1 result.
//! * `S` — symmetric splitter: two d1 arms fan the result out (this is
//!   what makes the gate FO2 "because of the structure symmetry").
//! * `S3` — I3's splitter: after its d2 feed, two d1 arms deliver
//!   identical copies of I3 to both second crossings.
//! * `C2L`, `C2R` — the two second interference points; d4 stubs feed
//!   the phase detectors.
//!
//! Total paths with the paper's §IV-A dimensions: I1 = d2+d1+d3+d1+d4 =
//! 33λ, I2 = d1+d3+d1+d4 = 17λ, I3 = d2+d1+d4 = 23λ — all integer
//! multiples, so same-phase inputs interfere constructively at both
//! outputs exactly as §III-A's design rule requires. The XOR (Fig. 4)
//! is the same construction with I3, S3 and the second crossings
//! removed: I1 and I2 (d1 diagonals) interfere at J, a short trunk and
//! two d1 arms fan the result out, and the d2 = 40 nm stubs feed the
//! threshold detectors ("the output must be detected as close as
//! possible from the last interference point").

use crate::SwGateError;

/// Relative tolerance used when checking the `n·λ` dimension rules.
const DIM_RULE_TOL: f64 = 1e-6;

/// Classification of a gate dimension against the λ rules of §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimensionRule {
    /// `d = n·λ` — constructive for in-phase waves / non-inverting.
    IntegerMultiple(u32),
    /// `d = (n+½)·λ` — destructive for in-phase waves / inverting.
    HalfIntegerMultiple(u32),
    /// Neither rule (allowed only for the XOR output stub, where only
    /// amplitude matters).
    Unconstrained,
}

impl DimensionRule {
    /// Classifies `d` against wavelength `lambda`.
    pub fn classify(d: f64, lambda: f64) -> DimensionRule {
        let q = d / lambda;
        let nearest_int = q.round();
        if (q - nearest_int).abs() < DIM_RULE_TOL.max(1e-9 * q.abs()) && nearest_int >= 0.0 {
            return DimensionRule::IntegerMultiple(nearest_int as u32);
        }
        let half = q - 0.5;
        let nearest_half = half.round();
        if (half - nearest_half).abs() < DIM_RULE_TOL.max(1e-9 * q.abs()) && nearest_half >= 0.0 {
            return DimensionRule::HalfIntegerMultiple(nearest_half as u32);
        }
        DimensionRule::Unconstrained
    }

    /// True for `n·λ`.
    pub fn is_integer(self) -> bool {
        matches!(self, DimensionRule::IntegerMultiple(_))
    }

    /// True for `(n+½)·λ`.
    pub fn is_half_integer(self) -> bool {
        matches!(self, DimensionRule::HalfIntegerMultiple(_))
    }
}

/// Geometry of the triangle fan-out-of-2 MAJ3 gate (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleMaj3Layout {
    wavelength: f64,
    width: f64,
    d1: f64,
    d2: f64,
    d3: f64,
    d4: f64,
}

impl TriangleMaj3Layout {
    /// The paper's §IV-A instance: λ = 55 nm, w = 50 nm, d1 = 330 nm,
    /// d2 = 880 nm, d3 = 220 nm, d4 = 55 nm.
    pub fn paper() -> Self {
        TriangleMaj3Layout {
            wavelength: 55e-9,
            width: 50e-9,
            d1: 330e-9,
            d2: 880e-9,
            d3: 220e-9,
            d4: 55e-9,
        }
    }

    /// Builds a layout from explicit dimensions, validating the §III-A
    /// design rules.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidLayout`] if the width exceeds λ, any
    /// dimension is non-positive, or d1/d2/d3 are not integer multiples
    /// of λ while d4 is neither `n·λ` nor `(n+½)·λ`.
    pub fn new(
        wavelength: f64,
        width: f64,
        d1: f64,
        d2: f64,
        d3: f64,
        d4: f64,
    ) -> Result<Self, SwGateError> {
        validate_common(wavelength, width)?;
        for (name, d) in [("d1", d1), ("d2", d2), ("d3", d3), ("d4", d4)] {
            if !(d.is_finite() && d > 0.0) {
                return Err(SwGateError::InvalidLayout {
                    reason: format!("{name} must be positive, got {d}"),
                });
            }
        }
        for (name, d) in [("d1", d1), ("d2", d2), ("d3", d3)] {
            if !DimensionRule::classify(d, wavelength).is_integer() {
                return Err(SwGateError::InvalidLayout {
                    reason: format!(
                        "{name} = {d:e} must be an integer multiple of λ = {wavelength:e} (§III-A)"
                    ),
                });
            }
        }
        if matches!(
            DimensionRule::classify(d4, wavelength),
            DimensionRule::Unconstrained
        ) {
            return Err(SwGateError::InvalidLayout {
                reason: format!("d4 = {d4:e} must be n·λ (non-inverting) or (n+½)·λ (inverting)"),
            });
        }
        Ok(TriangleMaj3Layout {
            wavelength,
            width,
            d1,
            d2,
            d3,
            d4,
        })
    }

    /// Builds a layout from integer λ-multiples (`d_i = n_i · λ`),
    /// guaranteeing rule compliance by construction. Useful for scaled-
    /// down micromagnetic test gates.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidLayout`] if any multiple is zero or
    /// the width exceeds λ.
    pub fn from_multiples(
        wavelength: f64,
        width: f64,
        n1: u32,
        n2: u32,
        n3: u32,
        n4: u32,
    ) -> Result<Self, SwGateError> {
        if n1 == 0 || n2 == 0 || n3 == 0 || n4 == 0 {
            return Err(SwGateError::InvalidLayout {
                reason: "dimension multiples must be at least 1".into(),
            });
        }
        TriangleMaj3Layout::new(
            wavelength,
            width,
            n1 as f64 * wavelength,
            n2 as f64 * wavelength,
            n3 as f64 * wavelength,
            n4 as f64 * wavelength,
        )
    }

    /// Spin-wave wavelength λ in metres.
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    /// Waveguide width in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Input diagonal length d1 (m).
    pub fn d1(&self) -> f64 {
        self.d1
    }

    /// Horizontal feed length d2 (m).
    pub fn d2(&self) -> f64 {
        self.d2
    }

    /// First-crossing-to-second-crossing arm length d3 (m).
    pub fn d3(&self) -> f64 {
        self.d3
    }

    /// Output stub length d4 (m).
    pub fn d4(&self) -> f64 {
        self.d4
    }

    /// Whether the outputs are logically inverted (d4 = (n+½)·λ).
    pub fn inverting_output(&self) -> bool {
        DimensionRule::classify(self.d4, self.wavelength).is_half_integer()
    }

    /// Total waveguide path from I1 to either output:
    /// `d2 + d1 + d3 + d1 + d4` (feed, diagonal, trunk, fan-out arm,
    /// stub) — 33λ for the paper's dimensions.
    pub fn path_i1(&self) -> f64 {
        self.d2 + self.d1 + self.d3 + self.d1 + self.d4
    }

    /// Total waveguide path from I2 to either output:
    /// `d1 + d3 + d1 + d4` — 17λ for the paper's dimensions.
    pub fn path_i2(&self) -> f64 {
        self.d1 + self.d3 + self.d1 + self.d4
    }

    /// Total waveguide path from I3 to either output: `d2 + d1 + d4` —
    /// 23λ for the paper's dimensions.
    pub fn path_i3(&self) -> f64 {
        self.d2 + self.d1 + self.d4
    }

    /// Distance from each input to its **first** interference point:
    /// (I1 → J, I2 → J, I3 → C2).
    pub fn paths_to_first_junction(&self) -> [f64; 3] {
        [self.d2 + self.d1, self.d1, self.d2 + self.d1]
    }
}

/// Geometry of the triangle fan-out-of-2 XOR gate (Fig. 4): the MAJ3
/// structure with the third input removed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleXorLayout {
    wavelength: f64,
    width: f64,
    d1: f64,
    d2: f64,
}

impl TriangleXorLayout {
    /// The paper's §IV-A instance: λ = 55 nm, w = 50 nm, d1 = 330 nm,
    /// d2 = 40 nm.
    pub fn paper() -> Self {
        TriangleXorLayout {
            wavelength: 55e-9,
            width: 50e-9,
            d1: 330e-9,
            d2: 40e-9,
        }
    }

    /// Builds an XOR layout: d1 must be an integer multiple of λ; d2 (the
    /// output stub) is unconstrained but "as small as possible" (§III-B)
    /// — a warning-level rule we enforce softly as d2 < 2λ.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidLayout`] on violations.
    pub fn new(wavelength: f64, width: f64, d1: f64, d2: f64) -> Result<Self, SwGateError> {
        validate_common(wavelength, width)?;
        if !(d1.is_finite() && d1 > 0.0 && d2.is_finite() && d2 > 0.0) {
            return Err(SwGateError::InvalidLayout {
                reason: format!("dimensions must be positive, got d1 = {d1}, d2 = {d2}"),
            });
        }
        if !DimensionRule::classify(d1, wavelength).is_integer() {
            return Err(SwGateError::InvalidLayout {
                reason: format!("d1 = {d1:e} must be an integer multiple of λ = {wavelength:e}"),
            });
        }
        if d2 >= 2.0 * wavelength {
            return Err(SwGateError::InvalidLayout {
                reason: format!(
                    "d2 = {d2:e} defeats threshold detection; §III-B requires it as small \
                     as possible (< 2λ here)"
                ),
            });
        }
        Ok(TriangleXorLayout {
            wavelength,
            width,
            d1,
            d2,
        })
    }

    /// Spin-wave wavelength λ in metres.
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    /// Waveguide width in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Diagonal arm length d1 (m) — used for both input feeds and both
    /// fan-out arms.
    pub fn d1(&self) -> f64 {
        self.d1
    }

    /// Output stub length d2 (m).
    pub fn d2(&self) -> f64 {
        self.d2
    }

    /// Length of the short trunk between the combiner J and the fan-out
    /// splitter S. The paper gives no explicit value; four wavelengths
    /// gives the residual antisymmetric junction field room to decay
    /// before the split while preserving the `n·λ` phase rule.
    pub fn trunk(&self) -> f64 {
        4.0 * self.wavelength
    }

    /// Total path from either input to either output:
    /// `d1 + trunk + d1 + d2`.
    pub fn path_length(&self) -> f64 {
        2.0 * self.d1 + self.trunk() + self.d2
    }
}

/// Geometry of the ladder-shaped 2-output gate of the prior art
/// (\[22\], \[23\]) used as the energy baseline in Table III.
///
/// The ladder achieves fan-out by **replicating one input**: I1 is
/// excited twice (an extra transducer), each copy feeding one output
/// rail; I2 and I3 sit on the rungs. Total transducers: 4 excitation +
/// 2 detection = 6, versus the triangle's 3 + 2 = 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderLayout {
    wavelength: f64,
    width: f64,
    /// Rail segment length between rungs (n·λ).
    rail: f64,
    /// Rung length (n·λ).
    rung: f64,
    /// Whether the gate carries 3 logic inputs (MAJ) or 2 (XOR).
    inputs: usize,
}

impl LadderLayout {
    /// A paper-comparable MAJ3 ladder: λ = 55 nm, w = 50 nm, rails and
    /// rungs of 6λ and 4λ.
    pub fn paper_maj3() -> Self {
        LadderLayout {
            wavelength: 55e-9,
            width: 50e-9,
            rail: 6.0 * 55e-9,
            rung: 4.0 * 55e-9,
            inputs: 3,
        }
    }

    /// A paper-comparable XOR ladder (2 logic inputs, one replicated).
    pub fn paper_xor() -> Self {
        LadderLayout {
            inputs: 2,
            ..LadderLayout::paper_maj3()
        }
    }

    /// Builds a ladder with explicit rail/rung lengths.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidLayout`] unless rails and rungs are
    /// integer multiples of λ, width ≤ λ and `inputs` is 2 or 3.
    pub fn new(
        wavelength: f64,
        width: f64,
        rail: f64,
        rung: f64,
        inputs: usize,
    ) -> Result<Self, SwGateError> {
        validate_common(wavelength, width)?;
        if !(2..=3).contains(&inputs) {
            return Err(SwGateError::InvalidLayout {
                reason: format!("ladder gates carry 2 or 3 logic inputs, got {inputs}"),
            });
        }
        for (name, d) in [("rail", rail), ("rung", rung)] {
            if !DimensionRule::classify(d, wavelength).is_integer() {
                return Err(SwGateError::InvalidLayout {
                    reason: format!("{name} = {d:e} must be an integer multiple of λ"),
                });
            }
        }
        Ok(LadderLayout {
            wavelength,
            width,
            rail,
            rung,
            inputs,
        })
    }

    /// Spin-wave wavelength λ in metres.
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    /// Waveguide width in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Rail segment length (m).
    pub fn rail(&self) -> f64 {
        self.rail
    }

    /// Rung length (m).
    pub fn rung(&self) -> f64 {
        self.rung
    }

    /// Number of *logic* inputs (2 or 3).
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of excitation transducers.
    ///
    /// Table III of the paper credits the ladder gates of \[23\] with 6
    /// cells and 13.7 aJ for *both* MAJ and XOR — i.e. 4 excitation cells
    /// (4 × 3.44 aJ) plus 2 detection cells. For the MAJ that is the 3
    /// logic inputs plus the replicated input that enables the fan-out;
    /// the \[23\] XOR is the same programmable structure with a fixed
    /// control input, so it also drives 4 transducers.
    pub fn excitation_cells(&self) -> usize {
        4
    }

    /// Number of detection transducers (always 2: fan-out of 2).
    pub fn detection_cells(&self) -> usize {
        2
    }
}

fn validate_common(wavelength: f64, width: f64) -> Result<(), SwGateError> {
    if !(wavelength.is_finite() && wavelength > 0.0) {
        return Err(SwGateError::InvalidLayout {
            reason: format!("wavelength must be positive, got {wavelength}"),
        });
    }
    if !(width.is_finite() && width > 0.0) {
        return Err(SwGateError::InvalidLayout {
            reason: format!("width must be positive, got {width}"),
        });
    }
    if width > wavelength {
        return Err(SwGateError::InvalidLayout {
            reason: format!(
                "waveguide width {width:e} must not exceed λ = {wavelength:e} for clear \
                 interference patterns (§III-A)"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_rule_classification() {
        let l = 55e-9;
        assert_eq!(
            DimensionRule::classify(330e-9, l),
            DimensionRule::IntegerMultiple(6)
        );
        assert_eq!(
            DimensionRule::classify(880e-9, l),
            DimensionRule::IntegerMultiple(16)
        );
        assert_eq!(
            DimensionRule::classify(220e-9, l),
            DimensionRule::IntegerMultiple(4)
        );
        assert_eq!(
            DimensionRule::classify(55e-9, l),
            DimensionRule::IntegerMultiple(1)
        );
        assert_eq!(
            DimensionRule::classify(82.5e-9, l),
            DimensionRule::HalfIntegerMultiple(1)
        );
        assert_eq!(
            DimensionRule::classify(40e-9, l),
            DimensionRule::Unconstrained
        );
    }

    #[test]
    fn paper_maj3_layout_is_valid_and_matches_section_iv_a() {
        let layout = TriangleMaj3Layout::paper();
        assert_eq!(layout.wavelength(), 55e-9);
        assert_eq!(layout.width(), 50e-9);
        assert_eq!(layout.d1(), 330e-9);
        assert_eq!(layout.d2(), 880e-9);
        assert_eq!(layout.d3(), 220e-9);
        assert_eq!(layout.d4(), 55e-9);
        // Round-trip through the validating constructor.
        TriangleMaj3Layout::new(55e-9, 50e-9, 330e-9, 880e-9, 220e-9, 55e-9).unwrap();
    }

    #[test]
    fn paper_paths_are_integer_wavelength_multiples() {
        let layout = TriangleMaj3Layout::paper();
        let l = layout.wavelength();
        for (path, expected_n) in [
            (layout.path_i1(), 33.0),
            (layout.path_i2(), 17.0),
            (layout.path_i3(), 23.0),
        ] {
            let n = path / l;
            assert!(
                (n - expected_n).abs() < 1e-9,
                "path {path:e} is {n}λ, expected {expected_n}λ"
            );
        }
    }

    #[test]
    fn paper_maj3_is_non_inverting() {
        assert!(!TriangleMaj3Layout::paper().inverting_output());
    }

    #[test]
    fn half_integer_d4_is_inverting() {
        let layout =
            TriangleMaj3Layout::new(55e-9, 50e-9, 330e-9, 880e-9, 220e-9, 82.5e-9).unwrap();
        assert!(layout.inverting_output());
    }

    #[test]
    fn rejects_rule_breaking_dimensions() {
        // d1 not a multiple of λ.
        assert!(TriangleMaj3Layout::new(55e-9, 50e-9, 300e-9, 880e-9, 220e-9, 55e-9).is_err());
        // d4 neither integer nor half-integer.
        assert!(TriangleMaj3Layout::new(55e-9, 50e-9, 330e-9, 880e-9, 220e-9, 40e-9).is_err());
        // Width wider than λ.
        assert!(TriangleMaj3Layout::new(55e-9, 60e-9, 330e-9, 880e-9, 220e-9, 55e-9).is_err());
        // Negative dimension.
        assert!(TriangleMaj3Layout::new(55e-9, 50e-9, -330e-9, 880e-9, 220e-9, 55e-9).is_err());
    }

    #[test]
    fn from_multiples_builds_scaled_gates() {
        let small = TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 2, 1).unwrap();
        assert_eq!(small.d1(), 110e-9);
        assert_eq!(small.d2(), 165e-9);
        assert!(!small.inverting_output());
        assert!(TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 0, 3, 2, 1).is_err());
    }

    #[test]
    fn paper_xor_layout() {
        let layout = TriangleXorLayout::paper();
        assert_eq!(layout.d1(), 330e-9);
        assert_eq!(layout.d2(), 40e-9);
        assert_eq!(layout.trunk(), 220e-9);
        assert!((layout.path_length() - 920e-9).abs() < 1e-15);
        TriangleXorLayout::new(55e-9, 50e-9, 330e-9, 40e-9).unwrap();
    }

    #[test]
    fn xor_rejects_long_stub_and_bad_d1() {
        assert!(TriangleXorLayout::new(55e-9, 50e-9, 330e-9, 150e-9).is_err());
        assert!(TriangleXorLayout::new(55e-9, 50e-9, 300e-9, 40e-9).is_err());
    }

    #[test]
    fn ladder_transducer_counts_match_the_prior_art() {
        // [23]: 6 cells for MAJ (4 excitation + 2 detection).
        let maj = LadderLayout::paper_maj3();
        assert_eq!(maj.excitation_cells(), 4);
        assert_eq!(maj.detection_cells(), 2);
        assert_eq!(maj.excitation_cells() + maj.detection_cells(), 6);
        // XOR ladder ([23]'s programmable gate): also 4 excitation cells,
        // hence the identical 13.7 aJ energy in Table III.
        let xor = LadderLayout::paper_xor();
        assert_eq!(xor.excitation_cells(), 4);
        assert_eq!(xor.excitation_cells() + xor.detection_cells(), 6);
    }

    #[test]
    fn ladder_validates_inputs_and_rules() {
        assert!(LadderLayout::new(55e-9, 50e-9, 330e-9, 220e-9, 4).is_err());
        assert!(LadderLayout::new(55e-9, 50e-9, 300e-9, 220e-9, 3).is_err());
        assert!(LadderLayout::new(55e-9, 50e-9, 330e-9, 220e-9, 3).is_ok());
    }
}
