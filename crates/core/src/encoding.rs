//! Phase encoding of logic values.
//!
//! §III-A step (i): "SWs are excited with the suitable phase (0 for logic
//! 0 and phase π for logic 1)". [`Bit`] is the logic value; conversion to
//! and from phases lives here so every backend encodes identically.

use std::fmt;
use std::ops::Not;

/// A binary logic value carried by a spin wave's phase.
///
/// ```
/// use swgates::encoding::Bit;
/// assert_eq!(Bit::One.phase(), std::f64::consts::PI);
/// assert_eq!(!Bit::One, Bit::Zero);
/// assert_eq!(Bit::from_bool(true), Bit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Bit {
    /// Logic 0 — spin wave excited with phase 0.
    #[default]
    Zero,
    /// Logic 1 — spin wave excited with phase π.
    One,
}

impl Bit {
    /// Both values, in numeric order.
    pub const ALL: [Bit; 2] = [Bit::Zero, Bit::One];

    /// The excitation phase in radians (0 or π).
    #[inline]
    pub fn phase(self) -> f64 {
        match self {
            Bit::Zero => 0.0,
            Bit::One => std::f64::consts::PI,
        }
    }

    /// The signed amplitude factor `e^{iφ}` restricted to the real axis:
    /// +1 for logic 0, −1 for logic 1.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Bit::Zero => 1.0,
            Bit::One => -1.0,
        }
    }

    /// Converts from `bool` (`true` ⇒ 1).
    #[inline]
    pub fn from_bool(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Converts to `bool` (1 ⇒ `true`).
    #[inline]
    pub fn as_bool(self) -> bool {
        self == Bit::One
    }

    /// Numeric value 0 or 1.
    #[inline]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Three-input majority vote — the gate's ideal behaviour.
    pub fn majority(a: Bit, b: Bit, c: Bit) -> Bit {
        Bit::from_bool(a.as_u8() + b.as_u8() + c.as_u8() >= 2)
    }

    /// Two-input exclusive OR — the XOR gate's ideal behaviour.
    pub fn xor(a: Bit, b: Bit) -> Bit {
        Bit::from_bool(a != b)
    }
}

impl Not for Bit {
    type Output = Bit;
    #[inline]
    fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u8())
    }
}

impl From<bool> for Bit {
    #[inline]
    fn from(b: bool) -> Bit {
        Bit::from_bool(b)
    }
}

impl From<Bit> for bool {
    #[inline]
    fn from(b: Bit) -> bool {
        b.as_bool()
    }
}

/// All input patterns for an `N`-input gate, in binary counting order
/// with index 0 as the least-significant input.
///
/// ```
/// use swgates::encoding::{all_patterns, Bit};
/// let patterns = all_patterns::<2>();
/// assert_eq!(patterns.len(), 4);
/// assert_eq!(patterns[1], [Bit::One, Bit::Zero]); // pattern 0b01
/// ```
pub fn all_patterns<const N: usize>() -> Vec<[Bit; N]> {
    (0..(1usize << N))
        .map(|code| {
            let mut pattern = [Bit::Zero; N];
            for (i, slot) in pattern.iter_mut().enumerate() {
                *slot = Bit::from_bool(code >> i & 1 == 1);
            }
            pattern
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn phases_match_the_paper() {
        assert_eq!(Bit::Zero.phase(), 0.0);
        assert_eq!(Bit::One.phase(), PI);
    }

    #[test]
    fn sign_is_cos_of_phase() {
        for b in Bit::ALL {
            assert!((b.sign() - b.phase().cos()).abs() < 1e-15);
        }
    }

    #[test]
    fn not_is_involutive() {
        for b in Bit::ALL {
            assert_eq!(!!b, b);
            assert_ne!(!b, b);
        }
    }

    #[test]
    fn majority_truth_table() {
        use Bit::{One as I, Zero as O};
        assert_eq!(Bit::majority(O, O, O), O);
        assert_eq!(Bit::majority(O, O, I), O);
        assert_eq!(Bit::majority(O, I, I), I);
        assert_eq!(Bit::majority(I, I, I), I);
        assert_eq!(Bit::majority(I, O, I), I);
    }

    #[test]
    fn xor_truth_table() {
        use Bit::{One as I, Zero as O};
        assert_eq!(Bit::xor(O, O), O);
        assert_eq!(Bit::xor(O, I), I);
        assert_eq!(Bit::xor(I, O), I);
        assert_eq!(Bit::xor(I, I), O);
    }

    #[test]
    fn bool_round_trip() {
        assert!(bool::from(Bit::from(true)));
        assert!(!bool::from(Bit::from(false)));
    }

    #[test]
    fn all_patterns_enumerates_in_counting_order() {
        let p3 = all_patterns::<3>();
        assert_eq!(p3.len(), 8);
        assert_eq!(p3[0], [Bit::Zero; 3]);
        assert_eq!(p3[7], [Bit::One; 3]);
        assert_eq!(p3[5], [Bit::One, Bit::Zero, Bit::One]); // 0b101
                                                            // All patterns distinct.
        for i in 0..8 {
            for j in i + 1..8 {
                assert_ne!(p3[i], p3[j]);
            }
        }
    }

    #[test]
    fn display_prints_binary_digit() {
        assert_eq!(Bit::Zero.to_string(), "0");
        assert_eq!(Bit::One.to_string(), "1");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Bit::default(), Bit::Zero);
    }
}
