//! Truth tables and fan-out equivalence checking.
//!
//! [`TruthTable`] is the shape of the paper's Tables I and II: one row
//! per input pattern with the normalized output magnetization at O1 and
//! O2 and the decoded logic values. [`TruthTable::render`] prints it in
//! the paper's format.

use std::fmt;

use crate::encoding::Bit;
use crate::gates::GateOutputs;
use crate::SwGateError;

/// One evaluated input pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthRow<const N: usize> {
    /// The input pattern (index 0 = I1).
    pub inputs: [Bit; N],
    /// The decoded outputs.
    pub outputs: GateOutputs,
}

/// A complete gate truth table.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthTable<const N: usize> {
    rows: Vec<TruthRow<N>>,
}

impl<const N: usize> TruthTable<N> {
    /// Wraps evaluated rows.
    pub fn new(rows: Vec<TruthRow<N>>) -> Self {
        TruthTable { rows }
    }

    /// The rows, in the order they were evaluated.
    pub fn rows(&self) -> &[TruthRow<N>] {
        &self.rows
    }

    /// Verifies every row against an ideal logic function (checking both
    /// outputs — fan-out of 2 means both must carry the value).
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::Undecodable`] naming the first mismatching
    /// pattern.
    pub fn verify<F: Fn([Bit; N]) -> Bit>(&self, ideal: F) -> Result<(), SwGateError> {
        for row in &self.rows {
            let expected = ideal(row.inputs);
            for (label, bit) in [("O1", row.outputs.o1.bit), ("O2", row.outputs.o2.bit)] {
                if bit != expected {
                    return Err(SwGateError::Undecodable {
                        output: "truth table",
                        reason: format!(
                            "pattern {:?}: {label} decoded {bit}, expected {expected}",
                            row.inputs.map(|b| b.as_u8())
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The largest relative amplitude mismatch between O1 and O2 over
    /// all rows — 0 means the fan-out outputs are identical everywhere.
    pub fn max_fanout_mismatch(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.outputs.amplitude_mismatch())
            .fold(0.0, f64::max)
    }

    /// True if O1 and O2 decode identically on every row.
    pub fn fanout_consistent(&self) -> bool {
        self.rows.iter().all(|r| r.outputs.fanout_consistent())
    }

    /// The smallest normalized amplitude among rows whose ideal output
    /// is "strong" per `predicate` — used for threshold-margin analysis.
    pub fn min_normalized_where<F: Fn(&TruthRow<N>) -> bool>(&self, predicate: F) -> f64 {
        self.rows
            .iter()
            .filter(|r| predicate(r))
            .map(|r| r.outputs.o1.normalized.min(r.outputs.o2.normalized))
            .fold(f64::INFINITY, f64::min)
    }

    /// The largest normalized amplitude among rows matching `predicate`.
    pub fn max_normalized_where<F: Fn(&TruthRow<N>) -> bool>(&self, predicate: F) -> f64 {
        self.rows
            .iter()
            .filter(|r| predicate(r))
            .map(|r| r.outputs.o1.normalized.max(r.outputs.o2.normalized))
            .fold(0.0, f64::max)
    }

    /// Renders the table in the paper's format (inputs listed
    /// most-significant-first like "I3 I2 I1", normalized amplitudes at
    /// O1/O2, decoded bits).
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        let header: Vec<String> = (0..N).rev().map(|i| format!("I{}", i + 1)).collect();
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>8}  {:>4}  {:>4}\n",
            header.join(" "),
            "O1",
            "O2",
            "B1",
            "B2",
            width = 3 * N
        ));
        for row in &self.rows {
            let bits: Vec<String> = row.inputs.iter().rev().map(|b| format!(" {b}")).collect();
            out.push_str(&format!(
                "{:<width$}  {:>8.3}  {:>8.3}  {:>4}  {:>4}\n",
                bits.join(" "),
                row.outputs.o1.normalized,
                row.outputs.o2.normalized,
                row.outputs.o1.bit.to_string(),
                row.outputs.o2.bit.to_string(),
                width = 3 * N
            ));
        }
        out
    }
}

impl<const N: usize> fmt::Display for TruthTable<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render("truth table"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{Maj3Gate, XorGate};
    use crate::wavemodel::AnalyticBackend;

    fn maj_table() -> TruthTable<3> {
        Maj3Gate::paper()
            .truth_table(&AnalyticBackend::paper())
            .unwrap()
    }

    #[test]
    fn verify_accepts_the_correct_function() {
        maj_table()
            .verify(|p| Bit::majority(p[0], p[1], p[2]))
            .unwrap();
    }

    #[test]
    fn verify_rejects_the_wrong_function() {
        let err = maj_table().verify(|p| Bit::xor(p[0], p[1]));
        assert!(matches!(err, Err(SwGateError::Undecodable { .. })));
    }

    #[test]
    fn fanout_metrics_are_perfect_on_the_analytic_backend() {
        let table = maj_table();
        assert!(table.fanout_consistent());
        assert!(table.max_fanout_mismatch() < 1e-12);
    }

    #[test]
    fn amplitude_extrema_split_strong_and_weak_rows() {
        let table = XorGate::paper()
            .truth_table(&AnalyticBackend::paper())
            .unwrap();
        let strong = table.min_normalized_where(|r| r.inputs[0] == r.inputs[1]);
        let weak = table.max_normalized_where(|r| r.inputs[0] != r.inputs[1]);
        assert!(strong > 0.95);
        assert!(weak < 0.05);
    }

    #[test]
    fn render_contains_every_pattern_and_header() {
        let table = maj_table();
        let text = table.render("Table I analogue");
        assert!(text.starts_with("Table I analogue"));
        assert!(text.contains("I3 I2 I1"));
        // 1 title + 1 header + 8 rows.
        assert_eq!(text.lines().count(), 10);
    }

    #[test]
    fn display_uses_render() {
        let table = maj_table();
        assert!(table.to_string().contains("truth table"));
    }
}
