//! The gate operating point: wavelength, frequency, wavenumber and decay
//! length, derived from the film dispersion exactly as in §IV-A.
//!
//! The paper's design flow: pick the waveguide width (50 nm), pick a
//! wavelength larger than the width (λ = 55 nm, "which is larger than the
//! waveguide width and therefore results in clear interference
//! patterns"), then read the drive frequency off the dispersion relation.

use swphys::attenuation::Attenuation;
use swphys::dispersion::FvmswDispersion;
use swphys::film::PerpendicularFilm;

use crate::SwGateError;

/// A fully resolved spin-wave operating point.
///
/// ```
/// use swgates::op::OperatingPoint;
/// let op = OperatingPoint::paper().unwrap();
/// assert_eq!(op.wavelength(), 55e-9);
/// assert!(op.frequency() > 1e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    wavelength: f64,
    wavenumber: f64,
    frequency: f64,
    group_velocity: f64,
    attenuation_length: f64,
    film: PerpendicularFilm,
}

impl OperatingPoint {
    /// Derives the operating point for a film at wavelength λ (metres).
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidOperatingPoint`] if the film is not
    /// stable out-of-plane (no forward-volume waves) or λ is not positive.
    pub fn for_film(film: PerpendicularFilm, wavelength: f64) -> Result<Self, SwGateError> {
        if !(wavelength.is_finite() && wavelength > 0.0) {
            return Err(SwGateError::InvalidOperatingPoint {
                reason: format!("wavelength must be positive, got {wavelength}"),
            });
        }
        if !film.is_stable() {
            return Err(SwGateError::InvalidOperatingPoint {
                reason: "film is not out-of-plane stable; forward-volume spin waves \
                         require a perpendicular film"
                    .into(),
            });
        }
        let dispersion = FvmswDispersion::for_film(&film);
        let wavenumber = 2.0 * std::f64::consts::PI / wavelength;
        let frequency = dispersion.frequency(wavenumber);
        let group_velocity = dispersion.group_velocity(wavenumber);
        let attenuation_length =
            Attenuation::for_mode(&dispersion, wavenumber, film.alpha()).decay_length();
        Ok(OperatingPoint {
            wavelength,
            wavenumber,
            frequency,
            group_velocity,
            attenuation_length,
            film,
        })
    }

    /// The paper's operating point: the Fe₆₀Co₂₀B₂₀ 1 nm film at
    /// λ = 55 nm (§IV-A).
    ///
    /// # Errors
    ///
    /// Never fails in practice (the preset film is stable); the `Result`
    /// keeps the signature uniform with [`OperatingPoint::for_film`].
    pub fn paper() -> Result<Self, SwGateError> {
        OperatingPoint::for_film(PerpendicularFilm::fecob(1e-9), 55e-9)
    }

    /// Wavelength λ in metres.
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    /// Wavenumber k = 2π/λ in rad/m.
    pub fn wavenumber(&self) -> f64 {
        self.wavenumber
    }

    /// Drive frequency in Hz (from the Kalinikos–Slavin dispersion).
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Group velocity in m/s.
    pub fn group_velocity(&self) -> f64 {
        self.group_velocity
    }

    /// Amplitude decay length in metres.
    pub fn attenuation_length(&self) -> f64 {
        self.attenuation_length
    }

    /// The underlying film.
    pub fn film(&self) -> &PerpendicularFilm {
        &self.film
    }

    /// Phase accumulated over a path of length `d` metres: `k·d` (radians).
    pub fn phase_over(&self, d: f64) -> f64 {
        self.wavenumber * d
    }

    /// Amplitude factor after propagating `d` metres: `e^{−d/L_att}`.
    pub fn decay_over(&self, d: f64) -> f64 {
        if self.attenuation_length.is_infinite() {
            1.0
        } else {
            (-d / self.attenuation_length).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_values() {
        let op = OperatingPoint::paper().unwrap();
        assert_eq!(op.wavelength(), 55e-9);
        let k = 2.0 * std::f64::consts::PI / 55e-9;
        assert!((op.wavenumber() - k).abs() / k < 1e-12);
        // Our Kalinikos–Slavin evaluation: ~10-25 GHz band (the paper
        // quotes 10 GHz; see EXPERIMENTS.md for the dispersion footnote).
        assert!(
            op.frequency() > 8e9 && op.frequency() < 25e9,
            "f = {}",
            op.frequency()
        );
        assert!(op.group_velocity() > 100.0 && op.group_velocity() < 1e4);
        // Decay length is micrometres — long against the 55-1210 nm arms,
        // supporting the paper's negligible-propagation-loss assumption.
        assert!(
            op.attenuation_length() > 1e-6,
            "L = {}",
            op.attenuation_length()
        );
    }

    #[test]
    fn phase_over_one_wavelength_is_two_pi() {
        let op = OperatingPoint::paper().unwrap();
        let phi = op.phase_over(55e-9);
        assert!((phi - 2.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn decay_is_one_at_zero_distance_and_monotonic() {
        let op = OperatingPoint::paper().unwrap();
        assert_eq!(op.decay_over(0.0), 1.0);
        assert!(op.decay_over(1e-6) < 1.0);
        assert!(op.decay_over(2e-6) < op.decay_over(1e-6));
    }

    #[test]
    fn rejects_unstable_film() {
        // Permalloy-like film: in-plane, no FVMSW.
        let film = PerpendicularFilm::new(800e3, 13e-12, 0.01, 0.0, 1e-9, 0.0);
        assert!(matches!(
            OperatingPoint::for_film(film, 55e-9),
            Err(SwGateError::InvalidOperatingPoint { .. })
        ));
    }

    #[test]
    fn rejects_bad_wavelength() {
        let film = PerpendicularFilm::fecob(1e-9);
        assert!(OperatingPoint::for_film(film, 0.0).is_err());
        assert!(OperatingPoint::for_film(film, f64::NAN).is_err());
    }

    #[test]
    fn longer_wavelength_means_lower_frequency() {
        let film = PerpendicularFilm::fecob(1e-9);
        let short = OperatingPoint::for_film(film, 40e-9).unwrap();
        let long = OperatingPoint::for_film(film, 80e-9).unwrap();
        assert!(short.frequency() > long.frequency());
    }
}
