//! Output detection: phase detection and threshold detection.
//!
//! The paper uses two readout schemes (§III):
//!
//! * **Phase detection** (Majority gate): "a 0 SW phase corresponds to a
//!   logic 0 and a phase of π to logic 1". [`PhaseDetector`] compares the
//!   measured output phase against a reference phase (the phase the
//!   all-zeros pattern produces at that output).
//! * **Threshold detection** (XOR/XNOR): "if the received SW
//!   magnetization is larger than the predefined threshold, this is logic
//!   0, and logic 1 otherwise" — with the **flipped** condition giving
//!   XNOR. [`ThresholdDetector`] implements both polarities; the paper's
//!   threshold is 0.5 of the normalized magnetization.

use crate::encoding::Bit;
use crate::SwGateError;

/// Wraps a phase to (−π, π].
fn wrap_phase(phi: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut p = phi % two_pi;
    if p > std::f64::consts::PI {
        p -= two_pi;
    } else if p <= -std::f64::consts::PI {
        p += two_pi;
    }
    p
}

/// Phase detector for Majority-gate readout (§III-A).
///
/// ```
/// use swgates::detect::PhaseDetector;
/// use swgates::encoding::Bit;
/// let det = PhaseDetector::new(0.0);
/// assert_eq!(det.decode(0.1).unwrap(), Bit::Zero);
/// assert_eq!(det.decode(std::f64::consts::PI - 0.1).unwrap(), Bit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseDetector {
    reference: f64,
    /// Decode margin: phases within `margin` of the ±π/2 decision
    /// boundary are rejected as undecodable.
    margin: f64,
}

impl PhaseDetector {
    /// Creates a detector with the given reference phase (radians) — the
    /// phase a logic-0 output exhibits — and a default decision margin of
    /// π/8.
    pub fn new(reference: f64) -> Self {
        PhaseDetector {
            reference,
            margin: std::f64::consts::PI / 8.0,
        }
    }

    /// Overrides the decision margin (radians, must be in [0, π/2)).
    ///
    /// # Panics
    ///
    /// Panics if `margin` is outside [0, π/2).
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(
            (0.0..std::f64::consts::FRAC_PI_2).contains(&margin),
            "margin must be in [0, π/2), got {margin}"
        );
        self.margin = margin;
        self
    }

    /// The reference (logic 0) phase.
    pub fn reference(&self) -> f64 {
        self.reference
    }

    /// Decodes a measured phase (radians).
    ///
    /// Phases within π/2 of the reference decode to [`Bit::Zero`], phases
    /// within π/2 of reference + π decode to [`Bit::One`].
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::Undecodable`] when the phase falls within
    /// the configured margin of the decision boundary.
    pub fn decode(&self, phase: f64) -> Result<Bit, SwGateError> {
        let delta = wrap_phase(phase - self.reference).abs();
        let boundary = std::f64::consts::FRAC_PI_2;
        if (delta - boundary).abs() < self.margin {
            return Err(SwGateError::Undecodable {
                output: "phase",
                reason: format!(
                    "phase offset {delta:.3} rad is within {:.3} rad of the π/2 boundary",
                    self.margin
                ),
            });
        }
        Ok(Bit::from_bool(delta > boundary))
    }
}

/// Which logic value a super-threshold amplitude maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Polarity {
    /// XOR convention (§III-B): amplitude **above** threshold ⇒ logic 0.
    #[default]
    Xor,
    /// XNOR convention: the flipped condition — above threshold ⇒ logic 1.
    Xnor,
}

/// Threshold (amplitude) detector for XOR/XNOR readout (§III-B).
///
/// ```
/// use swgates::detect::{Polarity, ThresholdDetector};
/// use swgates::encoding::Bit;
/// let det = ThresholdDetector::paper(); // threshold 0.5, XOR polarity
/// assert_eq!(det.decode(0.99).unwrap(), Bit::Zero);
/// assert_eq!(det.decode(0.01).unwrap(), Bit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdDetector {
    threshold: f64,
    polarity: Polarity,
    /// Amplitudes within `margin` of the threshold are undecodable.
    margin: f64,
}

impl ThresholdDetector {
    /// Creates a detector with the given normalized-amplitude threshold.
    pub fn new(threshold: f64, polarity: Polarity) -> Self {
        ThresholdDetector {
            threshold,
            polarity,
            margin: 0.05,
        }
    }

    /// The paper's §IV-C configuration: threshold 0.5, XOR polarity.
    pub fn paper() -> Self {
        ThresholdDetector::new(0.5, Polarity::Xor)
    }

    /// Overrides the undecodable margin (normalized amplitude units).
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative, got {margin}");
        self.margin = margin;
        self
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The polarity (XOR or XNOR).
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Decodes a normalized amplitude.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::Undecodable`] when the amplitude lies
    /// within the margin of the threshold.
    pub fn decode(&self, normalized_amplitude: f64) -> Result<Bit, SwGateError> {
        if (normalized_amplitude - self.threshold).abs() < self.margin {
            return Err(SwGateError::Undecodable {
                output: "amplitude",
                reason: format!(
                    "amplitude {normalized_amplitude:.3} within {:.3} of threshold {:.3}",
                    self.margin, self.threshold
                ),
            });
        }
        let above = normalized_amplitude > self.threshold;
        Ok(match self.polarity {
            Polarity::Xor => Bit::from_bool(!above),
            Polarity::Xnor => Bit::from_bool(above),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn phase_detector_decodes_clean_phases() {
        let det = PhaseDetector::new(0.0);
        assert_eq!(det.decode(0.0).unwrap(), Bit::Zero);
        assert_eq!(det.decode(PI).unwrap(), Bit::One);
        assert_eq!(det.decode(-PI).unwrap(), Bit::One);
        assert_eq!(det.decode(0.3).unwrap(), Bit::Zero);
        assert_eq!(det.decode(PI - 0.3).unwrap(), Bit::One);
    }

    #[test]
    fn phase_detector_respects_reference() {
        let det = PhaseDetector::new(PI / 2.0);
        assert_eq!(det.decode(PI / 2.0 + 0.1).unwrap(), Bit::Zero);
        assert_eq!(det.decode(-PI / 2.0).unwrap(), Bit::One);
    }

    #[test]
    fn phase_detector_rejects_boundary() {
        let det = PhaseDetector::new(0.0);
        assert!(matches!(
            det.decode(PI / 2.0),
            Err(SwGateError::Undecodable { .. })
        ));
        assert!(matches!(
            det.decode(PI / 2.0 + 0.01),
            Err(SwGateError::Undecodable { .. })
        ));
    }

    #[test]
    fn phase_detector_wraps_large_phases() {
        let det = PhaseDetector::new(0.0);
        assert_eq!(det.decode(4.0 * PI + 0.1).unwrap(), Bit::Zero);
        assert_eq!(det.decode(5.0 * PI).unwrap(), Bit::One);
    }

    #[test]
    #[should_panic(expected = "margin must be in")]
    fn phase_margin_validation() {
        let _ = PhaseDetector::new(0.0).with_margin(2.0);
    }

    #[test]
    fn threshold_detector_paper_settings() {
        let det = ThresholdDetector::paper();
        assert_eq!(det.threshold(), 0.5);
        assert_eq!(det.polarity(), Polarity::Xor);
    }

    #[test]
    fn threshold_detector_xor_polarity_matches_table_ii() {
        let det = ThresholdDetector::paper();
        // Table II: {0,0} -> 0.99 amplitude -> logic 0; {0,1} -> ~0 -> 1.
        assert_eq!(det.decode(0.99).unwrap(), Bit::Zero);
        assert_eq!(det.decode(1.0).unwrap(), Bit::Zero);
        assert_eq!(det.decode(0.02).unwrap(), Bit::One);
    }

    #[test]
    fn threshold_detector_xnor_flips() {
        let det = ThresholdDetector::new(0.5, Polarity::Xnor);
        assert_eq!(det.decode(0.99).unwrap(), Bit::One);
        assert_eq!(det.decode(0.02).unwrap(), Bit::Zero);
    }

    #[test]
    fn threshold_detector_rejects_near_threshold() {
        let det = ThresholdDetector::paper();
        assert!(det.decode(0.5).is_err());
        assert!(det.decode(0.52).is_err());
        assert!(det.decode(0.56).is_ok());
    }

    #[test]
    fn zero_margin_accepts_everything_but_exact_boundary() {
        let det = ThresholdDetector::paper().with_margin(0.0);
        assert_eq!(det.decode(0.500001).unwrap(), Bit::Zero);
        assert_eq!(det.decode(0.499999).unwrap(), Bit::One);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn threshold_margin_validation() {
        let _ = ThresholdDetector::paper().with_margin(-0.1);
    }
}
