//! Error type for `swgates`.

use std::error::Error;
use std::fmt;

/// Errors from building or evaluating spin-wave gates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SwGateError {
    /// A gate layout violates a design rule (e.g. a dimension that must
    /// be a multiple of λ is not).
    InvalidLayout {
        /// Description of the violated rule.
        reason: String,
    },
    /// The operating point could not be derived (dispersion solve failed
    /// or the film is not perpendicular).
    InvalidOperatingPoint {
        /// Description of the problem.
        reason: String,
    },
    /// The micromagnetic backend failed.
    Simulation {
        /// Description (wraps the solver error message).
        reason: String,
    },
    /// An output signal could not be decoded into a logic value (e.g.
    /// amplitude too close to the detection threshold).
    Undecodable {
        /// Which output failed.
        output: &'static str,
        /// Description of the ambiguity.
        reason: String,
    },
}

impl fmt::Display for SwGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwGateError::InvalidLayout { reason } => write!(f, "invalid gate layout: {reason}"),
            SwGateError::InvalidOperatingPoint { reason } => {
                write!(f, "invalid operating point: {reason}")
            }
            SwGateError::Simulation { reason } => {
                write!(f, "micromagnetic simulation failed: {reason}")
            }
            SwGateError::Undecodable { output, reason } => {
                write!(f, "output {output} could not be decoded: {reason}")
            }
        }
    }
}

impl Error for SwGateError {}

impl From<magnum::MagnumError> for SwGateError {
    fn from(e: magnum::MagnumError) -> Self {
        SwGateError::Simulation {
            reason: e.to_string(),
        }
    }
}

impl From<swphys::SwPhysError> for SwGateError {
    fn from(e: swphys::SwPhysError) -> Self {
        SwGateError::InvalidOperatingPoint {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SwGateError::InvalidLayout {
            reason: "d1 is not a multiple of λ".into(),
        };
        assert!(e.to_string().contains("d1"));
    }

    #[test]
    fn converts_from_substrate_errors() {
        let m = magnum::MagnumError::Diverged { time: 1e-9 };
        let g: SwGateError = m.into();
        assert!(matches!(g, SwGateError::Simulation { .. }));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SwGateError>();
    }
}
