//! Micromagnetic gate backend — the reproduction of the paper's MuMax3
//! validation (§IV).
//!
//! For each input pattern the backend rasterizes the gate geometry onto a
//! finite-difference mesh, attaches one CW antenna per input (phase 0 or
//! π per the logic encoding), integrates the LLG equation with the
//! [`magnum`] solver until the interference pattern is in steady state,
//! and reads amplitude and phase at both outputs with single-bin DFT
//! probes — the in-silico equivalent of the paper's §IV-B experiments.
//!
//! ## Numerical fidelity details
//!
//! * **Discrete dispersion.** With the thin-film local demag term the
//!   linearized film obeys `ω = γμ₀(H_i + C·k_eff²)` where
//!   `k_eff² = (4/Δ²)·[sin²(k_x Δ/2) + sin²(k_y Δ/2)]` is the discrete
//!   Laplacian symbol. The backend derives the drive frequency from this
//!   relation (not the continuum one) so the simulated wavelength matches
//!   the layout's λ exactly along the mesh axes.
//! * **Lattice anisotropy compensation.** The discrete symbol makes the
//!   wavenumber direction-dependent (a 45° diagonal sees a slightly
//!   different k than an axis), which would skew the carefully engineered
//!   `n·λ` path lengths. The backend pre-compensates each antenna's phase
//!   by the accumulated per-segment deviation — numerically equivalent to
//!   the phase trimming a physical implementation would apply. Disable
//!   with [`MumagBackend::without_compensation`] to measure the skew
//!   (ablation bench).
//! * **Absorbing boundaries.** Every waveguide stub extends a few λ past
//!   its antenna/probe into a ramped-damping absorber, emulating the
//!   paper's effectively open boundaries.

use std::collections::HashMap;
use std::f64::consts::{FRAC_PI_2, PI, SQRT_2};
use std::sync::{Arc, Mutex};

use magnum::excitation::{Antenna, Drive};
use magnum::geometry::{rasterize, Bar, Shape, ShapeSet};
use magnum::material::Material;
use magnum::math::{Complex64, Vec3};
use magnum::mesh::Mesh;
use magnum::probe::{Component, DftProbe, RegionProbe, Snapshot};
use magnum::sim::Simulation;
use magnum::solver::IntegratorKind;
use magnum::MU0;

use swphys::film::PerpendicularFilm;

use crate::encoding::Bit;
use crate::layout::{TriangleMaj3Layout, TriangleXorLayout};
use crate::SwGateError;

/// A gate's rasterizable footprint with its `(x0, y0, x1, y1)` bounding
/// box in metres.
pub type GateFootprint = (Box<dyn Shape>, (f64, f64, f64, f64));

/// Result of one micromagnetic gate run.
#[derive(Debug, Clone)]
pub struct GateRun {
    /// Complex amplitude at output O1 (magnitude in units of m_x).
    pub o1: Complex64,
    /// Complex amplitude at output O2.
    pub o2: Complex64,
    /// Spatial snapshot of m_x at the end of the run (Fig. 5 raw data).
    pub snapshot: Snapshot,
    /// The drive frequency used (Hz).
    pub frequency: f64,
    /// Total simulated time (s).
    pub simulated_time: f64,
}

/// The micromagnetic gate backend (see module docs).
#[derive(Debug, Clone)]
pub struct MumagBackend {
    film: PerpendicularFilm,
    cell: f64,
    drive_amplitude: f64,
    measure_periods: u32,
    samples_per_period: u32,
    settle_factor: f64,
    compensate: bool,
    temperature: f64,
    seed: u64,
    absorber_lambdas: f64,
    alpha_absorber: f64,
    guide_width: Option<f64>,
    /// Edge roughness (amplitude, correlation length, seed), if enabled.
    roughness: Option<(f64, f64, u64)>,
    phase_trim: bool,
    threads: Option<usize>,
    trim_cache: Arc<Mutex<HashMap<TrimKey, Vec<DriveTrim>>>>,
}

/// Per-input drive calibration: an amplitude scale and a phase offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveTrim {
    /// Multiplier on the nominal drive amplitude (≤ 1).
    pub amplitude_scale: f64,
    /// Additive phase offset in radians.
    pub phase_offset: f64,
}

impl DriveTrim {
    /// The identity trim (no correction).
    pub fn identity() -> Self {
        DriveTrim {
            amplitude_scale: 1.0,
            phase_offset: 0.0,
        }
    }
}

/// Amplitude scale and phase of one antenna drive.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DriveSpec {
    amplitude_scale: f64,
    phase: f64,
}

/// Which gate a cached calibration belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GateKindTag {
    Maj3,
    Xor,
}

/// Cache key identifying a gate instance by its exact dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TrimKey {
    kind: GateKindTag,
    dims: [u64; 6],
}

impl TrimKey {
    fn maj3(layout: &TriangleMaj3Layout) -> Self {
        TrimKey {
            kind: GateKindTag::Maj3,
            dims: [
                layout.wavelength().to_bits(),
                layout.width().to_bits(),
                layout.d1().to_bits(),
                layout.d2().to_bits(),
                layout.d3().to_bits(),
                layout.d4().to_bits(),
            ],
        }
    }

    fn xor(layout: &TriangleXorLayout) -> Self {
        TrimKey {
            kind: GateKindTag::Xor,
            dims: [
                layout.wavelength().to_bits(),
                layout.width().to_bits(),
                layout.d1().to_bits(),
                layout.d2().to_bits(),
                0,
                0,
            ],
        }
    }
}

/// Drive trims that align every input's arrival phase (averaged over
/// both outputs) with input 0's and scale the arrival amplitudes to the
/// per-input `targets` (the largest resulting drive is normalized to the
/// nominal amplitude, so trims never overdrive a transducer).
fn trims_from_transfer(transfer: &[(Complex64, Complex64)], targets: &[f64]) -> Vec<DriveTrim> {
    let mean = |t: &(Complex64, Complex64)| (t.0 + t.1) * 0.5;
    let reference_phase = mean(&transfer[0]).arg();
    let mut scales: Vec<f64> = transfer
        .iter()
        .zip(targets.iter())
        .map(|(t, &target)| {
            let a = mean(t).abs();
            if a > 0.0 {
                target / a
            } else {
                1.0
            }
        })
        .collect();
    let max = scales.iter().copied().fold(0.0, f64::max);
    if max > 0.0 {
        for s in &mut scales {
            *s /= max;
        }
    }
    transfer
        .iter()
        .zip(scales)
        .map(|(t, amplitude_scale)| DriveTrim {
            amplitude_scale,
            phase_offset: reference_phase - mean(t).arg(),
        })
        .collect()
}

/// Arrival-amplitude targets for the MAJ3 inputs.
///
/// The stage-1 inputs (I1, I2) are weighted 0.7 relative to I3 so the
/// combined trunk wave reaches the second crossings about 1.4× stronger
/// than I3's split wave — the balance implied by the paper's own Table I,
/// where the I3-minority residual is 0.164 = (1.4 − 1)/(1.4 + 1). This
/// keeps the tie-break semantics of the majority (the pair outvotes the
/// single input) with the same margin the published gate exhibits.
const MAJ3_AMPLITUDE_TARGETS: [f64; 3] = [0.7, 0.7, 1.0];

/// Arrival-amplitude targets for the XOR inputs (balanced).
const XOR_AMPLITUDE_TARGETS: [f64; 2] = [1.0, 1.0];

impl MumagBackend {
    /// Creates a backend for a film with the given square cell size
    /// (metres). Cells of λ/8 or finer are recommended.
    pub fn new(film: PerpendicularFilm, cell: f64) -> Self {
        MumagBackend {
            film,
            cell,
            drive_amplitude: 5e3,
            measure_periods: 4,
            samples_per_period: 16,
            settle_factor: 1.7,
            compensate: true,
            temperature: 0.0,
            seed: 0,
            absorber_lambdas: 4.0,
            alpha_absorber: 0.35,
            guide_width: None,
            roughness: None,
            phase_trim: true,
            threads: None,
            trim_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// A coarse-but-quick configuration for the paper's film: λ/8 cells
    /// (6.875 nm for λ = 55 nm).
    pub fn fast() -> Self {
        MumagBackend::new(PerpendicularFilm::fecob(1e-9), 55e-9 / 8.0)
    }

    /// Finite-temperature operation (kelvin) for the §IV-D thermal study.
    pub fn with_temperature(mut self, temperature: f64, seed: u64) -> Self {
        self.temperature = temperature;
        self.seed = seed;
        self
    }

    /// Number of worker threads per simulation (0 = auto-detect). The
    /// default leaves the choice to magnum (serial unless the
    /// `MAGNUM_THREADS` environment variable says otherwise), so batch
    /// drivers can budget cores across concurrent jobs.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Overrides the antenna field amplitude (A/m).
    pub fn with_drive_amplitude(mut self, amplitude: f64) -> Self {
        self.drive_amplitude = amplitude;
        self
    }

    /// Overrides the number of measured periods.
    pub fn with_measure_periods(mut self, periods: u32) -> Self {
        self.measure_periods = periods.max(1);
        self
    }

    /// Overrides the settle-time safety factor (multiple of the transit
    /// time before measurement starts).
    pub fn with_settle_factor(mut self, factor: f64) -> Self {
        self.settle_factor = factor.max(1.0);
        self
    }

    /// Disables the lattice-dispersion phase compensation (ablation).
    pub fn without_compensation(mut self) -> Self {
        self.compensate = false;
        self
    }

    /// Disables the single-input phase-trim calibration (ablation: the
    /// junction scattering phases are then left uncorrected).
    pub fn without_phase_trim(mut self) -> Self {
        self.phase_trim = false;
        self
    }

    /// Overrides the simulated waveguide width (metres).
    ///
    /// By default the backend narrows the guides to `0.40·λ` whenever the
    /// layout width is larger — see [`MumagBackend::effective_width`].
    pub fn with_guide_width(mut self, width: f64) -> Self {
        self.guide_width = Some(width);
        self
    }

    /// Enables lithographic edge roughness on the gate geometry: every
    /// edge is perturbed by up to ± `amplitude` metres with lateral
    /// correlation length `correlation` (the variability model of the
    /// studies the paper cites in §IV-D, \[36\]/\[43\]).
    pub fn with_edge_roughness(mut self, amplitude: f64, correlation: f64, seed: u64) -> Self {
        self.roughness = Some((amplitude, correlation, seed));
        self
    }

    /// The waveguide width actually simulated for a layout of width
    /// `layout_width` at wavelength `lambda`.
    ///
    /// With Neumann exchange boundaries and the local thin-film demag,
    /// the film has no dipolar edge pinning, so the n = 2 (antisymmetric)
    /// width mode of a guide of width `w` propagates whenever `w > λ/2`.
    /// The paper's 50 nm guide at λ = 55 nm relies on the edge pinning of
    /// the real film (\[43\]) to stay effectively single-moded; to preserve
    /// that *behaviour* — destructive interference must kill anti-phase
    /// inputs instead of converting them into the odd mode — this backend
    /// narrows the guide to `0.40·λ` (comfortably below the λ/2 cutoff,
    /// so the odd mode is strongly evanescent) unless the layout is
    /// already narrower. This substitution is recorded in DESIGN.md.
    pub fn effective_width(&self, layout_width: f64, lambda: f64) -> f64 {
        match self.guide_width {
            Some(w) => w,
            None => layout_width.min(0.40 * lambda),
        }
    }

    /// Shares `other`'s drive-trim cache with this backend, so a
    /// calibration computed through either is visible to both.
    ///
    /// Clones of one backend already share a cache; this links two
    /// *independently constructed* backends — e.g. a batch runner's
    /// per-job variants that differ only in temperature or drive, which
    /// all use the same T = 0 calibration.
    pub fn with_trim_cache_from(mut self, other: &MumagBackend) -> Self {
        self.trim_cache = Arc::clone(&other.trim_cache);
        self
    }

    /// Computes (and caches) the MAJ3 drive trims now, so later
    /// [`MumagBackend::maj3_run`] calls — possibly on clones in other
    /// threads — find the calibration ready instead of racing to redo
    /// the 3 single-input LLG simulations.
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn prewarm_maj3(&self, layout: &TriangleMaj3Layout) -> Result<(), SwGateError> {
        self.maj3_trims(layout).map(|_| ())
    }

    /// Computes (and caches) the XOR drive trims now (see
    /// [`MumagBackend::prewarm_maj3`]).
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn prewarm_xor(&self, layout: &TriangleXorLayout) -> Result<(), SwGateError> {
        self.xor_trims(layout).map(|_| ())
    }

    /// Number of gate layouts with a cached drive calibration.
    pub fn cached_trim_count(&self) -> usize {
        self.trim_cache.lock().expect("trim cache poisoned").len()
    }

    /// The film this backend simulates.
    pub fn film(&self) -> &PerpendicularFilm {
        &self.film
    }

    /// The cell size in metres.
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Exchange-field constant `C = 2A/(μ₀·Ms)` (units of A·m).
    fn exchange_constant(&self) -> f64 {
        2.0 * self.film.aex() / (MU0 * self.film.ms())
    }

    /// Discrete Laplacian symbol `k_eff²` for wavenumber `k` propagating
    /// at `angle` radians from the mesh x-axis.
    fn discrete_symbol(&self, k: f64, angle: f64) -> f64 {
        let d = self.cell;
        let kx = k * angle.cos();
        let ky = k * angle.sin();
        (4.0 / (d * d)) * ((kx * d / 2.0).sin().powi(2) + (ky * d / 2.0).sin().powi(2))
    }

    /// Angular frequency of the discrete film mode at wavenumber `k`
    /// propagating at `angle`.
    fn discrete_omega(&self, k: f64, angle: f64) -> f64 {
        self.film.gamma()
            * MU0
            * (self.film.internal_field()
                + self.exchange_constant() * self.discrete_symbol(k, angle))
    }

    /// Drive frequency (Hz) that produces exactly the requested
    /// wavelength along the mesh axes.
    pub fn drive_frequency(&self, wavelength: f64) -> f64 {
        let k = 2.0 * PI / wavelength;
        self.discrete_omega(k, 0.0) / (2.0 * PI)
    }

    /// Numerical group velocity (m/s) at the axis wavelength.
    pub fn group_velocity(&self, wavelength: f64) -> f64 {
        let k = 2.0 * PI / wavelength;
        let dk = k * 1e-6;
        (self.discrete_omega(k + dk, 0.0) - self.discrete_omega(k - dk, 0.0)) / (2.0 * dk)
    }

    /// Solves the discrete dispersion for the wavenumber at `frequency`
    /// propagating at `angle`.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidOperatingPoint`] if the frequency is
    /// below the band bottom or beyond the lattice Nyquist limit.
    pub fn discrete_wavenumber(&self, frequency: f64, angle: f64) -> Result<f64, SwGateError> {
        let omega_target = 2.0 * PI * frequency;
        let k_max = PI / (self.cell * angle.cos().abs().max(angle.sin().abs()));
        if omega_target < self.discrete_omega(0.0, angle)
            || omega_target > self.discrete_omega(k_max, angle)
        {
            return Err(SwGateError::InvalidOperatingPoint {
                reason: format!(
                    "frequency {frequency:e} Hz unreachable on the discrete lattice at \
                     angle {angle:.3} rad"
                ),
            });
        }
        let mut lo = 0.0;
        let mut hi = k_max;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.discrete_omega(mid, angle) < omega_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Phase pre-compensation for an input whose path consists of
    /// `(length, angle)` segments: `Σ (k_nominal − k_numeric(θ))·ℓ`.
    fn compensation(
        &self,
        frequency: f64,
        k_nominal: f64,
        segments: &[(f64, f64)],
    ) -> Result<f64, SwGateError> {
        if !self.compensate {
            return Ok(0.0);
        }
        // A wave launched with drive phase φ₀ arrives after a path ℓ with
        // phase φ₀ − k_num·ℓ; driving with φ₀ + (k_num − k_nom)·ℓ makes
        // the arrival phase equal to the nominal φ₀ − k_nom·ℓ.
        let mut phi = 0.0;
        for &(length, angle) in segments {
            let k_num = self.discrete_wavenumber(frequency, angle)?;
            phi += (k_num - k_nominal) * length;
        }
        Ok(phi)
    }

    /// Runs the triangle MAJ3 gate for one input pattern.
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn maj3_run(
        &self,
        layout: &TriangleMaj3Layout,
        inputs: [Bit; 3],
    ) -> Result<GateRun, SwGateError> {
        let trims = self.maj3_trims(layout)?;
        let plan = self.plan_maj3(layout)?;
        let drives: Vec<DriveSpec> = inputs
            .iter()
            .zip(trims.iter())
            .map(|(bit, trim)| DriveSpec {
                amplitude_scale: trim.amplitude_scale,
                phase: bit.phase() + trim.phase_offset,
            })
            .collect();
        self.execute(plan, &drives, layout.wavelength())
    }

    /// Runs the triangle MAJ3 gate for several input patterns at once,
    /// advancing all of them in lockstep through one batched LLG solve.
    ///
    /// Element `i` of the result is bitwise identical to
    /// `self.maj3_run(layout, patterns[i])` — batching is purely a
    /// throughput optimization (one shared geometry, K interleaved
    /// magnetization lanes per cell; see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn maj3_run_batch(
        &self,
        layout: &TriangleMaj3Layout,
        patterns: &[[Bit; 3]],
    ) -> Result<Vec<GateRun>, SwGateError> {
        if patterns.is_empty() {
            return Ok(Vec::new());
        }
        let trims = self.maj3_trims(layout)?;
        let prepared = patterns
            .iter()
            .map(|inputs| {
                let drives: Vec<DriveSpec> = inputs
                    .iter()
                    .zip(trims.iter())
                    .map(|(bit, trim)| DriveSpec {
                        amplitude_scale: trim.amplitude_scale,
                        phase: bit.phase() + trim.phase_offset,
                    })
                    .collect();
                self.prepare(self.plan_maj3(layout)?, &drives, layout.wavelength())
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.measure_batch(prepared)
    }

    /// Runs the triangle XOR gate for several input patterns at once
    /// (see [`MumagBackend::maj3_run_batch`]).
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn xor_run_batch(
        &self,
        layout: &TriangleXorLayout,
        patterns: &[[Bit; 2]],
    ) -> Result<Vec<GateRun>, SwGateError> {
        if patterns.is_empty() {
            return Ok(Vec::new());
        }
        let trims = self.xor_trims(layout)?;
        let prepared = patterns
            .iter()
            .map(|inputs| {
                let drives: Vec<DriveSpec> = inputs
                    .iter()
                    .zip(trims.iter())
                    .map(|(bit, trim)| DriveSpec {
                        amplitude_scale: trim.amplitude_scale,
                        phase: bit.phase() + trim.phase_offset,
                    })
                    .collect();
                self.prepare(self.plan_xor(layout)?, &drives, layout.wavelength())
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.measure_batch(prepared)
    }

    /// Raw complex output amplitudes `(O1, O2)` of the MAJ3 gate.
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn maj3_outputs(
        &self,
        layout: &TriangleMaj3Layout,
        inputs: [Bit; 3],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        let run = self.maj3_run(layout, inputs)?;
        Ok((run.o1, run.o2))
    }

    /// Single-input transfer phasors of the MAJ3 gate: element `i` holds
    /// the `(O1, O2)` response with only input `i` driven (phase 0). In
    /// the linear spin-wave regime every pattern's output is the
    /// sign-weighted superposition of these.
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn maj3_transfer(
        &self,
        layout: &TriangleMaj3Layout,
    ) -> Result<Vec<(Complex64, Complex64)>, SwGateError> {
        self.transfer(GateKindTag::Maj3, layout.wavelength(), 3, || {
            self.plan_maj3(layout)
        })
    }

    /// Per-input drive trims that align all single-input arrival phases
    /// at the outputs and balance the arrival amplitudes (the in-silico
    /// equivalent of transducer trimming; junction scattering phases,
    /// junction losses and residual lattice effects are calibrated
    /// away). Cached per layout.
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn maj3_trims(&self, layout: &TriangleMaj3Layout) -> Result<Vec<DriveTrim>, SwGateError> {
        if !self.phase_trim {
            return Ok(vec![DriveTrim::identity(); 3]);
        }
        let key = TrimKey::maj3(layout);
        if let Some(trims) = self
            .trim_cache
            .lock()
            .expect("trim cache poisoned")
            .get(&key)
        {
            return Ok(trims.clone());
        }
        let transfer = self.maj3_transfer(layout)?;
        let trims = trims_from_transfer(&transfer, &MAJ3_AMPLITUDE_TARGETS);
        self.trim_cache
            .lock()
            .expect("trim cache poisoned")
            .insert(key, trims.clone());
        Ok(trims)
    }

    /// Runs the triangle XOR gate for one input pattern.
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn xor_run(
        &self,
        layout: &TriangleXorLayout,
        inputs: [Bit; 2],
    ) -> Result<GateRun, SwGateError> {
        let trims = self.xor_trims(layout)?;
        let plan = self.plan_xor(layout)?;
        let drives: Vec<DriveSpec> = inputs
            .iter()
            .zip(trims.iter())
            .map(|(bit, trim)| DriveSpec {
                amplitude_scale: trim.amplitude_scale,
                phase: bit.phase() + trim.phase_offset,
            })
            .collect();
        self.execute(plan, &drives, layout.wavelength())
    }

    /// Raw complex output amplitudes `(O1, O2)` of the XOR gate.
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn xor_outputs(
        &self,
        layout: &TriangleXorLayout,
        inputs: [Bit; 2],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        let run = self.xor_run(layout, inputs)?;
        Ok((run.o1, run.o2))
    }

    /// Single-input transfer phasors of the XOR gate (see
    /// [`MumagBackend::maj3_transfer`]).
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn xor_transfer(
        &self,
        layout: &TriangleXorLayout,
    ) -> Result<Vec<(Complex64, Complex64)>, SwGateError> {
        self.transfer(GateKindTag::Xor, layout.wavelength(), 2, || {
            self.plan_xor(layout)
        })
    }

    /// Per-input drive trims for the XOR gate (cached; see
    /// [`MumagBackend::maj3_trims`]).
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures as [`SwGateError`].
    pub fn xor_trims(&self, layout: &TriangleXorLayout) -> Result<Vec<DriveTrim>, SwGateError> {
        if !self.phase_trim {
            return Ok(vec![DriveTrim::identity(); 2]);
        }
        let key = TrimKey::xor(layout);
        if let Some(trims) = self
            .trim_cache
            .lock()
            .expect("trim cache poisoned")
            .get(&key)
        {
            return Ok(trims.clone());
        }
        let transfer = self.xor_transfer(layout)?;
        let trims = trims_from_transfer(&transfer, &XOR_AMPLITUDE_TARGETS);
        self.trim_cache
            .lock()
            .expect("trim cache poisoned")
            .insert(key, trims.clone());
        Ok(trims)
    }

    /// Measures single-input transfer phasors by running the gate once
    /// per input with the other antennas silenced. Calibration runs are
    /// always performed at T = 0 so trims are noise-free.
    fn transfer<F>(
        &self,
        _kind: GateKindTag,
        wavelength: f64,
        n_inputs: usize,
        mut plan_builder: F,
    ) -> Result<Vec<(Complex64, Complex64)>, SwGateError>
    where
        F: FnMut() -> Result<GatePlan, SwGateError>,
    {
        let cold = if self.temperature > 0.0 {
            let mut b = self.clone();
            b.temperature = 0.0;
            Some(b)
        } else {
            None
        };
        let backend = cold.as_ref().unwrap_or(self);
        let mut transfer = Vec::with_capacity(n_inputs);
        for active in 0..n_inputs {
            let drives: Vec<DriveSpec> = (0..n_inputs)
                .map(|i| DriveSpec {
                    amplitude_scale: if i == active { 1.0 } else { 0.0 },
                    phase: 0.0,
                })
                .collect();
            let run = backend.execute(plan_builder()?, &drives, wavelength)?;
            transfer.push((run.o1, run.o2));
        }
        Ok(transfer)
    }

    /// The rasterizable footprint and bounding box of the MAJ3 gate —
    /// the raw material of the paper's Fig. 3.
    ///
    /// # Errors
    ///
    /// Propagates layout failures as [`SwGateError`].
    pub fn maj3_geometry(&self, layout: &TriangleMaj3Layout) -> Result<GateFootprint, SwGateError> {
        let plan = self.plan_maj3(layout)?;
        Ok((Box::new(plan.shapes), plan.bounds))
    }

    /// The rasterizable footprint and bounding box of the XOR gate —
    /// the raw material of the paper's Fig. 4.
    ///
    /// # Errors
    ///
    /// Propagates layout failures as [`SwGateError`].
    pub fn xor_geometry(&self, layout: &TriangleXorLayout) -> Result<GateFootprint, SwGateError> {
        let plan = self.plan_xor(layout)?;
        Ok((Box::new(plan.shapes), plan.bounds))
    }

    /// Builds the simulation plan for the MAJ3 gate: the
    /// combine-then-split network documented in [`crate::layout`], laid
    /// out with the trunk along +x.
    ///
    /// ```text
    ///        A1──d1╲(45°)          C2L─[stub d4 ↑]─O1
    ///  I1 feed d2    ╲         d1╱    ╲d1
    ///                 J──d3──▶ S       S3──d2 feed── I3
    ///        A2──d1╱(45°)      d1╲    ╱d1
    ///  (I2 antenna at A2)         C2R─[stub d4 ↓]─O2
    /// ```
    fn plan_maj3(&self, layout: &TriangleMaj3Layout) -> Result<GatePlan, SwGateError> {
        let lambda = layout.wavelength();
        let w = self.effective_width(layout.width(), lambda);
        let (d1, d2, d3, d4) = (layout.d1(), layout.d2(), layout.d3(), layout.d4());
        let abs_len = self.absorber_lambdas * lambda;
        let pad = 3.0 * self.cell + w;
        let h1 = d1 / SQRT_2;

        // Stations along the trunk axis (y = 0).
        let j = (0.0, 0.0);
        let s = (d3, 0.0);
        let c2l = (s.0 + h1, h1); // upper second crossing
        let c2r = (s.0 + h1, -h1); // lower second crossing
        let s3 = (s.0 + 2.0 * h1, 0.0); // I3's splitter

        // I1: elbow A1 up-left of J, horizontal feed to the left.
        let a1 = (-h1, h1);
        let i1_ant = (a1.0 - d2, a1.1);
        let i1_end = (i1_ant.0 - abs_len, a1.1);
        // I2: antenna directly on the lower diagonal at distance d1.
        let a2 = (-h1, -h1);
        let a2_ext = (a2.0 - abs_len / SQRT_2, a2.1 - abs_len / SQRT_2);
        // I3: horizontal feed to the right of S3.
        let i3_ant = (s3.0 + d2, 0.0);
        let i3_end = (i3_ant.0 + abs_len, 0.0);
        // Output stubs: up from C2L, down from C2R, probe at distance d4,
        // absorber beyond.
        let o1 = (c2l.0, c2l.1 + d4);
        let o2 = (c2r.0, c2r.1 - d4);
        let stub1_end = (o1.0, o1.1 + abs_len);
        let stub2_end = (o2.0, o2.1 - abs_len);

        let mut shapes = ShapeSet::new();
        shapes.push(Bar::new(i1_end, a1, w)); // I1 feed
        shapes.push(Bar::new(a1, j, w)); // I1 diagonal
        shapes.push(Bar::new(a2_ext, j, w)); // I2 diagonal (with absorber tail)
        shapes.push(Bar::new(j, s, w)); // trunk
        shapes.push(Bar::new(s, c2l, w)); // fan-out arms
        shapes.push(Bar::new(s, c2r, w));
        shapes.push(Bar::new(s3, c2l, w)); // I3 split arms
        shapes.push(Bar::new(s3, c2r, w));
        shapes.push(Bar::new(s3, i3_end, w)); // I3 feed
        shapes.push(Bar::new(c2l, stub1_end, w)); // output stubs
        shapes.push(Bar::new(c2r, stub2_end, w));

        let quarter = PI / 4.0;
        let antennas = vec![
            AntennaPlan {
                rect: cross_section_x(i1_ant.0, i1_ant.1, w, self.cell),
                nominal: i1_ant,
                direction: (1.0, 0.0),
                feed_angle: 0.0,
                segments: vec![
                    (d2, 0.0),
                    (d1, quarter),
                    (d3, 0.0),
                    (d1, quarter),
                    (d4, FRAC_PI_2),
                ],
            },
            AntennaPlan {
                rect: diagonal_cross_section(a2, w, self.cell),
                nominal: a2,
                direction: (1.0 / SQRT_2, 1.0 / SQRT_2),
                feed_angle: quarter,
                segments: vec![(d1, quarter), (d3, 0.0), (d1, quarter), (d4, FRAC_PI_2)],
            },
            AntennaPlan {
                rect: cross_section_x(i3_ant.0, i3_ant.1, w, self.cell),
                nominal: i3_ant,
                direction: (-1.0, 0.0),
                feed_angle: 0.0,
                segments: vec![(d2, 0.0), (d1, quarter), (d4, FRAC_PI_2)],
            },
        ];

        let probes = [
            cross_section_y(o1.0, o1.1, w, self.cell),
            cross_section_y(o2.0, o2.1, w, self.cell),
        ];

        let absorbers = vec![
            AbsorberPlan::left(i1_end.0, i1_ant.0 - 2.0 * self.cell, a1.1, w),
            AbsorberPlan::diag(a2_ext, a2, w, false),
            AbsorberPlan::right(i3_ant.0 + 2.0 * self.cell, i3_end.0, 0.0, w),
            AbsorberPlan::up(o1.0, o1.1 + 2.0 * self.cell, stub1_end.1, w),
            AbsorberPlan::down(o2.0, stub2_end.1, o2.1 - 2.0 * self.cell, w),
        ];

        Ok(GatePlan {
            shapes,
            antennas,
            probes,
            absorbers,
            bounds: (
                i1_end.0.min(a2_ext.0) - pad,
                (a2_ext.1).min(stub2_end.1) - pad,
                i3_end.0 + pad,
                (a1.1).max(stub1_end.1) + pad,
            ),
            transit_distance: layout.path_i1() + abs_len,
        })
    }

    /// Builds the simulation plan for the XOR gate (Fig. 4): the MAJ3
    /// network without I3/S3/C2 — two d1 input diagonals into J, a short
    /// trunk, the fan-out splitter, and probes d1 + d2 down the arms.
    fn plan_xor(&self, layout: &TriangleXorLayout) -> Result<GatePlan, SwGateError> {
        let lambda = layout.wavelength();
        let w = self.effective_width(layout.width(), lambda);
        let (d1, d2) = (layout.d1(), layout.d2());
        let trunk = layout.trunk();
        let abs_len = self.absorber_lambdas * lambda;
        let pad = 3.0 * self.cell + w;
        let h1 = d1 / SQRT_2;

        let j = (0.0, 0.0);
        let s = (trunk, 0.0);
        // Antennas on the two input diagonals at path distance d1.
        let a1 = (-h1, h1);
        let a1_ext = (a1.0 - abs_len / SQRT_2, a1.1 + abs_len / SQRT_2);
        let a2 = (-h1, -h1);
        let a2_ext = (a2.0 - abs_len / SQRT_2, a2.1 - abs_len / SQRT_2);
        // Fan-out arms: probes at path distance d1 + d2 from S, absorber
        // beyond.
        let arm_probe = d1 + d2;
        let p_up = (s.0 + arm_probe / SQRT_2, arm_probe / SQRT_2);
        let p_dn = (s.0 + arm_probe / SQRT_2, -arm_probe / SQRT_2);
        let arm_total = arm_probe + abs_len;
        let e_up = (s.0 + arm_total / SQRT_2, arm_total / SQRT_2);
        let e_dn = (s.0 + arm_total / SQRT_2, -arm_total / SQRT_2);

        let mut shapes = ShapeSet::new();
        shapes.push(Bar::new(a1_ext, j, w));
        shapes.push(Bar::new(a2_ext, j, w));
        shapes.push(Bar::new(j, s, w));
        shapes.push(Bar::new(s, e_up, w));
        shapes.push(Bar::new(s, e_dn, w));

        let quarter = PI / 4.0;
        let antennas = vec![
            AntennaPlan {
                rect: diagonal_cross_section(a1, w, self.cell),
                nominal: a1,
                direction: (1.0 / SQRT_2, -1.0 / SQRT_2),
                feed_angle: quarter,
                segments: vec![(d1, quarter), (trunk, 0.0), (d1 + d2, quarter)],
            },
            AntennaPlan {
                rect: diagonal_cross_section(a2, w, self.cell),
                nominal: a2,
                direction: (1.0 / SQRT_2, 1.0 / SQRT_2),
                feed_angle: quarter,
                segments: vec![(d1, quarter), (trunk, 0.0), (d1 + d2, quarter)],
            },
        ];

        let probes = [
            diagonal_cross_section(p_up, w, self.cell),
            diagonal_cross_section(p_dn, w, self.cell),
        ];

        let absorbers = vec![
            AbsorberPlan::diag(a1_ext, a1, w, false),
            AbsorberPlan::diag(a2_ext, a2, w, false),
            AbsorberPlan::diag(p_up, e_up, w, true),
            AbsorberPlan::diag(p_dn, e_dn, w, true),
        ];

        Ok(GatePlan {
            shapes,
            antennas,
            probes,
            absorbers,
            bounds: (
                a1_ext.0.min(a2_ext.0) - pad,
                a2_ext.1.min(e_dn.1) - pad,
                e_up.0.max(e_dn.0) + pad,
                a1_ext.1.max(e_up.1) + pad,
            ),
            transit_distance: layout.path_length() + abs_len,
        })
    }

    /// Rasterizes, wires and runs a gate plan.
    fn execute(
        &self,
        plan: GatePlan,
        drives: &[DriveSpec],
        wavelength: f64,
    ) -> Result<GateRun, SwGateError> {
        self.measure(self.prepare(plan, drives, wavelength)?)
    }

    /// Rasterizes and wires a gate plan into a ready-to-run simulation
    /// plus the timing and probe metadata the measurement phase needs.
    fn prepare(
        &self,
        plan: GatePlan,
        drives: &[DriveSpec],
        wavelength: f64,
    ) -> Result<PreparedGate, SwGateError> {
        assert_eq!(
            drives.len(),
            plan.antennas.len(),
            "drive count must match the plan's antenna count"
        );
        let frequency = self.drive_frequency(wavelength);
        let k_nominal = 2.0 * PI / wavelength;
        let period = 1.0 / frequency;

        // Mesh: shift plan coordinates into the first quadrant. The
        // shift is snapped to whole cells so the plan's mirror-symmetry
        // axis (y = 0) lands exactly on a cell boundary — otherwise the
        // two halves of the gate rasterize differently and the output
        // symmetry (and the interference contrast) degrades.
        let (x0, y0, x1, y1) = plan.bounds;
        let shift = (
            (-x0 / self.cell).ceil() * self.cell,
            (-y0 / self.cell).ceil() * self.cell,
        );
        let nx = ((x1 + shift.0) / self.cell).ceil() as usize + 1;
        let ny = ((y1 + shift.1) / self.cell).ceil() as usize + 1;
        let mut mesh = Mesh::new(nx, ny, [self.cell, self.cell, self.film.thickness()])?;
        let shifted = ShiftedShape {
            inner: plan.shapes,
            dx: shift.0,
            dy: shift.1,
        };
        if let Some((amplitude, correlation, seed)) = self.roughness {
            let rough = magnum::geometry::Rough::new(shifted, amplitude, correlation, seed);
            rasterize(&mut mesh, &rough);
        } else {
            rasterize(&mut mesh, &shifted);
        }

        // Damping map with absorbers.
        let mut alpha = vec![self.film.alpha(); mesh.cell_count()];
        for absorber in &plan.absorbers {
            absorber.apply(
                &mesh,
                shift,
                self.alpha_absorber,
                self.film.alpha(),
                &mut alpha,
            );
        }

        // Antennas with phase encoding, lattice compensation and antenna
        // centroid correction (rasterization quantizes the footprint to
        // the cell grid, displacing its effective centre along the feed).
        let mut antennas = Vec::with_capacity(plan.antennas.len());
        for (antenna_plan, spec) in plan.antennas.iter().zip(drives.iter()) {
            let mut comp = self.compensation(frequency, k_nominal, &antenna_plan.segments)?;
            let (rx0, ry0, rx1, ry1) = shift_rect(antenna_plan.rect, shift);
            let probe_drive = Drive::logic_cw(self.drive_amplitude, frequency, 0.0);
            let antenna = Antenna::over_rect(&mesh, rx0, ry0, rx1, ry1, Vec3::X, probe_drive);
            if antenna.cells().is_empty() {
                return Err(SwGateError::Simulation {
                    reason: "an antenna footprint contains no magnetic cells".into(),
                });
            }
            if self.compensate {
                // Effective centroid of the driven cells vs the nominal
                // antenna point, projected onto the launch direction.
                let (mut cx, mut cy) = (0.0, 0.0);
                for &c in antenna.cells() {
                    let (ix, iy) = mesh.cell_index(c);
                    let (x, y) = mesh.cell_center(ix, iy);
                    cx += x;
                    cy += y;
                }
                let n = antenna.cells().len() as f64;
                let centroid = (cx / n - shift.0, cy / n - shift.1);
                let delta = (centroid.0 - antenna_plan.nominal.0) * antenna_plan.direction.0
                    + (centroid.1 - antenna_plan.nominal.1) * antenna_plan.direction.1;
                let k_feed = self.discrete_wavenumber(frequency, antenna_plan.feed_angle)?;
                // A centroid displaced toward the gate shortens the path
                // by δ, advancing the arrival phase by k·δ; retard the
                // drive to restore the nominal arrival phase.
                comp -= k_feed * delta;
            }
            let drive = Drive::logic_cw(
                self.drive_amplitude * spec.amplitude_scale,
                frequency,
                spec.phase + comp,
            );
            antennas.push(Antenna::new(antenna.cells().to_vec(), Vec3::X, drive));
        }

        // Material mirror of the film parameters (Ku reconstructed from
        // the film's anisotropy field).
        let ku1 = self.film.anisotropy_field() * MU0 * self.film.ms() / 2.0;
        let material = Material::builder()
            .saturation_magnetization(self.film.ms())
            .exchange_stiffness(self.film.aex())
            .gilbert_damping(self.film.alpha())
            .uniaxial_anisotropy(ku1, Vec3::Z)
            .gamma(self.film.gamma())
            .build()?;

        let mut builder = Simulation::builder(mesh, material)
            .uniform_magnetization(Vec3::Z)
            .damping_map(alpha)
            .temperature(self.temperature)
            .seed(self.seed)
            .integrator(if self.temperature > 0.0 {
                IntegratorKind::Heun
            } else {
                IntegratorKind::RungeKutta4
            });
        if let Some(threads) = self.threads {
            builder = builder.threads(threads);
        }
        for antenna in antennas {
            builder = builder.antenna(antenna);
        }
        let mut sim = builder.build()?;

        // Commensurate time step: an integer number of steps per sample,
        // an integer number of samples per period.
        let dt_auto = sim.time_step();
        let samples = self.samples_per_period as f64;
        let steps_per_sample = (period / samples / dt_auto).ceil().max(1.0);
        sim.set_time_step(period / (samples * steps_per_sample))?;

        // Settle: transit time (numerical group velocity) × safety.
        let vg = self.group_velocity(wavelength).max(1.0);
        let transit = plan.transit_distance / vg;
        let settle = (transit * self.settle_factor / period).ceil() * period;

        Ok(PreparedGate {
            sim,
            frequency,
            period,
            settle,
            probes: [
                shift_rect(plan.probes[0], shift),
                shift_rect(plan.probes[1], shift),
            ],
        })
    }

    /// Settles and measures one prepared gate with single-bin DFT probes
    /// at both outputs.
    fn measure(&self, prepared: PreparedGate) -> Result<GateRun, SwGateError> {
        let PreparedGate {
            mut sim,
            frequency,
            period,
            settle,
            probes,
        } = prepared;
        sim.run(settle)?;

        let probe_region = |rect: (f64, f64, f64, f64)| {
            let (rx0, ry0, rx1, ry1) = rect;
            RegionProbe::over_rect(sim.mesh(), rx0, ry0, rx1, ry1, Component::X)
        };
        let mut probe1 = DftProbe::new(probe_region(probes[0]), frequency);
        let mut probe2 = DftProbe::new(probe_region(probes[1]), frequency);
        let sample_interval = period / self.samples_per_period as f64;
        sim.run_sampled(
            self.measure_periods as f64 * period,
            sample_interval,
            |t, s| {
                probe1.sample(t, s.magnetization());
                probe2.sample(t, s.magnetization());
            },
        )?;

        let snapshot = sim.snapshot(Component::X);
        Ok(GateRun {
            o1: Complex64::from_polar(probe1.amplitude(), probe1.phase()),
            o2: Complex64::from_polar(probe2.amplitude(), probe2.phase()),
            snapshot,
            frequency,
            simulated_time: sim.time(),
        })
    }

    /// Settles and measures K prepared gates in lockstep through one
    /// batched LLG advance. Every member's trajectory — and therefore
    /// every returned [`GateRun`] — is bitwise identical to running
    /// [`MumagBackend::measure`] on it alone; batching K same-layout
    /// patterns only amortizes the field sweeps.
    fn measure_batch(&self, prepared: Vec<PreparedGate>) -> Result<Vec<GateRun>, SwGateError> {
        let k = prepared.len();
        let host = &prepared[0];
        let (frequency, period, settle) = (host.frequency, host.period, host.settle);
        for p in &prepared[1..] {
            if p.frequency != frequency || p.settle != settle {
                return Err(SwGateError::Simulation {
                    reason: "batched gate runs must share one layout (frequency and \
                             settle schedule differ)"
                        .into(),
                });
            }
        }
        let probe_rects: Vec<[(f64, f64, f64, f64); 2]> =
            prepared.iter().map(|p| p.probes).collect();
        let mut batch =
            magnum::BatchedSimulation::new(prepared.into_iter().map(|p| p.sim).collect())?;
        batch.run(settle)?;

        let mut probes: Vec<(DftProbe, DftProbe)> = (0..k)
            .map(|s| {
                let mesh = batch.member_sim(s).mesh();
                let region = |rect: (f64, f64, f64, f64)| {
                    RegionProbe::over_rect(mesh, rect.0, rect.1, rect.2, rect.3, Component::X)
                };
                (
                    DftProbe::new(region(probe_rects[s][0]), frequency),
                    DftProbe::new(region(probe_rects[s][1]), frequency),
                )
            })
            .collect();
        let sample_interval = period / self.samples_per_period as f64;
        batch.run_sampled(
            self.measure_periods as f64 * period,
            sample_interval,
            |t, b| {
                for (s, (p1, p2)) in probes.iter_mut().enumerate() {
                    let view = b.member(s);
                    p1.sample(t, &view);
                    p2.sample(t, &view);
                }
            },
        )?;

        let sims = batch.into_members();
        Ok(sims
            .into_iter()
            .zip(probes)
            .map(|(sim, (p1, p2))| GateRun {
                o1: Complex64::from_polar(p1.amplitude(), p1.phase()),
                o2: Complex64::from_polar(p2.amplitude(), p2.phase()),
                snapshot: sim.snapshot(Component::X),
                frequency,
                simulated_time: sim.time(),
            })
            .collect())
    }
}

/// A gate simulation assembled by [`MumagBackend::prepare`] and ready to
/// advance: the simulation plus the timing/probe metadata the
/// measurement phase consumes.
struct PreparedGate {
    sim: Simulation,
    frequency: f64,
    period: f64,
    settle: f64,
    /// Probe rectangles, already shifted into mesh coordinates.
    probes: [(f64, f64, f64, f64); 2],
}

/// One planned antenna: its footprint rectangle (pre-shift coordinates),
/// nominal centre, launch direction, feed angle and the path segments
/// used for phase compensation.
#[derive(Debug, Clone)]
struct AntennaPlan {
    rect: (f64, f64, f64, f64),
    /// Nominal antenna point the path lengths are measured from.
    nominal: (f64, f64),
    /// Unit vector pointing from the antenna toward the gate.
    direction: (f64, f64),
    /// Angle of the feed guide vs the mesh x-axis (for k lookup).
    feed_angle: f64,
    segments: Vec<(f64, f64)>,
}

/// A complete gate simulation plan.
struct GatePlan {
    shapes: ShapeSet,
    antennas: Vec<AntennaPlan>,
    probes: [(f64, f64, f64, f64); 2],
    absorbers: Vec<AbsorberPlan>,
    bounds: (f64, f64, f64, f64),
    transit_distance: f64,
}

/// Damping absorber over a rectangle, ramping quadratically toward the
/// deep end.
#[derive(Debug, Clone, Copy)]
struct AbsorberPlan {
    rect: (f64, f64, f64, f64),
    /// Ramp axis: 0 = x, 1 = y.
    axis: u8,
    /// Whether damping increases toward +axis.
    deep_positive: bool,
}

impl AbsorberPlan {
    /// Absorber to the left of `x_near` along a horizontal guide at `y`.
    fn left(x_far: f64, x_near: f64, y: f64, w: f64) -> Self {
        AbsorberPlan {
            rect: (x_far, y - w, x_near, y + w),
            axis: 0,
            deep_positive: false,
        }
    }

    /// Absorber to the right of `x_near` along a horizontal guide at `y`.
    fn right(x_near: f64, x_far: f64, y: f64, w: f64) -> Self {
        AbsorberPlan {
            rect: (x_near, y - w, x_far, y + w),
            axis: 0,
            deep_positive: true,
        }
    }

    /// Absorber below `y_near` along a vertical guide at `x`.
    fn down(x: f64, y_far: f64, y_near: f64, w: f64) -> Self {
        AbsorberPlan {
            rect: (x - w, y_far, x + w, y_near),
            axis: 1,
            deep_positive: false,
        }
    }

    /// Absorber above `y_near` along a vertical guide at `x`.
    fn up(x: f64, y_near: f64, y_far: f64, w: f64) -> Self {
        AbsorberPlan {
            rect: (x - w, y_near, x + w, y_far),
            axis: 1,
            deep_positive: true,
        }
    }

    /// Absorber along a diagonal guide between `near` and `far` (bounding
    /// box footprint; the ramp runs along x, `deep_positive` selects
    /// which end absorbs hardest).
    fn diag(a: (f64, f64), b: (f64, f64), w: f64, deep_positive: bool) -> Self {
        AbsorberPlan {
            rect: (
                a.0.min(b.0) - w,
                a.1.min(b.1) - w,
                a.0.max(b.0) + w,
                a.1.max(b.1) + w,
            ),
            axis: 0,
            deep_positive,
        }
    }

    fn apply(&self, mesh: &Mesh, shift: (f64, f64), alpha_max: f64, alpha0: f64, map: &mut [f64]) {
        let (x0, y0, x1, y1) = shift_rect(self.rect, shift);
        if x1 <= x0 || y1 <= y0 {
            return;
        }
        for (ix, iy) in mesh.magnetic_cells() {
            let (x, y) = mesh.cell_center(ix, iy);
            if x < x0 || x > x1 || y < y0 || y > y1 {
                continue;
            }
            let t = match (self.axis, self.deep_positive) {
                (0, true) => (x - x0) / (x1 - x0),
                (0, false) => (x1 - x) / (x1 - x0),
                (_, true) => (y - y0) / (y1 - y0),
                (_, false) => (y1 - y) / (y1 - y0),
            };
            let t = t.clamp(0.0, 1.0);
            let a = alpha0 + (alpha_max - alpha0) * t * t;
            let i = mesh.linear_index(ix, iy);
            map[i] = map[i].max(a);
        }
    }
}

/// A shape translated by `(dx, dy)` — shifts plan coordinates into mesh
/// space.
struct ShiftedShape {
    inner: ShapeSet,
    dx: f64,
    dy: f64,
}

impl Shape for ShiftedShape {
    fn contains(&self, x: f64, y: f64) -> bool {
        self.inner.contains(x - self.dx, y - self.dy)
    }
}

fn shift_rect(rect: (f64, f64, f64, f64), shift: (f64, f64)) -> (f64, f64, f64, f64) {
    (
        rect.0 + shift.0,
        rect.1 + shift.1,
        rect.2 + shift.0,
        rect.3 + shift.1,
    )
}

/// Cross-section rectangle of a horizontal guide at `(x, y)`.
fn cross_section_x(x: f64, y: f64, w: f64, cell: f64) -> (f64, f64, f64, f64) {
    (x - cell, y - w / 2.0 - cell, x + cell, y + w / 2.0 + cell)
}

/// Cross-section rectangle of a vertical guide at `(x, y)`.
fn cross_section_y(x: f64, y: f64, w: f64, cell: f64) -> (f64, f64, f64, f64) {
    (x - w / 2.0 - cell, y - cell, x + w / 2.0 + cell, y + cell)
}

/// Footprint for an antenna on a 45° diagonal guide at point `p`.
fn diagonal_cross_section(p: (f64, f64), w: f64, cell: f64) -> (f64, f64, f64, f64) {
    let r = w / 2.0 + cell;
    (p.0 - r, p.1 - r, p.0 + r, p.1 + r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_backend() -> MumagBackend {
        MumagBackend::fast()
    }

    #[test]
    fn trims_align_phases_and_balance_amplitudes() {
        // Synthetic transfer: input 0 arrives at 0.5∠0.3, input 1 at
        // 1.0∠-0.7. Equal targets must boost input 0's drive relative to
        // input 1's and rotate input 1 by +1.0 rad.
        let transfer = vec![
            (
                Complex64::from_polar(0.5, 0.3),
                Complex64::from_polar(0.5, 0.3),
            ),
            (
                Complex64::from_polar(1.0, -0.7),
                Complex64::from_polar(1.0, -0.7),
            ),
        ];
        let trims = trims_from_transfer(&transfer, &[1.0, 1.0]);
        assert_eq!(trims.len(), 2);
        // The weaker input gets the full drive; the stronger is scaled.
        assert!((trims[0].amplitude_scale - 1.0).abs() < 1e-12);
        assert!((trims[1].amplitude_scale - 0.5).abs() < 1e-12);
        // Phase offsets align both arrivals to input 0's phase.
        assert!((trims[0].phase_offset - 0.0).abs() < 1e-12);
        assert!((trims[1].phase_offset - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trims_respect_amplitude_targets() {
        // Equal transfers with MAJ3 targets [0.7, 0.7, 1.0]: inputs 0, 1
        // are deliberately under-driven.
        let one = (Complex64::ONE, Complex64::ONE);
        let trims = trims_from_transfer(&[one, one, one], &MAJ3_AMPLITUDE_TARGETS);
        assert!((trims[0].amplitude_scale - 0.7).abs() < 1e-12);
        assert!((trims[1].amplitude_scale - 0.7).abs() < 1e-12);
        assert!((trims[2].amplitude_scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trims_never_overdrive() {
        let transfer = vec![
            (
                Complex64::from_polar(0.1, 0.0),
                Complex64::from_polar(0.1, 0.0),
            ),
            (
                Complex64::from_polar(2.0, 0.0),
                Complex64::from_polar(2.0, 0.0),
            ),
        ];
        for t in trims_from_transfer(&transfer, &[1.0, 1.0]) {
            assert!(t.amplitude_scale <= 1.0 + 1e-12);
            assert!(t.amplitude_scale > 0.0);
        }
    }

    #[test]
    fn identity_trim_is_neutral() {
        let t = DriveTrim::identity();
        assert_eq!(t.amplitude_scale, 1.0);
        assert_eq!(t.phase_offset, 0.0);
    }

    #[test]
    fn trim_keys_distinguish_layouts_and_kinds() {
        let a = TrimKey::maj3(&TriangleMaj3Layout::paper());
        let b =
            TrimKey::maj3(&TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 4, 1).unwrap());
        assert_ne!(a, b);
        let x = TrimKey::xor(&TriangleXorLayout::paper());
        assert_ne!(a.kind, x.kind);
    }

    #[test]
    fn clones_share_the_trim_cache_and_linked_backends_join_it() {
        let a = fast_backend();
        let clone = a.clone();
        let linked = MumagBackend::fast().with_trim_cache_from(&a);
        let independent = fast_backend();
        let layout = TriangleXorLayout::new(55e-9, 50e-9, 110e-9, 40e-9).unwrap();
        assert_eq!(a.cached_trim_count(), 0);
        a.prewarm_xor(&layout).unwrap();
        assert_eq!(a.cached_trim_count(), 1);
        assert_eq!(clone.cached_trim_count(), 1);
        assert_eq!(linked.cached_trim_count(), 1);
        assert_eq!(independent.cached_trim_count(), 0);
        // The linked backend's trims come straight from the cache (same
        // values, no recomputation drift).
        assert_eq!(
            a.xor_trims(&layout).unwrap(),
            linked.xor_trims(&layout).unwrap()
        );
    }

    #[test]
    fn effective_width_narrows_wide_guides_only() {
        let b = fast_backend();
        // Paper guide (50 nm) at λ = 55 nm: narrowed to 0.40·λ = 22 nm.
        assert!((b.effective_width(50e-9, 55e-9) - 22e-9).abs() < 1e-15);
        // Already-narrow guides pass through.
        assert_eq!(b.effective_width(15e-9, 55e-9), 15e-9);
        // Explicit override wins.
        let b = fast_backend().with_guide_width(30e-9);
        assert_eq!(b.effective_width(50e-9, 55e-9), 30e-9);
    }

    #[test]
    fn drive_frequency_is_in_band() {
        let b = fast_backend();
        let f = b.drive_frequency(55e-9);
        // Continuum prediction is ~16 GHz for the local-demag model; the
        // discrete value sits slightly below it.
        assert!(f > 5e9 && f < 30e9, "f = {f}");
    }

    #[test]
    fn discrete_wavenumber_round_trips_on_axis() {
        let b = fast_backend();
        let k = 2.0 * PI / 55e-9;
        let f = b.drive_frequency(55e-9);
        let k_solved = b.discrete_wavenumber(f, 0.0).unwrap();
        assert!((k_solved - k).abs() / k < 1e-9);
    }

    #[test]
    fn diagonal_wavenumber_differs_slightly_from_axis() {
        let b = fast_backend();
        let f = b.drive_frequency(55e-9);
        let k_axis = b.discrete_wavenumber(f, 0.0).unwrap();
        let k_diag = b.discrete_wavenumber(f, PI / 4.0).unwrap();
        let rel = (k_diag - k_axis).abs() / k_axis;
        assert!(rel > 1e-5, "lattice anisotropy unexpectedly zero: {rel}");
        assert!(rel < 0.05, "lattice anisotropy too large: {rel}");
    }

    #[test]
    fn ninety_degrees_matches_axis_by_symmetry() {
        let b = fast_backend();
        let f = b.drive_frequency(55e-9);
        let k0 = b.discrete_wavenumber(f, 0.0).unwrap();
        let k90 = b.discrete_wavenumber(f, FRAC_PI_2).unwrap();
        assert!((k0 - k90).abs() / k0 < 1e-9);
    }

    #[test]
    fn out_of_band_frequency_is_rejected() {
        let b = fast_backend();
        assert!(b.discrete_wavenumber(1e6, 0.0).is_err());
        assert!(b.discrete_wavenumber(1e15, 0.0).is_err());
    }

    #[test]
    fn compensation_vanishes_when_disabled() {
        let b = fast_backend().without_compensation();
        let f = b.drive_frequency(55e-9);
        let phi = b
            .compensation(f, 2.0 * PI / 55e-9, &[(330e-9, PI / 4.0)])
            .unwrap();
        assert_eq!(phi, 0.0);
    }

    #[test]
    fn compensation_is_zero_for_axis_segments() {
        let b = fast_backend();
        let f = b.drive_frequency(55e-9);
        let phi = b
            .compensation(f, 2.0 * PI / 55e-9, &[(330e-9, 0.0), (55e-9, FRAC_PI_2)])
            .unwrap();
        assert!(phi.abs() < 1e-6, "axis compensation should vanish: {phi}");
    }

    #[test]
    fn group_velocity_is_physical() {
        let b = fast_backend();
        let vg = b.group_velocity(55e-9);
        assert!(vg > 100.0 && vg < 1e4, "vg = {vg}");
    }

    #[test]
    fn maj3_plan_has_expected_structure() {
        let b = fast_backend();
        let layout = TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 1, 1).unwrap();
        let plan = b.plan_maj3(&layout).unwrap();
        assert_eq!(plan.antennas.len(), 3);
        assert_eq!(plan.absorbers.len(), 5);
        assert!(plan.bounds.2 > plan.bounds.0);
        assert!(plan.bounds.3 > plan.bounds.1);
    }

    #[test]
    fn maj3_plan_bounds_scale_with_dimensions() {
        let b = fast_backend();
        let small = TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 1, 1).unwrap();
        let large = TriangleMaj3Layout::paper();
        let ps = b.plan_maj3(&small).unwrap();
        let pl = b.plan_maj3(&large).unwrap();
        assert!(pl.bounds.2 - pl.bounds.0 > ps.bounds.2 - ps.bounds.0);
        assert!(pl.transit_distance > ps.transit_distance);
    }

    // Full gate runs live in the workspace integration tests (they are
    // release-profile heavy); here we exercise one miniature XOR case to
    // keep the module self-verifying.
    #[test]
    fn mini_xor_run_produces_signal() {
        let b = MumagBackend::fast()
            .with_measure_periods(2)
            .with_settle_factor(1.2);
        let layout = TriangleXorLayout::new(55e-9, 50e-9, 110e-9, 40e-9).unwrap();
        let run = b.xor_run(&layout, [Bit::Zero, Bit::Zero]).unwrap();
        assert!(run.o1.abs() > 1e-7, "no signal at O1: {}", run.o1.abs());
        assert!(run.o2.abs() > 1e-7, "no signal at O2: {}", run.o2.abs());
        // Fan-out symmetry within a loose tolerance.
        let ratio = run.o1.abs() / run.o2.abs();
        assert!(
            (0.5..2.0).contains(&ratio),
            "outputs wildly asymmetric: {ratio}"
        );
    }
}
