//! Analytic complex-amplitude interference backend.
//!
//! Spin-wave logic is, computationally, phasor algebra: each input
//! launches a wave `s·e^{i(k·d)}·e^{−d/L_att}` (sign `s = ±1` from the
//! phase encoding), junctions superpose the arriving phasors, and the
//! detector reads magnitude and phase at the output. This module
//! evaluates the paper's gate networks (see [`crate::layout`] for the
//! topology) in closed form — microseconds instead of the minutes a
//! micromagnetic run takes — and is what regenerates Tables I and II.
//!
//! ## Junction model
//!
//! An ideal junction transmits the plain sum `a + b`. A real waveguide
//! junction loses energy when the incoming waves interfere
//! destructively: the residual field profile is mode-mismatched to the
//! outgoing guide and partially scatters. [`JunctionModel`] captures
//! this with a transmission factor `t` and a mode-mismatch exponent `β`:
//!
//! `out = t · (a + b)/√2 · η^β`, `η = |a + b| / (|a| + |b|)`
//!
//! The 1/√2 is the two-port normalization (a single wave entering a
//! symmetric Y couples about half its energy into the trunk); `β = 0`
//! with `t = 1` recovers ideal superposition, while `β > 0` suppresses
//! the partially-cancelled minority cases the way the paper's
//! micromagnetic Table I does (the residual odd-profile field is
//! mode-mismatched to the output guide).

use magnum::Complex64;

use crate::encoding::Bit;
use crate::layout::{LadderLayout, TriangleMaj3Layout, TriangleXorLayout};
use crate::op::OperatingPoint;
use crate::SwGateError;

/// Junction transmission model (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JunctionModel {
    transmission: f64,
    mismatch_exponent: f64,
}

impl JunctionModel {
    /// Ideal lossless junction: plain superposition.
    pub fn ideal() -> Self {
        JunctionModel {
            transmission: 1.0,
            mismatch_exponent: 0.0,
        }
    }

    /// Default calibrated junction: `t = 0.85`, `β = 2` — chosen so the
    /// minority-case output amplitudes of the MAJ3 gate are strongly
    /// suppressed, qualitatively matching the paper's Table I.
    pub fn calibrated() -> Self {
        JunctionModel {
            transmission: 0.85,
            mismatch_exponent: 2.0,
        }
    }

    /// Builds a custom junction model.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidLayout`] if `transmission` is not in
    /// (0, 1] or `mismatch_exponent` is negative.
    pub fn new(transmission: f64, mismatch_exponent: f64) -> Result<Self, SwGateError> {
        if !(transmission > 0.0 && transmission <= 1.0) {
            return Err(SwGateError::InvalidLayout {
                reason: format!("junction transmission must be in (0, 1], got {transmission}"),
            });
        }
        if !(mismatch_exponent >= 0.0 && mismatch_exponent.is_finite()) {
            return Err(SwGateError::InvalidLayout {
                reason: format!("mismatch exponent must be non-negative, got {mismatch_exponent}"),
            });
        }
        Ok(JunctionModel {
            transmission,
            mismatch_exponent,
        })
    }

    /// Transmission factor `t`.
    pub fn transmission(&self) -> f64 {
        self.transmission
    }

    /// Mode-mismatch exponent `β`.
    pub fn mismatch_exponent(&self) -> f64 {
        self.mismatch_exponent
    }

    /// Combines two phasors arriving at a junction.
    pub fn combine(&self, a: Complex64, b: Complex64) -> Complex64 {
        let sum = a + b;
        let denom = a.abs() + b.abs();
        if denom == 0.0 {
            return Complex64::ZERO;
        }
        let eta = sum.abs() / denom;
        sum * (self.transmission
            * std::f64::consts::FRAC_1_SQRT_2
            * eta.powf(self.mismatch_exponent))
    }
}

/// The fast analytic backend: phasor propagation over the gate networks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticBackend {
    op: OperatingPoint,
    junction: JunctionModel,
    /// Amplitude factor applied where a wave splits into two arms
    /// (energy halves ⇒ amplitude × 1/√2).
    split: f64,
    attenuation: bool,
}

impl AnalyticBackend {
    /// The paper's configuration: §IV-A operating point, calibrated
    /// junctions, attenuation on.
    ///
    /// # Panics
    ///
    /// Never panics in practice — the paper operating point is valid.
    pub fn paper() -> Self {
        AnalyticBackend {
            op: OperatingPoint::paper().expect("paper operating point is valid"),
            junction: JunctionModel::calibrated(),
            split: std::f64::consts::FRAC_1_SQRT_2,
            attenuation: true,
        }
    }

    /// Idealized backend: lossless junctions, no attenuation — pure
    /// textbook superposition (useful for property tests and teaching).
    ///
    /// # Panics
    ///
    /// Never panics in practice.
    pub fn ideal() -> Self {
        AnalyticBackend {
            op: OperatingPoint::paper().expect("paper operating point is valid"),
            junction: JunctionModel::ideal(),
            split: std::f64::consts::FRAC_1_SQRT_2,
            attenuation: false,
        }
    }

    /// Builds a backend with explicit components.
    pub fn new(op: OperatingPoint, junction: JunctionModel, attenuation: bool) -> Self {
        AnalyticBackend {
            op,
            junction,
            split: std::f64::consts::FRAC_1_SQRT_2,
            attenuation,
        }
    }

    /// The operating point in use.
    pub fn operating_point(&self) -> &OperatingPoint {
        &self.op
    }

    /// The junction model in use.
    pub fn junction(&self) -> &JunctionModel {
        &self.junction
    }

    /// Propagation phasor over `d` metres.
    fn prop(&self, d: f64) -> Complex64 {
        let decay = if self.attenuation {
            self.op.decay_over(d)
        } else {
            1.0
        };
        Complex64::cis(self.op.phase_over(d)) * decay
    }

    /// Raw complex output amplitudes `(O1, O2)` of the triangle MAJ3 gate
    /// for one input pattern, evaluated over the combine-then-split
    /// network of [`crate::layout`]. The structure past the first
    /// junction is mirror-symmetric, so the two outputs are identical by
    /// construction — the analytic statement of the fan-out-of-2.
    pub fn maj3_outputs(
        &self,
        layout: &TriangleMaj3Layout,
        inputs: [Bit; 3],
    ) -> (Complex64, Complex64) {
        let [i1, i2, i3] = inputs;
        // Stage 1: I1 (d2 feed + d1 diagonal) and I2 (d1 diagonal)
        // combine at J.
        let a1 = self.prop(layout.d2() + layout.d1()) * i1.sign();
        let a2 = self.prop(layout.d1()) * i2.sign();
        let u = self.junction.combine(a1, a2);
        // Trunk to the splitter S, then one of the two d1 fan-out arms.
        let arm = u * self.split * self.prop(layout.d3() + layout.d1());
        // I3: d2 feed to its splitter S3, one of its two d1 arms.
        let a3 = self.prop(layout.d2() + layout.d1()) * (i3.sign() * self.split);
        // Stage 2: the second interference point C2, then the d4 stub.
        let v = self.junction.combine(arm, a3);
        let out = v * self.prop(layout.d4());
        (out, out)
    }

    /// Raw complex output amplitudes `(O1, O2)` of the triangle XOR gate.
    pub fn xor_outputs(
        &self,
        layout: &TriangleXorLayout,
        inputs: [Bit; 2],
    ) -> (Complex64, Complex64) {
        let [i1, i2] = inputs;
        let a1 = self.prop(layout.d1()) * i1.sign();
        let a2 = self.prop(layout.d1()) * i2.sign();
        let u = self.junction.combine(a1, a2);
        let out = u * self.split * self.prop(layout.trunk() + layout.d1() + layout.d2());
        (out, out)
    }

    /// Raw complex output amplitudes `(O1, O2)` of the ladder baseline
    /// gate (\[22\], \[23\]): input 0 is replicated onto both rails, so O1
    /// and O2 are driven by independent copies.
    pub fn ladder_outputs(
        &self,
        layout: &LadderLayout,
        inputs: &[Bit],
    ) -> Result<(Complex64, Complex64), SwGateError> {
        if inputs.len() != layout.inputs() {
            return Err(SwGateError::InvalidLayout {
                reason: format!(
                    "ladder gate expects {} inputs, got {}",
                    layout.inputs(),
                    inputs.len()
                ),
            });
        }
        let rail = self.prop(layout.rail());
        let rung = self.prop(layout.rung());
        // One rail: the replicated copy of input 0 meets input 1, then
        // (for MAJ) input 2 arrives over a rung.
        let one_rail = |signs: &[f64]| -> Complex64 {
            let a0 = rail * signs[0];
            let a1 = rung * signs[1];
            let mut acc = self.junction.combine(a0, a1);
            for &s in &signs[2..] {
                acc = self.junction.combine(acc * rail, rung * s);
            }
            acc * rail
        };
        let signs: Vec<f64> = inputs.iter().map(|b| b.sign()).collect();
        // Both rails carry identical copies: same phasor arithmetic.
        let o = one_rail(&signs);
        Ok((o, o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::all_patterns;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn junction_ideal_is_normalized_sum() {
        let j = JunctionModel::ideal();
        let a = Complex64::new(0.4, 0.1);
        let b = Complex64::new(-0.2, 0.3);
        let out = j.combine(a, b);
        let expected = (a + b) * std::f64::consts::FRAC_1_SQRT_2;
        assert!((out - expected).abs() < 1e-15);
        // Two equal in-phase unit waves never exceed the energy budget:
        // |out|² = 2 ≤ |a|² + |b|² = 2.
        let full = j.combine(Complex64::ONE, Complex64::ONE);
        assert!((full.abs_sq() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn junction_rejects_bad_parameters() {
        assert!(JunctionModel::new(0.0, 1.0).is_err());
        assert!(JunctionModel::new(1.5, 1.0).is_err());
        assert!(JunctionModel::new(0.8, -1.0).is_err());
        assert!(JunctionModel::new(0.8, f64::NAN).is_err());
    }

    #[test]
    fn junction_suppresses_destructive_interference() {
        let j = JunctionModel::calibrated();
        let constructive = j.combine(Complex64::ONE, Complex64::ONE);
        let partial = j.combine(Complex64::ONE, Complex64::new(-0.8, 0.0));
        // Ideal ratio would be 0.2/2 = 0.1; mismatch loss pushes it lower.
        assert!(partial.abs() / constructive.abs() < 0.05);
    }

    #[test]
    fn junction_zero_inputs_give_zero() {
        let j = JunctionModel::calibrated();
        assert_eq!(j.combine(Complex64::ZERO, Complex64::ZERO), Complex64::ZERO);
    }

    #[test]
    fn maj3_decodes_majority_for_all_patterns() {
        let backend = AnalyticBackend::paper();
        let layout = TriangleMaj3Layout::paper();
        let (reference, _) = backend.maj3_outputs(&layout, [Bit::Zero; 3]);
        assert!(reference.abs() > 0.0);
        for pattern in all_patterns::<3>() {
            let (o1, o2) = backend.maj3_outputs(&layout, pattern);
            assert_eq!(o1, o2, "fan-out symmetry broken for {pattern:?}");
            let expected = Bit::majority(pattern[0], pattern[1], pattern[2]);
            // Phase detection: relative phase vs the all-zeros reference.
            let rel = (o1 * reference.conj()).arg().abs();
            let decoded = Bit::from_bool(rel > std::f64::consts::FRAC_PI_2);
            assert_eq!(
                decoded,
                expected,
                "pattern {pattern:?}: phase {rel}, amp {}",
                o1.abs() / reference.abs()
            );
        }
    }

    #[test]
    fn maj3_unanimous_cases_have_full_amplitude() {
        let backend = AnalyticBackend::paper();
        let layout = TriangleMaj3Layout::paper();
        let (zero, _) = backend.maj3_outputs(&layout, [Bit::Zero; 3]);
        let (one, _) = backend.maj3_outputs(&layout, [Bit::One; 3]);
        assert!(
            close(one.abs() / zero.abs(), 1.0, 1e-9),
            "111 must mirror 000"
        );
    }

    #[test]
    fn maj3_minority_cases_are_suppressed_below_threshold() {
        // The qualitative content of Table I: mixed inputs give weak
        // outputs (paper: 0.083-0.164 of the unanimous level).
        let backend = AnalyticBackend::paper();
        let layout = TriangleMaj3Layout::paper();
        let (reference, _) = backend.maj3_outputs(&layout, [Bit::Zero; 3]);
        for pattern in all_patterns::<3>() {
            let unanimous = pattern.iter().all(|&b| b == pattern[0]);
            if unanimous {
                continue;
            }
            let (o1, _) = backend.maj3_outputs(&layout, pattern);
            let norm = o1.abs() / reference.abs();
            assert!(
                norm < 0.5,
                "minority pattern {pattern:?} too strong: {norm}"
            );
        }
    }

    #[test]
    fn maj3_ideal_backend_matches_closed_form_minority_levels() {
        // Lossless two-stage network with the /√2 combiner normalization:
        // the unanimous case carries trunk contribution 1 and I3-arm
        // contribution 1/√2 at the second crossing; closed forms below.
        let backend = AnalyticBackend::ideal();
        let layout = TriangleMaj3Layout::paper();
        let (reference, _) = backend.maj3_outputs(&layout, [Bit::Zero; 3]);
        // I1 minority: stage-1 cancels exactly, I3 alone survives. The
        // unanimous reference carries trunk (1) + I3 arm (1/√2).
        let (tie, _) = backend.maj3_outputs(&layout, [Bit::One, Bit::Zero, Bit::Zero]);
        let expected_tie = (1.0 / 2f64.sqrt()) / (1.0 + 1.0 / 2f64.sqrt());
        assert!(
            close(tie.abs() / reference.abs(), expected_tie, 1e-9),
            "stage-1 tie amplitude = {}, expected {expected_tie}",
            tie.abs() / reference.abs()
        );
        // I3 minority: the trunk wave (from two agreeing inputs) minus
        // I3's arm.
        let (i3min, _) = backend.maj3_outputs(&layout, [Bit::Zero, Bit::Zero, Bit::One]);
        let trunk = 2.0 / 2f64.sqrt() / 2f64.sqrt(); // combine(1,1) then split
        let expected = ((trunk - 1.0 / 2f64.sqrt()) / 2f64.sqrt()).abs()
            / ((trunk + 1.0 / 2f64.sqrt()) / 2f64.sqrt());
        assert!(
            close(i3min.abs() / reference.abs(), expected, 1e-9),
            "I3-minority amplitude = {}, expected {expected}",
            i3min.abs() / reference.abs()
        );
    }

    #[test]
    fn xor_matches_table_ii_shape() {
        let backend = AnalyticBackend::paper();
        let layout = TriangleXorLayout::paper();
        let (reference, _) = backend.xor_outputs(&layout, [Bit::Zero, Bit::Zero]);
        for pattern in all_patterns::<2>() {
            let (o1, o2) = backend.xor_outputs(&layout, pattern);
            assert_eq!(o1, o2);
            let norm = o1.abs() / reference.abs();
            if pattern[0] == pattern[1] {
                assert!(norm > 0.95, "equal inputs {pattern:?}: amplitude {norm}");
            } else {
                assert!(norm < 1e-9, "unequal inputs {pattern:?}: amplitude {norm}");
            }
        }
    }

    #[test]
    fn inverting_d4_flips_the_output_phase() {
        let backend = AnalyticBackend::paper();
        let non_inv = TriangleMaj3Layout::paper();
        let inv = TriangleMaj3Layout::new(55e-9, 50e-9, 330e-9, 880e-9, 220e-9, 82.5e-9).unwrap();
        let (a, _) = backend.maj3_outputs(&non_inv, [Bit::Zero; 3]);
        let (b, _) = backend.maj3_outputs(&inv, [Bit::Zero; 3]);
        let rel = (a * b.conj()).arg().abs();
        assert!(
            close(rel, std::f64::consts::PI, 1e-6),
            "inverting layout should shift phase by π, got {rel}"
        );
    }

    #[test]
    fn ladder_decodes_majority_and_validates_arity() {
        let backend = AnalyticBackend::paper();
        let layout = LadderLayout::paper_maj3();
        let (reference, _) = backend.ladder_outputs(&layout, &[Bit::Zero; 3]).unwrap();
        for pattern in all_patterns::<3>() {
            let (o1, o2) = backend.ladder_outputs(&layout, &pattern).unwrap();
            assert_eq!(o1, o2);
            let rel = (o1 * reference.conj()).arg().abs();
            let decoded = Bit::from_bool(rel > std::f64::consts::FRAC_PI_2);
            assert_eq!(decoded, Bit::majority(pattern[0], pattern[1], pattern[2]));
        }
        assert!(backend.ladder_outputs(&layout, &[Bit::Zero; 2]).is_err());
    }

    #[test]
    fn attenuation_reduces_amplitude_but_not_logic() {
        let lossy = AnalyticBackend::paper();
        let lossless =
            AnalyticBackend::new(*lossy.operating_point(), JunctionModel::calibrated(), false);
        let layout = TriangleMaj3Layout::paper();
        let (a, _) = lossy.maj3_outputs(&layout, [Bit::Zero; 3]);
        let (b, _) = lossless.maj3_outputs(&layout, [Bit::Zero; 3]);
        assert!(a.abs() < b.abs());
        // Phase unchanged (attenuation is real-valued).
        assert!(close((a * b.conj()).arg(), 0.0, 1e-9));
    }

    #[test]
    fn integer_wavelength_paths_make_outputs_real_positive_for_zeros() {
        // All the paper's MAJ3 path lengths are n·λ, so the all-zeros
        // output phasor has phase ≈ 0 (mod 2π).
        let backend = AnalyticBackend::paper();
        let (o, _) = backend.maj3_outputs(&TriangleMaj3Layout::paper(), [Bit::Zero; 3]);
        assert!(o.arg().abs() < 1e-6, "phase = {}", o.arg());
        assert!(o.re > 0.0);
    }
}
