//! Gate-level netlists with fan-out accounting.
//!
//! The paper's motivation (§I): a multi-output gate "can be used to feed
//! multiple inputs of next stage gates simultaneously", avoiding gate
//! replication. This module provides a small netlist layer that tracks
//! exactly that: every spin-wave gate output can drive **at most two**
//! loads (its fan-out of 2); driving more requires replicating the gate,
//! and the transducer accounting reflects it — which is what the
//! circuit-level energy comparisons in `swperf` consume.

use std::fmt;

use crate::encoding::Bit;
use crate::SwGateError;

/// The logic function of a netlist node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// 3-input majority (the triangle MAJ3 gate).
    Maj3,
    /// 2-input XOR (the triangle XOR gate).
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2-input AND (MAJ3 with I3 = 0).
    And,
    /// 2-input OR (MAJ3 with I3 = 1).
    Or,
    /// 2-input NAND (inverting AND).
    Nand,
    /// 2-input NOR (inverting OR).
    Nor,
    /// Inverter (a waveguide with an (n+½)λ section).
    Not,
    /// Repeater: regenerates a strong spin wave (\[37\]); logically a
    /// buffer. §III-A: "the gate fan-out capabilities can be extended
    /// beyond 2 by using directional couplers \[36\] to split the spin
    /// wave into multiple arms and using repeaters \[37\] to regenerate a
    /// strong SW".
    Repeater,
}

impl GateKind {
    /// Number of logic inputs.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Maj3 => 3,
            GateKind::Not | GateKind::Repeater => 1,
            _ => 2,
        }
    }

    /// Evaluates the ideal logic function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[Bit]) -> Bit {
        assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self:?}");
        match self {
            GateKind::Maj3 => Bit::majority(inputs[0], inputs[1], inputs[2]),
            GateKind::Xor => Bit::xor(inputs[0], inputs[1]),
            GateKind::Xnor => !Bit::xor(inputs[0], inputs[1]),
            GateKind::And => Bit::from_bool(inputs[0].as_bool() && inputs[1].as_bool()),
            GateKind::Or => Bit::from_bool(inputs[0].as_bool() || inputs[1].as_bool()),
            GateKind::Nand => !Bit::from_bool(inputs[0].as_bool() && inputs[1].as_bool()),
            GateKind::Nor => !Bit::from_bool(inputs[0].as_bool() || inputs[1].as_bool()),
            GateKind::Not => !inputs[0],
            GateKind::Repeater => inputs[0],
        }
    }

    /// Number of spin-wave excitation transducers in the triangle
    /// implementation of this gate (control inputs count: they are
    /// driven waves too).
    pub fn excitation_cells(self) -> usize {
        match self {
            GateKind::Maj3 | GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => 3,
            GateKind::Xor | GateKind::Xnor => 2,
            GateKind::Not | GateKind::Repeater => 1,
        }
    }

    /// Number of detection transducers (the FO2 gates expose 2 outputs;
    /// the inverter exposes 1).
    pub fn detection_cells(self) -> usize {
        match self {
            GateKind::Not | GateKind::Repeater => 1,
            _ => 2,
        }
    }

    /// Maximum fan-out an output of this gate supports without
    /// repeaters/replication.
    pub fn max_fanout(self) -> usize {
        match self {
            GateKind::Not => 1,
            // A repeater's regenerated wave is split by a directional
            // coupler into two arms ([36]).
            _ => 2,
        }
    }
}

/// A signal in the netlist: a primary input or a gate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Primary input `i`.
    Input(usize),
    /// Output of gate `g` (both physical outputs carry the same value).
    Gate(usize),
}

/// A gate instance.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    kind: GateKind,
    inputs: Vec<Signal>,
}

/// A feed-forward gate netlist.
///
/// ```
/// use swgates::circuit::{Circuit, GateKind, Signal};
/// use swgates::encoding::Bit;
///
/// # fn main() -> Result<(), swgates::SwGateError> {
/// // carry = MAJ3(a, b, cin)
/// let mut c = Circuit::new(3);
/// let carry = c.add_gate(
///     GateKind::Maj3,
///     vec![Signal::Input(0), Signal::Input(1), Signal::Input(2)],
/// )?;
/// c.mark_output(carry)?;
/// let out = c.evaluate(&[Bit::One, Bit::One, Bit::Zero])?;
/// assert_eq!(out, vec![Bit::One]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_inputs: usize,
    nodes: Vec<Node>,
    outputs: Vec<Signal>,
}

impl Circuit {
    /// Creates an empty circuit with `n_inputs` primary inputs.
    pub fn new(n_inputs: usize) -> Self {
        Circuit {
            n_inputs,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// Number of gate instances.
    pub fn gate_count(&self) -> usize {
        self.nodes.len()
    }

    /// The declared circuit outputs.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// The kind of gate `index`, if it exists.
    pub fn gate_kind(&self, index: usize) -> Option<GateKind> {
        self.nodes.get(index).map(|n| n.kind)
    }

    /// The input signals of gate `index`, if it exists.
    pub fn gate_inputs(&self, index: usize) -> Option<&[Signal]> {
        self.nodes.get(index).map(|n| n.inputs.as_slice())
    }

    /// Adds a gate, returning its output signal. Inputs may reference
    /// primary inputs or previously added gates only (feed-forward).
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidLayout`] for arity mismatches or
    /// references to undefined/later signals.
    pub fn add_gate(&mut self, kind: GateKind, inputs: Vec<Signal>) -> Result<Signal, SwGateError> {
        if inputs.len() != kind.arity() {
            return Err(SwGateError::InvalidLayout {
                reason: format!(
                    "{kind:?} takes {} inputs, got {}",
                    kind.arity(),
                    inputs.len()
                ),
            });
        }
        for signal in &inputs {
            self.check_signal(*signal)?;
        }
        self.nodes.push(Node { kind, inputs });
        Ok(Signal::Gate(self.nodes.len() - 1))
    }

    /// Declares a circuit output.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidLayout`] for undefined signals.
    pub fn mark_output(&mut self, signal: Signal) -> Result<(), SwGateError> {
        self.check_signal(signal)?;
        self.outputs.push(signal);
        Ok(())
    }

    fn check_signal(&self, signal: Signal) -> Result<(), SwGateError> {
        let ok = match signal {
            Signal::Input(i) => i < self.n_inputs,
            Signal::Gate(g) => g < self.nodes.len(),
        };
        if ok {
            Ok(())
        } else {
            Err(SwGateError::InvalidLayout {
                reason: format!("signal {signal:?} is not defined at this point"),
            })
        }
    }

    /// Evaluates the circuit on a primary input assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SwGateError::InvalidLayout`] if the assignment length
    /// does not match the input count.
    pub fn evaluate(&self, inputs: &[Bit]) -> Result<Vec<Bit>, SwGateError> {
        if inputs.len() != self.n_inputs {
            return Err(SwGateError::InvalidLayout {
                reason: format!(
                    "circuit has {} inputs, assignment has {}",
                    self.n_inputs,
                    inputs.len()
                ),
            });
        }
        let mut values = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let args: Vec<Bit> = node
                .inputs
                .iter()
                .map(|s| match *s {
                    Signal::Input(i) => inputs[i],
                    Signal::Gate(g) => values[g],
                })
                .collect();
            values.push(node.kind.eval(&args));
        }
        Ok(self
            .outputs
            .iter()
            .map(|s| match *s {
                Signal::Input(i) => inputs[i],
                Signal::Gate(g) => values[g],
            })
            .collect())
    }

    /// Number of loads on a signal (gate inputs plus circuit outputs).
    pub fn fanout_of(&self, signal: Signal) -> usize {
        let gate_loads: usize = self
            .nodes
            .iter()
            .flat_map(|n| n.inputs.iter())
            .filter(|&&s| s == signal)
            .count();
        let output_loads = self.outputs.iter().filter(|&&s| s == signal).count();
        gate_loads + output_loads
    }

    /// Signals whose fan-out exceeds what their producing gate supports
    /// (2 for the FO2 gates). These would need replication or repeaters.
    pub fn fanout_violations(&self) -> Vec<(Signal, usize)> {
        let mut violations = Vec::new();
        for (g, node) in self.nodes.iter().enumerate() {
            let signal = Signal::Gate(g);
            let fanout = self.fanout_of(signal);
            if fanout > node.kind.max_fanout() {
                violations.push((signal, fanout));
            }
        }
        violations
    }

    /// Total (excitation, detection) transducer counts over all gates —
    /// the quantities the `swperf` energy model consumes.
    pub fn transducer_counts(&self) -> (usize, usize) {
        self.nodes.iter().fold((0, 0), |(e, d), n| {
            (e + n.kind.excitation_cells(), d + n.kind.detection_cells())
        })
    }

    /// Builds a full adder: `sum = a ⊕ b ⊕ cin`, `carry = MAJ3(a, b, cin)`
    /// — the §II-B motivating example ("the Full Adder carry out is
    /// computed as a 3-input majority"). Inputs: `[a, b, cin]`; outputs:
    /// `[sum, carry]`.
    ///
    /// The `swnet` compiler builds the same circuit from its netlist IR:
    /// `swnet::arith::full_adder()` lowers to a structurally identical
    /// `Circuit` (asserted by `swnet/tests/parity.rs`), so this
    /// hand-built constructor is kept as the dependency-free reference.
    pub fn full_adder() -> Circuit {
        let mut c = Circuit::new(3);
        let (a, b, cin) = (Signal::Input(0), Signal::Input(1), Signal::Input(2));
        let ab = c
            .add_gate(GateKind::Xor, vec![a, b])
            .expect("valid by construction");
        let sum = c
            .add_gate(GateKind::Xor, vec![ab, cin])
            .expect("valid by construction");
        let carry = c
            .add_gate(GateKind::Maj3, vec![a, b, cin])
            .expect("valid by construction");
        c.mark_output(sum).expect("valid");
        c.mark_output(carry).expect("valid");
        c
    }

    /// Builds an `n`-bit ripple-carry adder from full-adder stages.
    /// Inputs: `a[0..n], b[0..n], cin`; outputs: `sum[0..n], cout`.
    /// Every carry drives exactly 2 loads (the next stage's XOR and
    /// MAJ3) — the canonical use of the fan-out of 2.
    ///
    /// `swnet::arith::ripple_carry_adder(n)` compiles to a structurally
    /// identical `Circuit` from the netlist IR (see
    /// `swnet/tests/parity.rs`); this constructor remains as the
    /// dependency-free reference.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn ripple_carry_adder(n: usize) -> Circuit {
        assert!(n > 0, "adder width must be at least 1");
        let mut c = Circuit::new(2 * n + 1);
        let mut carry = Signal::Input(2 * n);
        let mut sums = Vec::with_capacity(n);
        for i in 0..n {
            let a = Signal::Input(i);
            let b = Signal::Input(n + i);
            let ab = c.add_gate(GateKind::Xor, vec![a, b]).expect("valid");
            let sum = c.add_gate(GateKind::Xor, vec![ab, carry]).expect("valid");
            let next = c
                .add_gate(GateKind::Maj3, vec![a, b, carry])
                .expect("valid");
            sums.push(sum);
            carry = next;
        }
        for s in sums {
            c.mark_output(s).expect("valid");
        }
        c.mark_output(carry).expect("valid");
        c
    }
}

/// Rewrites a circuit so every gate output respects its fan-out limit,
/// inserting [`GateKind::Repeater`] chains (\[36\], \[37\]) where a signal
/// drives more loads than the producing gate supports — the §III-A
/// recipe for fan-out beyond 2.
///
/// Primary inputs are assumed externally buffered (unlimited fan-out).
/// The rewritten circuit computes the same function; its extra repeater
/// levels show up in the `swperf` delay/energy estimates.
///
/// This is the chain-based legalizer; `swnet::arith::legalize_circuit`
/// does the same job through the netlist IR with *balanced* splitter
/// trees (logarithmic added depth instead of linear) and is what the
/// compiler pipeline uses. Both outputs are functionally equivalent.
///
/// # Errors
///
/// Returns [`SwGateError::InvalidLayout`] only if the input circuit is
/// malformed (cannot happen for circuits built through [`Circuit`]'s
/// validated API).
pub fn insert_repeaters(circuit: &Circuit) -> Result<Circuit, SwGateError> {
    use std::collections::HashMap;

    // Load counts per original gate signal.
    let mut loads: HashMap<usize, usize> = HashMap::new();
    for g in 0..circuit.gate_count() {
        loads.insert(g, circuit.fanout_of(Signal::Gate(g)));
    }

    let mut out = Circuit::new(circuit.input_count());
    // For each original gate: the queue of (signal, remaining slots).
    let mut slots: HashMap<usize, Vec<(Signal, usize)>> = HashMap::new();

    let take = |slots: &mut HashMap<usize, Vec<(Signal, usize)>>,
                g: usize|
     -> Result<Signal, SwGateError> {
        let queue = slots
            .get_mut(&g)
            .ok_or_else(|| SwGateError::InvalidLayout {
                reason: format!("signal Gate({g}) consumed before production"),
            })?;
        let front = queue.last_mut().ok_or_else(|| SwGateError::InvalidLayout {
            reason: format!("signal Gate({g}) over-consumed"),
        })?;
        let signal = front.0;
        front.1 -= 1;
        if front.1 == 0 {
            queue.pop();
        }
        Ok(signal)
    };

    let map_signal = |slots: &mut HashMap<usize, Vec<(Signal, usize)>>,
                      s: Signal|
     -> Result<Signal, SwGateError> {
        match s {
            Signal::Input(i) => Ok(Signal::Input(i)),
            Signal::Gate(g) => take(slots, g),
        }
    };

    for g in 0..circuit.gate_count() {
        let kind = circuit.gate_kind(g).expect("index in range");
        let inputs: Result<Vec<Signal>, SwGateError> = circuit
            .gate_inputs(g)
            .expect("index in range")
            .iter()
            .map(|s| map_signal(&mut slots, *s))
            .collect();
        let new_sig = out.add_gate(kind, inputs?)?;
        let n = loads.get(&g).copied().unwrap_or(0).max(1);
        let cap = kind.max_fanout();
        // Build the slot queue (in reverse so `last_mut` pops in order):
        // the producer serves up to `cap` loads; beyond that, a repeater
        // chain extends the supply, each repeater consuming one slot and
        // providing max_fanout fresh ones.
        let mut queue: Vec<(Signal, usize)> = Vec::new();
        if n <= cap {
            queue.push((new_sig, n));
        } else {
            let mut remaining = n;
            let mut current = new_sig;
            let mut chain: Vec<(Signal, usize)> = Vec::new();
            while remaining > cap {
                // `current` feeds (cap - 1) real loads plus the repeater.
                chain.push((current, cap - 1));
                current = out.add_gate(GateKind::Repeater, vec![current])?;
                remaining -= cap - 1;
            }
            chain.push((current, remaining));
            chain.reverse();
            queue = chain;
        }
        slots.insert(g, queue);
    }

    for output in circuit.outputs() {
        let mapped = map_signal(&mut slots, *output)?;
        out.mark_output(mapped)?;
    }
    Ok(out)
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} inputs, {} gates, {} outputs",
            self.n_inputs,
            self.nodes.len(),
            self.outputs.len()
        )?;
        for (g, node) in self.nodes.iter().enumerate() {
            writeln!(f, "  g{g}: {:?} <- {:?}", node.kind, node.inputs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::all_patterns;

    #[test]
    fn gate_kind_arity_and_eval() {
        assert_eq!(GateKind::Maj3.arity(), 3);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::Xor.arity(), 2);
        assert_eq!(GateKind::Not.eval(&[Bit::Zero]), Bit::One);
        assert_eq!(GateKind::Nand.eval(&[Bit::One, Bit::One]), Bit::Zero);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn eval_panics_on_arity_mismatch() {
        GateKind::Maj3.eval(&[Bit::Zero]);
    }

    #[test]
    fn add_gate_validates_arity_and_references() {
        let mut c = Circuit::new(2);
        assert!(c.add_gate(GateKind::Xor, vec![Signal::Input(0)]).is_err());
        assert!(c
            .add_gate(GateKind::Xor, vec![Signal::Input(0), Signal::Input(5)])
            .is_err());
        assert!(c
            .add_gate(GateKind::Xor, vec![Signal::Input(0), Signal::Gate(0)])
            .is_err());
        let g = c
            .add_gate(GateKind::Xor, vec![Signal::Input(0), Signal::Input(1)])
            .unwrap();
        assert_eq!(g, Signal::Gate(0));
    }

    #[test]
    fn full_adder_truth_table_is_correct() {
        let fa = Circuit::full_adder();
        for pattern in all_patterns::<3>() {
            let out = fa.evaluate(&pattern).unwrap();
            let total = pattern.iter().map(|b| b.as_u8() as usize).sum::<usize>();
            assert_eq!(out[0].as_u8() as usize, total % 2, "sum for {pattern:?}");
            assert_eq!(out[1].as_u8() as usize, total / 2, "carry for {pattern:?}");
        }
    }

    #[test]
    fn full_adder_respects_fanout_limit() {
        let fa = Circuit::full_adder();
        assert!(fa.fanout_violations().is_empty());
    }

    #[test]
    fn ripple_carry_adder_adds() {
        let n = 4;
        let adder = Circuit::ripple_carry_adder(n);
        for a in 0..16u32 {
            for b in 0..16u32 {
                for cin in 0..2u32 {
                    let mut inputs = Vec::with_capacity(2 * n + 1);
                    for i in 0..n {
                        inputs.push(Bit::from_bool(a >> i & 1 == 1));
                    }
                    for i in 0..n {
                        inputs.push(Bit::from_bool(b >> i & 1 == 1));
                    }
                    inputs.push(Bit::from_bool(cin == 1));
                    let out = adder.evaluate(&inputs).unwrap();
                    let mut result = 0u32;
                    for (i, bit) in out.iter().enumerate() {
                        result |= (bit.as_u8() as u32) << i;
                    }
                    assert_eq!(result, a + b + cin, "{a} + {b} + {cin}");
                }
            }
        }
    }

    #[test]
    fn ripple_carry_adder_uses_fanout_of_two() {
        let adder = Circuit::ripple_carry_adder(8);
        assert!(adder.fanout_violations().is_empty());
        // Interior carries drive exactly two loads.
        // Gate indices: stage i has gates (3i, 3i+1, 3i+2); carry = 3i+2.
        for stage in 0..7 {
            let carry = Signal::Gate(3 * stage + 2);
            assert_eq!(adder.fanout_of(carry), 2, "carry of stage {stage}");
        }
    }

    #[test]
    fn fanout_violation_is_detected() {
        let mut c = Circuit::new(1);
        let g = c.add_gate(GateKind::Not, vec![Signal::Input(0)]).unwrap();
        // NOT supports fan-out 1; wire it to two loads.
        c.add_gate(GateKind::Xor, vec![g, g]).unwrap();
        let violations = c.fanout_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].0, g);
        assert_eq!(violations[0].1, 2);
    }

    #[test]
    fn transducer_counts_accumulate() {
        let fa = Circuit::full_adder();
        // 2 XOR (2 exc each) + 1 MAJ3 (3 exc): 7 excitation; 3 gates × 2
        // detection: 6.
        assert_eq!(fa.transducer_counts(), (7, 6));
    }

    #[test]
    fn evaluate_validates_input_length() {
        let fa = Circuit::full_adder();
        assert!(fa.evaluate(&[Bit::Zero]).is_err());
    }

    #[test]
    fn repeater_is_a_buffer() {
        assert_eq!(GateKind::Repeater.arity(), 1);
        assert_eq!(GateKind::Repeater.eval(&[Bit::One]), Bit::One);
        assert_eq!(GateKind::Repeater.eval(&[Bit::Zero]), Bit::Zero);
        assert_eq!(GateKind::Repeater.excitation_cells(), 1);
        assert_eq!(GateKind::Repeater.max_fanout(), 2);
    }

    #[test]
    fn insert_repeaters_fixes_high_fanout() {
        // One XOR whose output drives 5 loads.
        let mut c = Circuit::new(2);
        let g = c
            .add_gate(GateKind::Xor, vec![Signal::Input(0), Signal::Input(1)])
            .unwrap();
        for _ in 0..2 {
            let n = c.add_gate(GateKind::Xor, vec![g, g]).unwrap();
            c.mark_output(n).unwrap();
        }
        c.mark_output(g).unwrap();
        assert_eq!(c.fanout_of(g), 5);
        assert_eq!(c.fanout_violations().len(), 1);

        let fixed = insert_repeaters(&c).unwrap();
        assert!(fixed.fanout_violations().is_empty(), "{fixed}");
        // Repeaters were added: 5 loads at fan-out 2 need 3 repeaters.
        assert_eq!(fixed.gate_count(), c.gate_count() + 3);
        // Logic is unchanged.
        for pattern in all_patterns::<2>() {
            assert_eq!(
                c.evaluate(&pattern).unwrap(),
                fixed.evaluate(&pattern).unwrap(),
                "pattern {pattern:?}"
            );
        }
    }

    #[test]
    fn insert_repeaters_is_identity_for_compliant_circuits() {
        let fa = Circuit::full_adder();
        let fixed = insert_repeaters(&fa).unwrap();
        assert_eq!(fixed.gate_count(), fa.gate_count());
        for pattern in all_patterns::<3>() {
            assert_eq!(
                fa.evaluate(&pattern).unwrap(),
                fixed.evaluate(&pattern).unwrap()
            );
        }
    }

    #[test]
    fn insert_repeaters_handles_adders() {
        let adder = Circuit::ripple_carry_adder(4);
        let fixed = insert_repeaters(&adder).unwrap();
        assert!(fixed.fanout_violations().is_empty());
        // Spot-check an addition.
        let mut inputs = vec![Bit::Zero; 9];
        inputs[0] = Bit::One; // a = 1
        inputs[4] = Bit::One; // b = 1
        let out = fixed.evaluate(&inputs).unwrap();
        assert_eq!(out[1], Bit::One, "1 + 1 = 0b10");
        assert_eq!(out[0], Bit::Zero);
    }

    #[test]
    fn display_lists_gates() {
        let fa = Circuit::full_adder();
        let text = fa.to_string();
        assert!(text.contains("3 inputs"));
        assert!(text.contains("Maj3"));
    }
}
