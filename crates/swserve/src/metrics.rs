//! Live service metrics: per-endpoint counters and latency histograms.
//!
//! Everything here is lock-free atomics so the hot path never blocks on
//! a metrics mutex. Latencies go into log2-spaced microsecond buckets —
//! coarse, but enough to read p50/p99 off `/metrics` without keeping
//! every sample; the loadtest measures exact client-side latencies
//! separately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use swjson::Json;

/// Number of log2 latency buckets: bucket `i` holds samples with
/// `latency_us < 2^i`, the last bucket is a catch-all.
pub const BUCKETS: usize = 28;

/// A log2-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Records one latency sample.
    pub fn observe(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The mean observed latency, or `None` before any samples. This is
    /// what the `Retry-After` derivation uses as its per-request cost
    /// estimate.
    pub fn mean(&self) -> Option<Duration> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let total = self.total_us.load(Ordering::Relaxed);
        Some(Duration::from_micros(total / count))
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q ≤ 1) in
    /// microseconds: the upper edge of the bucket containing it.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds samples in [2^(i-1), 2^i).
                return 1u64 << i;
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// The histogram as JSON: count, mean/max, bucketed counts (only
    /// non-empty buckets, as `{"le_us": 2^i, "count": n}`), and p50/p99
    /// upper-bound estimates.
    pub fn render(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then(|| {
                    Json::obj([
                        ("le_us", Json::Num((1u64 << i) as f64)),
                        ("count", Json::Num(count as f64)),
                    ])
                })
            })
            .collect();
        let count = self.count();
        let mean = if count > 0 {
            self.total_us.load(Ordering::Relaxed) as f64 / count as f64
        } else {
            0.0
        };
        Json::obj([
            ("count", Json::Num(count as f64)),
            ("mean_us", Json::Num(mean)),
            (
                "max_us",
                Json::Num(self.max_us.load(Ordering::Relaxed) as f64),
            ),
            ("p50_us", Json::Num(self.quantile_us(0.50) as f64)),
            ("p99_us", Json::Num(self.quantile_us(0.99) as f64)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// Counters and latency for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl EndpointMetrics {
    /// Records one served request (any status) with its latency;
    /// `error` marks 4xx/5xx responses.
    pub fn observe(&self, latency: Duration, error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.observe(latency);
    }

    /// Total requests seen.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with an error status.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Mean latency over every observed request, or `None` before the
    /// first sample.
    pub fn mean_latency(&self) -> Option<Duration> {
        self.latency.mean()
    }

    /// The endpoint's metrics as JSON.
    pub fn render(&self) -> Json {
        Json::obj([
            ("requests", Json::Num(self.requests() as f64)),
            ("errors", Json::Num(self.errors() as f64)),
            ("latency", self.latency.render()),
        ])
    }
}

/// The whole server's metrics, surfaced at `GET /metrics`.
#[derive(Debug)]
pub struct ServerMetrics {
    /// `POST /v1/gate/eval`.
    pub gate_eval: EndpointMetrics,
    /// `POST /v1/netlist/eval`.
    pub netlist_eval: EndpointMetrics,
    /// `POST /v1/jobs`.
    pub jobs_submit: EndpointMetrics,
    /// `GET /v1/jobs/:id`.
    pub jobs_get: EndpointMetrics,
    /// `GET /healthz`.
    pub healthz: EndpointMetrics,
    /// `GET /metrics`.
    pub metrics: EndpointMetrics,
    /// Everything else (404s, admin).
    pub other: EndpointMetrics,

    /// Gate-eval answers served from the result cache.
    pub cache_hits: AtomicU64,
    /// Gate-eval answers computed fresh (single-flight leaders).
    pub cache_misses: AtomicU64,
    /// Gate-eval answers that piggybacked on an identical in-flight
    /// evaluation.
    pub cache_coalesced: AtomicU64,
    /// Requests shed with 429 by admission control.
    pub shed: AtomicU64,
    /// Micromagnetic jobs accepted.
    pub jobs_accepted: AtomicU64,
    /// Micromagnetic jobs finished successfully.
    pub jobs_done: AtomicU64,
    /// Micromagnetic jobs that failed.
    pub jobs_failed: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,

    /// Eval answers served from the disk store (`X-Cache: disk`).
    pub store_hits: AtomicU64,
    /// Disk-store lookups that found nothing.
    pub store_misses: AtomicU64,
    /// Records written to the disk store.
    pub store_puts: AtomicU64,
    /// Body bytes read back from the disk store.
    pub store_read_bytes: AtomicU64,
    /// Segment compactions the disk store has run.
    pub store_compactions: AtomicU64,
    /// Entries the manifest pre-warm inserted at boot.
    pub store_prewarm_records: AtomicU64,
    /// Live entries in the disk store (gauge).
    pub store_entries: AtomicU64,
    /// Total segment bytes on disk (gauge).
    pub store_disk_bytes: AtomicU64,

    /// When the process started serving (for `uptime_s`).
    started: Instant,
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics {
            gate_eval: EndpointMetrics::default(),
            netlist_eval: EndpointMetrics::default(),
            jobs_submit: EndpointMetrics::default(),
            jobs_get: EndpointMetrics::default(),
            healthz: EndpointMetrics::default(),
            metrics: EndpointMetrics::default(),
            other: EndpointMetrics::default(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            jobs_accepted: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_puts: AtomicU64::new(0),
            store_read_bytes: AtomicU64::new(0),
            store_compactions: AtomicU64::new(0),
            store_prewarm_records: AtomicU64::new(0),
            store_entries: AtomicU64::new(0),
            store_disk_bytes: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

impl ServerMetrics {
    /// Copies a disk-store counter snapshot into the metrics atomics so
    /// `/metrics` renders store state without holding a store handle.
    pub fn sync_store(&self, counters: &swstore::StoreCounters) {
        self.store_hits.store(counters.hits, Ordering::Relaxed);
        self.store_misses.store(counters.misses, Ordering::Relaxed);
        self.store_puts.store(counters.puts, Ordering::Relaxed);
        self.store_read_bytes
            .store(counters.read_bytes, Ordering::Relaxed);
        self.store_compactions
            .store(counters.compactions, Ordering::Relaxed);
        self.store_prewarm_records
            .store(counters.prewarm_records, Ordering::Relaxed);
        self.store_entries
            .store(counters.entries, Ordering::Relaxed);
        self.store_disk_bytes
            .store(counters.disk_bytes, Ordering::Relaxed);
    }
    /// The full metrics document.
    pub fn render(&self) -> Json {
        Json::obj([
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            (
                "uptime_s",
                Json::Num(self.started.elapsed().as_secs_f64().floor()),
            ),
            (
                "endpoints",
                Json::obj([
                    ("gate_eval", self.gate_eval.render()),
                    ("netlist_eval", self.netlist_eval.render()),
                    ("jobs_submit", self.jobs_submit.render()),
                    ("jobs_get", self.jobs_get.render()),
                    ("healthz", self.healthz.render()),
                    ("metrics", self.metrics.render()),
                    ("other", self.other.render()),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("hits", load(&self.cache_hits)),
                    ("misses", load(&self.cache_misses)),
                    ("coalesced", load(&self.cache_coalesced)),
                ]),
            ),
            (
                "store",
                Json::obj([
                    ("hits", load(&self.store_hits)),
                    ("misses", load(&self.store_misses)),
                    ("puts", load(&self.store_puts)),
                    ("read_bytes", load(&self.store_read_bytes)),
                    ("compactions", load(&self.store_compactions)),
                    ("prewarm_records", load(&self.store_prewarm_records)),
                    ("entries", load(&self.store_entries)),
                    ("disk_bytes", load(&self.store_disk_bytes)),
                ]),
            ),
            (
                "jobs",
                Json::obj([
                    ("accepted", load(&self.jobs_accepted)),
                    ("done", load(&self.jobs_done)),
                    ("failed", load(&self.jobs_failed)),
                ]),
            ),
            ("shed", load(&self.shed)),
            ("connections", load(&self.connections)),
        ])
    }
}

fn load(counter: &AtomicU64) -> Json {
    Json::Num(counter.load(Ordering::Relaxed) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for us in [1u64, 3, 3, 7, 100, 1000] {
            h.observe(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        // p50 rank 3 → the 3 µs samples live in the [2,4) bucket → 4.
        assert_eq!(h.quantile_us(0.5), 4);
        // p99 rank 6 → 1000 µs lives in [512,1024) → 1024.
        assert_eq!(h.quantile_us(0.99), 1024);
        // Mean: (1+3+3+7+100+1000)/6 = 185 µs after integer division.
        assert_eq!(h.mean(), Some(Duration::from_micros(185)));
        let json = h.render();
        assert_eq!(json.get("count").and_then(Json::as_f64), Some(6.0));
        assert_eq!(json.get("max_us").and_then(Json::as_f64), Some(1000.0));
    }

    #[test]
    fn empty_histogram_renders_zeros() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean(), None);
        let json = h.render();
        assert_eq!(json.get("p99_us").and_then(Json::as_f64), Some(0.0));
        assert_eq!(json.get("buckets").and_then(Json::as_arr).unwrap().len(), 0);
    }

    #[test]
    fn endpoint_metrics_count_errors_separately() {
        let m = EndpointMetrics::default();
        m.observe(Duration::from_micros(10), false);
        m.observe(Duration::from_micros(20), true);
        assert_eq!(m.requests(), 2);
        assert_eq!(m.errors(), 1);
    }

    #[test]
    fn server_metrics_render_is_valid_json() {
        let m = ServerMetrics::default();
        m.gate_eval.observe(Duration::from_micros(5), false);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        let text = m.render().render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
    }
}
