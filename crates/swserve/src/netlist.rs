//! Netlist compilation and evaluation for `POST /v1/netlist/eval`.
//!
//! The same two-stage shape as [`crate::eval`], but the payload is a
//! *circuit description* rather than a named gate:
//!
//! 1. [`normalize`] accepts exactly one of four source forms — a
//!    `demo` name, the swnet `source` text format, a structural
//!    `netlist` JSON object, or a `table` of truth-table bit strings
//!    (synthesized with `swnet::synth`) — compiles it to a primitive
//!    netlist, and rewrites the request into canonical form: the
//!    elaborated netlist JSON plus any `inputs`/`tag`. Equivalent
//!    requests (a demo vs. its text spelling, reordered fields,
//!    comments) normalize to identical bytes, so the server's
//!    content-addressed cache coalesces them.
//! 2. [`evaluate`] legalizes fan-out with swnet's balanced splitter
//!    trees, sizes the splitter/repeater roles with the
//!    logical-effort amplitude model, lowers to a `swgates::Circuit`,
//!    and reports structure, fan-out legality, transducer counts,
//!    behaviour (explicit `outputs` or enumerated `rows`), and the
//!    energy/delay scorecard against the 16 nm and 7 nm CMOS
//!    baselines.
//!
//! `repro compile` prints `respond(request)` and the server sends the
//! same bytes, so CLI and HTTP answers are byte-identical by
//! construction — the property the gate endpoint already has.

use swjson::Json;
use swnet::effort::{self, EffortModel};
use swnet::ir::{FanoutView, Netlist};
use swnet::synth::{synthesize, Table};
use swnet::{arith, legalize, lower, text};
use swperf::GateCost;

use crate::eval::{bad, bits_json, parse_bits, EvalError};

/// The built-in demo circuits: the ROADMAP's adders plus the array
/// multipliers that exercise macro-cell elaboration.
pub const DEMOS: [&str; 6] = ["full_adder", "rca4", "rca8", "rca16", "mul2", "mul4"];

/// Truth-table enumeration bound, shared with the gate endpoint.
const MAX_ENUM_INPUTS: usize = 10;

/// Maps a compile-stage failure (parse, synthesis, check) to a client
/// error, preserving swnet's byte-offset diagnostics.
fn compile(error: swnet::SwNetError) -> EvalError {
    bad(format!("netlist rejected: {error}"))
}

fn demo_netlist(name: &str) -> Option<Netlist> {
    match name {
        "full_adder" => Some(arith::full_adder()),
        "rca4" => Some(arith::ripple_carry_adder(4)),
        "rca8" => Some(arith::ripple_carry_adder(8)),
        "rca16" => Some(arith::ripple_carry_adder(16)),
        "mul2" => Some(arith::array_multiplier(2)),
        "mul4" => Some(arith::array_multiplier(4)),
        _ => None,
    }
}

/// Validates a netlist request and rewrites it into canonical form:
/// `{"netlist": <elaborated structural JSON>, "inputs"?, "tag"?}`.
///
/// Exactly one of `demo`, `source`, `netlist`, or `table` must be
/// present. Because the canonical form is the *compiled* netlist, all
/// spellings of the same circuit share one cache entry.
///
/// # Errors
///
/// [`EvalError`] on unknown fields or demos, malformed netlist text or
/// JSON (with swnet's byte offsets in the message), unsynthesizable
/// tables, or an `inputs` vector of the wrong width.
pub fn normalize(request: &Json) -> Result<Json, EvalError> {
    let fields = request
        .as_obj()
        .ok_or_else(|| bad("request body must be a JSON object"))?;
    for key in fields.keys() {
        if !matches!(
            key.as_str(),
            "demo" | "source" | "netlist" | "table" | "inputs" | "tag"
        ) {
            return Err(bad(format!("unknown field `{key}` in netlist request")));
        }
    }
    let sources = ["demo", "source", "netlist", "table"]
        .iter()
        .filter(|key| request.get(key).is_some())
        .count();
    if sources != 1 {
        return Err(bad(
            "supply exactly one of `demo`, `source`, `netlist`, or `table`",
        ));
    }
    let netlist = if let Some(demo) = request.get("demo") {
        let name = demo
            .as_str()
            .ok_or_else(|| bad("`demo` must be a string"))?;
        demo_netlist(name).ok_or_else(|| {
            bad(format!(
                "unknown demo `{name}` (expected one of {})",
                DEMOS.join(", ")
            ))
        })?
    } else if let Some(source) = request.get("source") {
        let source = source
            .as_str()
            .ok_or_else(|| bad("`source` must be a string"))?;
        text::parse(source).map_err(compile)?
    } else if let Some(value) = request.get("netlist") {
        text::from_json(value).map_err(compile)?
    } else {
        let rows = request
            .get("table")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("`table` must be an array of 0/1 strings"))?;
        if rows.is_empty() {
            return Err(bad("`table` needs at least one output column"));
        }
        let tables: Vec<Table> = rows
            .iter()
            .map(|row| {
                let bits = row
                    .as_str()
                    .ok_or_else(|| bad("`table` entries must be 0/1 strings"))?;
                Table::parse(bits).map_err(compile)
            })
            .collect::<Result<_, _>>()?;
        synthesize(&tables).map_err(compile)?
    };
    netlist.check().map_err(compile)?;
    let flat = netlist.elaborate();
    let mut out = vec![("netlist", text::to_json(&flat))];
    if let Some(inputs) = request.get("inputs") {
        let bits = parse_bits(inputs, flat.inputs().len(), "netlist")?;
        out.push(("inputs", bits_json(&bits)));
    }
    if let Some(tag) = request.get("tag") {
        let tag = tag.as_str().ok_or_else(|| bad("`tag` must be a string"))?;
        out.push(("tag", Json::str(tag)));
    }
    Ok(Json::obj(out))
}

fn spinwave_cost_json(cost: &GateCost) -> Json {
    Json::obj([
        ("energy_aj", Json::Num(cost.energy_aj())),
        ("delay_ns", Json::Num(cost.delay_ns())),
        ("transducers", Json::Num(cost.device_count() as f64)),
    ])
}

fn cmos_cost_json(cost: &GateCost) -> Json {
    Json::obj([
        ("energy_aj", Json::Num(cost.energy_aj())),
        ("delay_ns", Json::Num(cost.delay_ns())),
        ("transistors", Json::Num(cost.device_count() as f64)),
    ])
}

/// Evaluates a **normalized** netlist request (see [`normalize`]):
/// legalize → size → lower → score. Deterministic: equal canonical
/// requests produce byte-identical responses.
///
/// # Errors
///
/// [`EvalError`] if the canonical netlist fails re-validation (cannot
/// happen for documents produced by [`normalize`]).
pub fn evaluate(normalized: &Json) -> Result<Json, EvalError> {
    let netlist = text::from_json(
        normalized
            .get("netlist")
            .ok_or_else(|| bad("normalized netlist requests carry a `netlist`"))?,
    )
    .map_err(compile)?;
    let source_violations = FanoutView::new(&netlist).violations(&netlist);
    let legal = legalize::legalize(&netlist).map_err(compile)?;
    let stats = legalize::stats(&legal).map_err(compile)?;
    let model = EffortModel::paper();
    let card = effort::score(&legal, &model).map_err(compile)?;
    let circuit = lower::to_circuit(&legal).map_err(compile)?;
    let (excitations, detections) = circuit.transducer_counts();

    let mut fields = vec![("request", normalized.clone())];
    fields.push((
        "netlist",
        Json::obj([
            ("inputs", Json::Num(netlist.inputs().len() as f64)),
            ("outputs", Json::Num(netlist.outputs().len() as f64)),
            ("cells", Json::Num(netlist.cell_count() as f64)),
            ("depth", Json::Num(netlist.depth().map_err(compile)? as f64)),
        ]),
    ));
    fields.push((
        "legalized",
        Json::obj([
            ("gates", Json::Num(stats.gates as f64)),
            ("buffers", Json::Num(stats.buffers as f64)),
            ("splitters", Json::Num(card.sizing.splitters as f64)),
            ("repeaters", Json::Num(card.sizing.repeaters as f64)),
            ("depth", Json::Num(stats.depth as f64)),
            ("min_delivered", Json::Num(card.sizing.min_delivered)),
        ]),
    ));
    fields.push((
        "fanout",
        Json::obj([
            ("legal", Json::Bool(circuit.fanout_violations().is_empty())),
            (
                "source_violations",
                Json::Arr(
                    source_violations
                        .iter()
                        .map(|v| {
                            Json::obj([
                                ("net", Json::str(&v.name)),
                                ("fanout", Json::Num(v.fanout as f64)),
                                ("limit", Json::Num(v.limit as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    ));
    fields.push((
        "transducers",
        Json::obj([
            ("excitation", Json::Num(excitations as f64)),
            ("detection", Json::Num(detections as f64)),
        ]),
    ));
    match normalized.get("inputs") {
        Some(inputs) => {
            let bits = parse_bits(inputs, circuit.input_count(), "netlist")?;
            let outputs = circuit
                .evaluate(&bits)
                .map_err(|e| bad(format!("evaluation failed: {e}")))?;
            fields.push(("outputs", bits_json(&outputs)));
        }
        None if circuit.input_count() <= MAX_ENUM_INPUTS => {
            let n = circuit.input_count();
            let rows: Result<Vec<Json>, EvalError> = (0..1usize << n)
                .map(|pattern| {
                    let bits: Vec<_> = (0..n)
                        .map(|i| swgates::encoding::Bit::from_bool(pattern >> i & 1 == 1))
                        .collect();
                    let outputs = circuit
                        .evaluate(&bits)
                        .map_err(|e| bad(format!("evaluation failed: {e}")))?;
                    Ok(Json::obj([
                        ("inputs", bits_json(&bits)),
                        ("outputs", bits_json(&outputs)),
                    ]))
                })
                .collect();
            fields.push(("rows", Json::Arr(rows?)));
        }
        // Wide netlists (the 16-bit adder has 33 inputs) skip row
        // enumeration: structure and cost are still reported.
        None => {}
    }
    fields.push((
        "cost",
        Json::obj([
            ("spinwave", spinwave_cost_json(&card.spinwave)),
            ("cmos16", cmos_cost_json(&card.cmos16)),
            ("cmos7", cmos_cost_json(&card.cmos7)),
            (
                "ratios",
                Json::obj([
                    (
                        "energy_n16",
                        Json::Num(card.energy_ratio(swperf::cmos::CmosNode::N16)),
                    ),
                    (
                        "energy_n7",
                        Json::Num(card.energy_ratio(swperf::cmos::CmosNode::N7)),
                    ),
                    (
                        "delay_n16",
                        Json::Num(card.delay_ratio(swperf::cmos::CmosNode::N16)),
                    ),
                    (
                        "delay_n7",
                        Json::Num(card.delay_ratio(swperf::cmos::CmosNode::N7)),
                    ),
                ]),
            ),
        ]),
    ));
    Ok(Json::obj(fields))
}

/// Convenience for the CLI and tests: normalize, evaluate, render.
///
/// # Errors
///
/// [`EvalError`] from either stage.
pub fn respond(request: &Json) -> Result<String, EvalError> {
    Ok(evaluate(&normalize(request)?)?.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).expect("test request parses")
    }

    #[test]
    fn demo_and_text_spellings_share_one_canonical_form() {
        let demo = normalize(&parse(r#"{"demo":"full_adder"}"#)).unwrap();
        let source = arith::full_adder().to_string();
        let text_form = normalize(&Json::obj([("source", Json::str(&source))])).unwrap();
        assert_eq!(demo.render(), text_form.render());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            r#"{"demo":"alu"}"#,
            r#"{"demo":"rca4","source":"input a\n"}"#,
            r#"{"bogus":1}"#,
            r#"{}"#,
            r#"{"source":"input a b\ny = frob a b\n"}"#,
            r#"{"table":[]}"#,
            r#"{"table":["011"]}"#,
            r#"{"demo":"rca4","inputs":[1,0]}"#,
            "[1]",
        ] {
            assert!(normalize(&parse(bad)).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn parse_errors_surface_byte_offsets() {
        let err = normalize(&parse(
            r#"{"source":"input a b\noutput y\ny = frob a b\n"}"#,
        ))
        .unwrap_err();
        assert!(err.message.contains("byte 23"), "{}", err.message);
    }

    #[test]
    fn synthesized_table_adds_like_a_full_adder() {
        let response =
            evaluate(&normalize(&parse(r#"{"table":["01101001","00010111"]}"#)).unwrap()).unwrap();
        let rows = response.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 8);
        for row in rows {
            let bits = |key: &str| -> Vec<u64> {
                row.get(key)
                    .and_then(Json::as_arr)
                    .unwrap()
                    .iter()
                    .filter_map(Json::as_f64)
                    .map(|x| x as u64)
                    .collect()
            };
            let inputs = bits("inputs");
            let outputs = bits("outputs");
            let total = inputs[0] + inputs[1] + inputs[2];
            assert_eq!(outputs[0] | outputs[1] << 1, total, "{inputs:?}");
        }
        assert_eq!(
            response
                .get("fanout")
                .and_then(|f| f.get("legal"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn the_wide_adder_reports_cost_without_rows() {
        let response = evaluate(&normalize(&parse(r#"{"demo":"rca16"}"#)).unwrap()).unwrap();
        assert!(response.get("rows").is_none());
        assert!(response.get("outputs").is_none());
        let netlist = response.get("netlist").unwrap();
        assert_eq!(netlist.get("inputs").and_then(Json::as_f64), Some(33.0));
        // 16 FA stages: 2 XOR + 1 MAJ3 each, 7 excitations per stage.
        let energy = response
            .get("cost")
            .and_then(|c| c.get("spinwave"))
            .and_then(|s| s.get("energy_aj"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((energy - 16.0 * 7.0 * 3.44).abs() < 1e-6, "{energy}");
        // The paper's headline holds at width 16 too.
        let ratios = response.get("cost").and_then(|c| c.get("ratios")).unwrap();
        assert!(ratios.get("energy_n16").and_then(Json::as_f64).unwrap() > 1.0);
        assert!(ratios.get("delay_n16").and_then(Json::as_f64).unwrap() > 1.0);
    }

    #[test]
    fn illegal_source_fanout_is_reported_and_fixed() {
        // One AND output feeding five XORs: illegal as written,
        // legalized by the compiler.
        let mut source = String::from("input a b c\n");
        let mut outputs = Vec::new();
        source.push_str("t = and a b\n");
        for i in 0..5 {
            source.push_str(&format!("y{i} = xor t c\n"));
            outputs.push(format!("y{i}"));
        }
        source.push_str(&format!("output {}\n", outputs.join(" ")));
        let response =
            evaluate(&normalize(&Json::obj([("source", Json::str(&source))])).unwrap()).unwrap();
        let fanout = response.get("fanout").unwrap();
        assert_eq!(fanout.get("legal").and_then(Json::as_bool), Some(true));
        let violations = fanout
            .get("source_violations")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].get("net").and_then(Json::as_str), Some("t"));
        assert_eq!(
            violations[0].get("fanout").and_then(Json::as_f64),
            Some(5.0)
        );
        let legalized = response.get("legalized").unwrap();
        assert!(legalized.get("buffers").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(
            legalized
                .get("min_delivered")
                .and_then(Json::as_f64)
                .unwrap()
                + 1e-9
                >= 0.5
        );
    }

    #[test]
    fn responses_are_deterministic() {
        let request = parse(r#"{"demo":"mul2"}"#);
        assert_eq!(respond(&request).unwrap(), respond(&request).unwrap());
    }
}
