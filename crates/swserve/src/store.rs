//! The serving tier's view of the disk store: opening it from a
//! [`crate::server::ServerConfig`] and pre-warming it from JSON-lines
//! manifests.
//!
//! The store itself ([`swstore::Store`]) knows nothing about requests —
//! it maps 64-bit keys to byte bodies. This module supplies the
//! serving-side mapping for [`swstore::Store::prewarm`]: each manifest
//! line is interpreted as either
//!
//! * a **swrun/swserve job record** (`{"record":"job","status":"done",
//!   "inputs":…,"outputs":…}`): the normalized job request in `inputs`
//!   is keyed exactly as [`crate::jobs`] keys submissions, and the
//!   recorded `outputs` become the stored body — a restarted server
//!   answers a resubmission of that job from disk instead of re-running
//!   minutes of LLG simulation; or
//! * a **raw eval request** (any other JSON object): the request is
//!   pushed through the same normalize → evaluate pipeline the live
//!   endpoints use (gate first, then netlist), and the rendered
//!   response body is stored. Re-evaluating instead of trusting a
//!   recorded body keeps the byte-identity invariant by construction —
//!   a stored body can never drift from what the server would say —
//!   and both pipelines are analytic (microseconds per request).
//!
//! Lines that are neither (unparseable tails, failed jobs, summary
//! records) are skipped, matching swrun's own replay tolerance.

use std::path::Path;
use std::sync::Arc;

use swjson::Json;
use swstore::Store;

use crate::cache::content_key;
use crate::{eval, netlist};

/// Maps one manifest line to a `(content key, body)` store entry; see
/// the module docs for the accepted shapes. `None` skips the line.
pub fn prewarm_entry(record: &Json) -> Option<(u64, String)> {
    if record.get("record").is_some() {
        // Manifest record. Only completed jobs carry reusable outputs.
        if record.get("record").and_then(Json::as_str) != Some("job")
            || record.get("status").and_then(Json::as_str) != Some("done")
        {
            return None;
        }
        let inputs = record.get("inputs")?;
        let outputs = record.get("outputs")?;
        // `inputs` was normalized at submit time; hashing its rendering
        // reproduces the submission's content key.
        return Some((content_key(&inputs.render()), outputs.render()));
    }
    // A raw request line: evaluate it the way the live endpoints would.
    for (normalize, evaluate) in [
        (
            eval::normalize as fn(&Json) -> _,
            eval::evaluate as fn(&Json) -> _,
        ),
        (netlist::normalize, netlist::evaluate),
    ] {
        if let Ok(normalized) = normalize(record) {
            let body = evaluate(&normalized).ok()?.render();
            return Some((content_key(&normalized.render()), body));
        }
    }
    None
}

/// Replays `manifest` into `store` with [`prewarm_entry`]; returns the
/// number of entries inserted. A missing manifest warms nothing.
///
/// # Errors
///
/// Manifest read failures and store write failures.
pub fn prewarm(store: &Arc<Store>, manifest: &Path) -> std::io::Result<usize> {
    store.prewarm(manifest, prewarm_entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_records_map_to_their_submission_key() {
        let record = Json::parse(
            r#"{"record":"job","status":"done","id":"job-1-abc","inputs":{"kind":"sleep","ms":5.0},"outputs":{"slept_ms":5.0},"wall_ms":5.2}"#,
        )
        .unwrap();
        let (key, body) = prewarm_entry(&record).expect("done jobs warm");
        assert_eq!(key, content_key(r#"{"kind":"sleep","ms":5.0}"#));
        assert_eq!(body, r#"{"slept_ms":5.0}"#);
    }

    #[test]
    fn unfinished_and_foreign_records_are_skipped() {
        for raw in [
            r#"{"record":"job","status":"failed","inputs":{},"error":"x"}"#,
            r#"{"record":"job","status":"running","inputs":{}}"#,
            r#"{"record":"summary","jobs":3.0}"#,
        ] {
            assert!(
                prewarm_entry(&Json::parse(raw).unwrap()).is_none(),
                "`{raw}` must not warm"
            );
        }
    }

    #[test]
    fn raw_gate_requests_warm_with_live_serving_bytes() {
        let raw = Json::parse(r#"{"gate":"maj3","inputs":[0,1,1]}"#).unwrap();
        let (key, body) = prewarm_entry(&raw).expect("valid gate request warms");
        let normalized = eval::normalize(&raw).unwrap();
        assert_eq!(key, content_key(&normalized.render()));
        // The stored body is exactly what the endpoint would answer.
        assert_eq!(body, eval::respond(&raw).unwrap());
    }

    #[test]
    fn raw_netlist_requests_warm_too() {
        let raw = Json::parse(r#"{"demo":"full_adder"}"#).unwrap();
        let (key, body) = prewarm_entry(&raw).expect("valid netlist request warms");
        let normalized = netlist::normalize(&raw).unwrap();
        assert_eq!(key, content_key(&normalized.render()));
        assert_eq!(body, netlist::respond(&raw).unwrap());
    }

    #[test]
    fn invalid_requests_warm_nothing() {
        for raw in [r#"{"gate":"warp"}"#, r#"{"demo":"alu"}"#, r#"[1,2,3]"#] {
            assert!(
                prewarm_entry(&Json::parse(raw).unwrap()).is_none(),
                "`{raw}` must not warm"
            );
        }
    }
}
