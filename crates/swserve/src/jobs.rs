//! Asynchronous micromagnetic jobs: `POST /v1/jobs` + `GET /v1/jobs/:id`.
//!
//! Gate evaluations on the analytic backend answer inline, but a full
//! LLG simulation takes seconds to minutes — those are dispatched onto
//! an [`swrun::ResidentPool`] and polled by id. Three serving properties
//! matter here:
//!
//! * **Content-addressed ids**: a job's id embeds the hash of its
//!   canonical request, and resubmitting an identical request returns
//!   the existing job instead of simulating twice.
//! * **Calibration amortization**: micromagnetic backends are kept per
//!   configuration and cloned per job; clones share the drive-trim
//!   cache, so a resident server pays the calibration LLG runs once —
//!   this is the structural advantage over one-process-per-run CLI use.
//! * **Manifest-backed results**: every finished job is appended to a
//!   JSON-lines manifest (same format as `swrun` batches), flushed per
//!   record, so results survive the server.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swgates::encoding::Bit;
use swgates::layout::{TriangleMaj3Layout, TriangleXorLayout};
use swgates::mumag::MumagBackend;
use swjson::Json;
use swrun::gates::{run_to_json, BatchedBackend, PatternBatchReport};
use swrun::resident::{JobHandle, JobStage, ResidentPool};
use swrun::ManifestWriter;

use crate::cache::content_key;
use crate::eval::EvalError;

fn bad(message: impl Into<String>) -> EvalError {
    EvalError {
        message: message.into(),
    }
}

/// Why a job submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// The request is malformed (HTTP 400).
    Invalid(EvalError),
    /// Admission control shed the request (HTTP 429).
    Overloaded,
    /// The server is draining (HTTP 503).
    Closed,
}

/// Validates and canonicalizes a job request.
///
/// Kinds: `maj3` / `xor` run the micromagnetic gate on the fast layout.
/// `inputs` = bit pattern evaluates one pattern; `batch: K` instead
/// sweeps **every** input pattern through the K-way lockstep batched
/// solver (`inputs` and `batch` are mutually exclusive). Optional
/// `threads` sets the per-sweep parallel width either way. `sleep`
/// (`ms` ≤ 10000) is a diagnostic no-op job used by tests and smoke
/// runs to exercise queueing without burning minutes of LLG time.
///
/// # Errors
///
/// [`EvalError`] describing the malformation.
pub fn normalize_job(request: &Json) -> Result<Json, EvalError> {
    let fields = request
        .as_obj()
        .ok_or_else(|| bad("job request must be a JSON object"))?;
    let kind = request
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("job requests need a `kind` string"))?;
    match kind {
        "maj3" | "xor" => {
            for key in fields.keys() {
                if !matches!(key.as_str(), "kind" | "inputs" | "batch" | "threads") {
                    return Err(bad(format!("unknown field `{key}` in {kind} job")));
                }
            }
            let arity = if kind == "maj3" { 3 } else { 2 };
            let mut out = vec![("kind", Json::str(kind))];
            match (request.get("inputs"), request.get("batch")) {
                (Some(_), Some(_)) => {
                    return Err(bad("`inputs` and `batch` are mutually exclusive"));
                }
                (None, Some(batch)) => {
                    let k = batch
                        .as_f64()
                        .ok_or_else(|| bad("`batch` must be a number"))?;
                    if k.fract() != 0.0 || !(1.0..=16.0).contains(&k) {
                        return Err(bad("`batch` must be an integer in 1..=16"));
                    }
                    out.push(("batch", Json::Num(k)));
                }
                (Some(inputs), None) => {
                    let items = inputs
                        .as_arr()
                        .ok_or_else(|| bad("`inputs` must be an array of 0/1"))?;
                    if items.len() != arity {
                        return Err(bad(format!(
                            "{kind} takes {arity} inputs, got {}",
                            items.len()
                        )));
                    }
                    let mut bits = Vec::new();
                    for item in items {
                        match item.as_f64() {
                            Some(x) if x == 0.0 || x == 1.0 => bits.push(Json::Num(x)),
                            _ => return Err(bad("inputs must be 0 or 1")),
                        }
                    }
                    out.push(("inputs", Json::Arr(bits)));
                }
                (None, None) => {
                    return Err(bad(format!("{kind} jobs need `inputs` or `batch`")));
                }
            }
            if let Some(threads) = request.get("threads") {
                let t = threads
                    .as_f64()
                    .ok_or_else(|| bad("`threads` must be a number"))?;
                if t.fract() != 0.0 || !(1.0..=64.0).contains(&t) {
                    return Err(bad("`threads` must be an integer in 1..=64"));
                }
                out.push(("threads", Json::Num(t)));
            }
            Ok(Json::obj(out))
        }
        "sleep" => {
            for key in fields.keys() {
                if !matches!(key.as_str(), "kind" | "ms" | "tag") {
                    return Err(bad(format!("unknown field `{key}` in sleep job")));
                }
            }
            let ms = request
                .get("ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("sleep jobs need a numeric `ms`"))?;
            if !(0.0..=10_000.0).contains(&ms) {
                return Err(bad("`ms` must be in 0..=10000"));
            }
            let mut out = vec![("kind", Json::str("sleep")), ("ms", Json::Num(ms))];
            if let Some(tag) = request.get("tag") {
                let tag = tag.as_str().ok_or_else(|| bad("`tag` must be a string"))?;
                out.push(("tag", Json::str(tag)));
            }
            Ok(Json::obj(out))
        }
        other => Err(bad(format!(
            "unknown job kind `{other}` (expected maj3, xor or sleep)"
        ))),
    }
}

struct JobRecord {
    handle: JobHandle,
    request: Json,
}

/// Running total of observed job wall time, shared with the worker
/// closures so [`JobStore::mean_wall`] reflects finished jobs without
/// locking the job map.
#[derive(Default)]
struct WallStats {
    total_us: AtomicU64,
    count: AtomicU64,
}

impl WallStats {
    fn record(&self, wall: Duration) {
        let us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn mean(&self) -> Option<Duration> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        Some(Duration::from_micros(
            self.total_us.load(Ordering::Relaxed) / count,
        ))
    }
}

/// The server's job subsystem.
pub struct JobStore {
    pool: ResidentPool,
    queue_depth: usize,
    jobs: Mutex<HashMap<String, JobRecord>>,
    by_key: Mutex<HashMap<u64, String>>,
    manifest: Option<Arc<ManifestWriter>>,
    /// Disk level of the result hierarchy: finished job outputs are
    /// written through, and resubmissions of jobs completed by an
    /// earlier process answer from here without simulating.
    store: Option<Arc<swstore::Store>>,
    /// Micromagnetic backends by configuration; cloned per job so the
    /// drive-trim calibration is shared across jobs.
    backends: Mutex<HashMap<String, MumagBackend>>,
    wall: Arc<WallStats>,
    next_id: AtomicU64,
}

impl JobStore {
    /// Starts the job subsystem with `workers` simulation threads and an
    /// admission bound of `queue_depth` unfinished jobs.
    pub fn start(
        workers: usize,
        queue_depth: usize,
        manifest: Option<Arc<ManifestWriter>>,
        store: Option<Arc<swstore::Store>>,
    ) -> JobStore {
        JobStore {
            pool: ResidentPool::start(workers),
            queue_depth: queue_depth.max(1),
            jobs: Mutex::new(HashMap::new()),
            by_key: Mutex::new(HashMap::new()),
            manifest,
            store,
            backends: Mutex::new(HashMap::new()),
            wall: Arc::new(WallStats::default()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Unfinished jobs (queued + running).
    pub fn in_flight(&self) -> usize {
        self.pool.in_flight()
    }

    /// Mean wall time of finished jobs, or `None` before any finish.
    /// This is the per-job cost estimate behind the `Retry-After`
    /// header on shed submissions.
    pub fn mean_wall(&self) -> Option<Duration> {
        self.wall.mean()
    }

    /// Seeds the wall-time statistics directly, so tests can pin the
    /// observed latency without running multi-second jobs.
    #[cfg(test)]
    pub(crate) fn record_wall(&self, wall: Duration) {
        self.wall.record(wall);
    }

    fn backend(&self, kind: &str, threads: usize) -> MumagBackend {
        let key = format!("{kind}:{threads}");
        let mut backends = self.backends.lock().expect("backend map poisoned");
        backends
            .entry(key)
            .or_insert_with(|| {
                let backend = MumagBackend::fast();
                if threads > 0 {
                    backend.with_threads(threads)
                } else {
                    backend
                }
            })
            .clone()
    }

    /// Submits a normalized job request (see [`normalize_job`]).
    /// Returns `(job_id, resubmitted)` — `resubmitted` is true when an
    /// identical job already existed and no new work was enqueued.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(&self, request: &Json) -> Result<(String, bool), SubmitError> {
        let normalized = normalize_job(request).map_err(SubmitError::Invalid)?;
        let canonical = normalized.render();
        let key = content_key(&canonical);

        // Content addressing: an identical request maps to the existing
        // job, whatever state it is in.
        {
            let by_key = self.by_key.lock().expect("job index poisoned");
            if let Some(id) = by_key.get(&key) {
                return Ok((id.clone(), true));
            }
        }

        // Disk level: a previously-completed identical job — possibly
        // from an earlier process, via the store or a pre-warmed
        // manifest — answers from disk without simulating. Like the
        // by_key lookup, this bypasses admission: it costs no worker.
        let stored = self
            .store
            .as_ref()
            .and_then(|store| store.get(key))
            .and_then(|body| String::from_utf8(body).ok())
            .and_then(|text| Json::parse(&text).ok());
        if let Some(outputs) = stored {
            let sequence = self.next_id.fetch_add(1, Ordering::Relaxed);
            let id = format!("job-{sequence}-{key:016x}");
            // A trivial pool job keeps the JobRecord/JobHandle shape
            // (status, wait, stats) identical to freshly-run jobs. No
            // manifest record and no wall-stats sample: the result was
            // not computed here, and a ~0ms sample would corrupt the
            // Retry-After estimate.
            let handle = self
                .pool
                .submit(move || Ok(outputs))
                .map_err(|_| SubmitError::Closed)?;
            self.jobs.lock().expect("job map poisoned").insert(
                id.clone(),
                JobRecord {
                    handle,
                    request: normalized,
                },
            );
            self.by_key
                .lock()
                .expect("job index poisoned")
                .insert(key, id.clone());
            return Ok((id, true));
        }

        if self.pool.in_flight() >= self.queue_depth {
            return Err(SubmitError::Overloaded);
        }

        let sequence = self.next_id.fetch_add(1, Ordering::Relaxed);
        let id = format!("job-{sequence}-{key:016x}");
        let work = job_closure(&normalized, self);
        let store = self.store.clone();
        let manifest = self.manifest.clone();
        let manifest_inputs = normalized.clone();
        let manifest_id = id.clone();
        let wall_stats = Arc::clone(&self.wall);
        let handle = self
            .pool
            .submit(move || {
                let started = std::time::Instant::now();
                let result = work();
                let wall = started.elapsed();
                wall_stats.record(wall);
                let wall_ms = wall.as_secs_f64() * 1e3;
                // Write through to disk so the result survives a
                // restart; a failure only costs durability.
                if let (Some(store), Ok(outputs)) = (&store, &result) {
                    if let Err(e) = store.put(key, outputs.render().as_bytes()) {
                        eprintln!("swserve: store write failed: {e}");
                    }
                }
                if let Some(writer) = &manifest {
                    let write = match &result {
                        Ok(outputs) => writer.job_done(
                            &manifest_id,
                            manifest_inputs.clone(),
                            outputs.clone(),
                            wall_ms,
                        ),
                        Err(error) => {
                            writer.job_failed(&manifest_id, manifest_inputs.clone(), error, wall_ms)
                        }
                    };
                    if let Err(e) = write {
                        eprintln!("swserve: manifest write failed: {e}");
                    }
                }
                result
            })
            .map_err(|_| SubmitError::Closed)?;

        self.jobs.lock().expect("job map poisoned").insert(
            id.clone(),
            JobRecord {
                handle,
                request: normalized,
            },
        );
        self.by_key
            .lock()
            .expect("job index poisoned")
            .insert(key, id.clone());
        Ok((id, false))
    }

    /// The status document for job `id`, or `None` if unknown.
    pub fn status(&self, id: &str) -> Option<Json> {
        let jobs = self.jobs.lock().expect("job map poisoned");
        let record = jobs.get(id)?;
        let mut fields = vec![
            ("id", Json::str(id)),
            ("status", Json::str(record.handle.stage().as_str())),
            ("request", record.request.clone()),
        ];
        if record.handle.stage() == JobStage::Done {
            match record.handle.result().expect("done jobs have results") {
                Ok(outputs) => fields.push(("result", outputs)),
                Err(error) => fields.push(("error", Json::str(error))),
            }
            if let Some(wall) = record.handle.wall() {
                fields.push(("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)));
            }
        }
        Some(Json::obj(fields))
    }

    /// Blocks until job `id` finishes; `None` for unknown ids. Test and
    /// drain helper — HTTP clients poll instead.
    pub fn wait(&self, id: &str) -> Option<Result<Json, String>> {
        let handle = {
            let jobs = self.jobs.lock().expect("job map poisoned");
            jobs.get(id)?.handle.clone()
        };
        Some(handle.wait())
    }

    /// Blocks until every accepted job has finished (their manifest
    /// records flush as they complete). The drain half of a graceful
    /// shutdown for servers holding the store behind an `Arc`; admission
    /// must already have stopped or this can wait forever.
    pub fn drain(&self) {
        self.pool.drain();
    }

    /// Lifetime job counts: `(accepted, done, failed)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        let jobs = self.jobs.lock().expect("job map poisoned");
        let mut done = 0;
        let mut failed = 0;
        for record in jobs.values() {
            match record.handle.failed() {
                Some(false) => done += 1,
                Some(true) => failed += 1,
                None => {}
            }
        }
        (jobs.len() as u64, done, failed)
    }

    /// Graceful drain: stop accepting, finish every accepted job (their
    /// manifest records flush as they complete).
    pub fn close(self) {
        self.pool.close();
    }
}

fn bits_from(normalized: &Json) -> Vec<Bit> {
    normalized
        .get("inputs")
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(Json::as_f64)
                .map(|x| Bit::from_bool(x == 1.0))
                .collect()
        })
        .unwrap_or_default()
}

/// Builds the closure that actually runs a job on a worker thread.
fn job_closure(
    normalized: &Json,
    store: &JobStore,
) -> Box<dyn FnOnce() -> Result<Json, String> + Send + 'static> {
    let kind = normalized
        .get("kind")
        .and_then(Json::as_str)
        .expect("normalized jobs have a kind")
        .to_string();
    match kind.as_str() {
        "sleep" => {
            let ms = normalized
                .get("ms")
                .and_then(Json::as_f64)
                .expect("normalized sleep jobs have ms");
            Box::new(move || {
                std::thread::sleep(Duration::from_millis(ms as u64));
                Ok(Json::obj([("slept_ms", Json::Num(ms))]))
            })
        }
        _ => {
            let threads = normalized
                .get("threads")
                .and_then(Json::as_f64)
                .map(|t| t as usize)
                .unwrap_or(0);
            let backend = store.backend(&kind, threads);
            let batch = normalized
                .get("batch")
                .and_then(Json::as_f64)
                .map(|k| k as usize);
            let bits = bits_from(normalized);
            Box::new(move || {
                if kind == "maj3" {
                    let layout = TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 4, 1)
                        .map_err(|e| e.to_string())?;
                    if let Some(k) = batch {
                        let report = BatchedBackend::new(backend, k)
                            .maj3_patterns(&layout)
                            .map_err(|e| e.to_string())?;
                        return batch_report_json(k, &report);
                    }
                    let run = backend
                        .maj3_run(&layout, [bits[0], bits[1], bits[2]])
                        .map_err(|e| e.to_string())?;
                    Ok(run_to_json(&run))
                } else {
                    let layout = TriangleXorLayout::new(55e-9, 50e-9, 110e-9, 40e-9)
                        .map_err(|e| e.to_string())?;
                    if let Some(k) = batch {
                        let report = BatchedBackend::new(backend, k)
                            .xor_patterns(&layout)
                            .map_err(|e| e.to_string())?;
                        return batch_report_json(k, &report);
                    }
                    let run = backend
                        .xor_run(&layout, [bits[0], bits[1]])
                        .map_err(|e| e.to_string())?;
                    Ok(run_to_json(&run))
                }
            })
        }
    }
}

/// Result JSON for a `batch: K` sweep: one record per input pattern, in
/// binary counting order, each nesting the usual single-run document.
/// Any failed pattern fails the whole job — a partial truth table is
/// not a usable gate characterization.
fn batch_report_json<const N: usize>(
    k: usize,
    report: &PatternBatchReport<N>,
) -> Result<Json, String> {
    if let Some(error) = report.first_error() {
        return Err(error.to_string());
    }
    let patterns: Vec<Json> = report
        .patterns
        .iter()
        .map(|p| {
            let run = p.run.as_ref().expect("fresh batch patterns carry runs");
            let inputs: Vec<Json> = p
                .pattern
                .iter()
                .map(|&b| Json::Num(if b == Bit::One { 1.0 } else { 0.0 }))
                .collect();
            Json::obj([("inputs", Json::Arr(inputs)), ("result", run_to_json(run))])
        })
        .collect();
    Ok(Json::obj([
        ("batch", Json::Num(k as f64)),
        ("patterns", Json::Arr(patterns)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).expect("test request parses")
    }

    #[test]
    fn job_requests_normalize_and_validate() {
        assert_eq!(
            normalize_job(&parse(r#"{"kind":"sleep","ms":5}"#))
                .unwrap()
                .render(),
            r#"{"kind":"sleep","ms":5.0}"#
        );
        assert!(normalize_job(&parse(r#"{"kind":"maj3","inputs":[0,1,1]}"#)).is_ok());
        // `batch: K` replaces `inputs` with a full-pattern sweep.
        assert_eq!(
            normalize_job(&parse(r#"{"batch":4,"kind":"xor","threads":2}"#))
                .unwrap()
                .render(),
            r#"{"batch":4.0,"kind":"xor","threads":2.0}"#
        );
        for bad in [
            r#"{"kind":"explode"}"#,
            r#"{"kind":"maj3"}"#,
            r#"{"kind":"maj3","inputs":[0,1]}"#,
            r#"{"kind":"maj3","inputs":[0,1,1],"bogus":1}"#,
            r#"{"kind":"maj3","inputs":[0,1,1],"batch":2}"#,
            r#"{"kind":"maj3","batch":0}"#,
            r#"{"kind":"xor","batch":3.5}"#,
            r#"{"kind":"xor","batch":17}"#,
            r#"{"kind":"sleep","ms":999999}"#,
            r#"{"kind":"xor","inputs":[0,1],"threads":0.5}"#,
            "7",
        ] {
            assert!(normalize_job(&parse(bad)).is_err(), "`{bad}` must fail");
        }
    }

    #[test]
    fn mean_wall_tracks_finished_jobs() {
        let store = JobStore::start(1, 4, None, None);
        assert!(store.mean_wall().is_none(), "no jobs observed yet");
        let (id, _) = store.submit(&parse(r#"{"kind":"sleep","ms":20}"#)).unwrap();
        store.wait(&id);
        let mean = store.mean_wall().expect("one finished job");
        assert!(mean >= Duration::from_millis(20), "mean {mean:?}");
        store.close();
    }

    #[test]
    fn sleep_jobs_run_and_report() {
        let store = JobStore::start(1, 4, None, None);
        let (id, resubmitted) = store.submit(&parse(r#"{"kind":"sleep","ms":5}"#)).unwrap();
        assert!(!resubmitted);
        assert!(id.starts_with("job-1-"));
        let result = store.wait(&id).unwrap().unwrap();
        assert_eq!(result.get("slept_ms").and_then(Json::as_f64), Some(5.0));
        let status = store.status(&id).unwrap();
        assert_eq!(status.get("status").and_then(Json::as_str), Some("done"));
        assert!(status.get("wall_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        store.close();
    }

    #[test]
    fn identical_jobs_coalesce_to_one_id() {
        let store = JobStore::start(1, 4, None, None);
        let (id1, first) = store.submit(&parse(r#"{"kind":"sleep","ms":10}"#)).unwrap();
        let (id2, second) = store
            .submit(&parse(r#"{"ms":10,"kind":"sleep"}"#)) // field order differs
            .unwrap();
        assert_eq!(id1, id2);
        assert!(!first);
        assert!(second, "the resubmission must not enqueue new work");
        let (id3, _) = store.submit(&parse(r#"{"kind":"sleep","ms":11}"#)).unwrap();
        assert_ne!(id1, id3);
        store.wait(&id1);
        store.wait(&id3);
        store.close();
    }

    #[test]
    fn admission_control_sheds_beyond_queue_depth() {
        let store = JobStore::start(1, 2, None, None);
        // Distinct long jobs: the first runs, the second queues; the
        // gauge is now at the bound, so the third is shed.
        let (id1, _) = store
            .submit(&parse(r#"{"kind":"sleep","ms":300,"tag":"a"}"#))
            .unwrap();
        let (_id2, _) = store
            .submit(&parse(r#"{"kind":"sleep","ms":300,"tag":"b"}"#))
            .unwrap();
        match store.submit(&parse(r#"{"kind":"sleep","ms":300,"tag":"c"}"#)) {
            Err(SubmitError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Resubmitting a *known* job is a lookup, never shed.
        let (again, resubmitted) = store
            .submit(&parse(r#"{"kind":"sleep","ms":300,"tag":"a"}"#))
            .unwrap();
        assert_eq!(again, id1);
        assert!(resubmitted);
        store.close();
    }

    #[test]
    fn unknown_ids_have_no_status() {
        let store = JobStore::start(1, 1, None, None);
        assert!(store.status("job-999").is_none());
        assert!(store.wait("job-999").is_none());
        store.close();
    }

    #[test]
    fn manifests_record_finished_jobs() {
        let dir = std::env::temp_dir().join(format!("swserve-jobs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.manifest.jsonl");
        let writer = Arc::new(ManifestWriter::open(&path, false).unwrap());
        let store = JobStore::start(1, 4, Some(writer), None);
        let (id, _) = store.submit(&parse(r#"{"kind":"sleep","ms":1}"#)).unwrap();
        store.wait(&id);
        store.close();
        let manifest = swrun::Manifest::load(&path).unwrap();
        let completed = manifest.completed();
        assert!(completed.contains_key(&id), "manifest must record {id}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
