//! Behavioral gate/circuit evaluation for `POST /v1/gate/eval`.
//!
//! Two stages, both pure functions of the request JSON:
//!
//! 1. [`normalize`] validates a request and rewrites it into canonical
//!    form — defaults filled in, bits coerced to `0`/`1` numbers,
//!    unknown fields rejected. Because [`swjson::Json`] objects render
//!    with sorted keys, the canonical rendering is a normal form: any
//!    two requests that mean the same thing render identically, which
//!    is what the content-addressed cache hashes.
//! 2. [`evaluate`] runs the normalized request on the analytic wave
//!    model and returns the response document, with `swperf`
//!    energy/delay costs attached.
//!
//! The `repro eval` CLI prints `evaluate(normalize(request)).render()`
//! and the server sends exactly the same bytes as the response body, so
//! HTTP and CLI answers are byte-identical by construction.

use swgates::circuit::{Circuit, Signal};
use swgates::encoding::Bit;
use swgates::gates::{
    AndGate, GateOutputs, Maj3Gate, NandGate, NorGate, OrGate, XnorGate, XorGate,
};
use swgates::truth::TruthTable;
use swgates::wavemodel::AnalyticBackend;
use swjson::Json;
use swperf::mecell::MeCell;
use swperf::swcost::SwGateKind;
use swperf::{circuit_cost, GateCost};

/// A request the evaluator rejects; always a client error (HTTP 400).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// What is wrong with the request.
    pub message: String,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for EvalError {}

pub(crate) fn bad(message: impl Into<String>) -> EvalError {
    EvalError {
        message: message.into(),
    }
}

const GATES: [&str; 7] = ["maj3", "xor", "and", "or", "nand", "nor", "xnor"];
const CIRCUITS: [&str; 2] = ["full_adder", "ripple_carry_adder"];
/// Truth-table enumeration bound for circuits (2^10 rows max).
const MAX_ENUM_INPUTS: usize = 10;

fn gate_arity(gate: &str) -> usize {
    if gate == "maj3" {
        3
    } else {
        2
    }
}

pub(crate) fn parse_bits(value: &Json, expected: usize, what: &str) -> Result<Vec<Bit>, EvalError> {
    let items = value
        .as_arr()
        .ok_or_else(|| bad(format!("`inputs` must be an array of 0/1 for {what}")))?;
    if items.len() != expected {
        return Err(bad(format!(
            "{what} takes {expected} inputs, got {}",
            items.len()
        )));
    }
    items
        .iter()
        .map(|item| match item.as_f64() {
            Some(0.0) => Ok(Bit::Zero),
            Some(1.0) => Ok(Bit::One),
            _ => Err(bad(format!("inputs must be 0 or 1, got {}", item.render()))),
        })
        .collect()
}

pub(crate) fn bits_json(bits: &[Bit]) -> Json {
    Json::Arr(
        bits.iter()
            .map(|b| Json::Num(f64::from(b.as_u8())))
            .collect(),
    )
}

/// Validates `request` and rewrites it into the canonical form whose
/// rendering is the cache's content address.
///
/// # Errors
///
/// [`EvalError`] on unknown kinds/gates/fields, malformed inputs, or
/// out-of-range parameters.
pub fn normalize(request: &Json) -> Result<Json, EvalError> {
    let fields = request
        .as_obj()
        .ok_or_else(|| bad("request body must be a JSON object"))?;
    let kind = match request.get("kind") {
        None => "gate",
        Some(k) => k.as_str().ok_or_else(|| bad("`kind` must be a string"))?,
    };
    let tag = match request.get("tag") {
        None => None,
        Some(t) => Some(
            t.as_str()
                .ok_or_else(|| bad("`tag` must be a string"))?
                .to_string(),
        ),
    };
    match kind {
        "gate" => {
            for key in fields.keys() {
                if !matches!(key.as_str(), "kind" | "gate" | "backend" | "inputs" | "tag") {
                    return Err(bad(format!("unknown field `{key}` in gate request")));
                }
            }
            let gate = request
                .get("gate")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("gate requests need a `gate` string"))?;
            if !GATES.contains(&gate) {
                return Err(bad(format!(
                    "unknown gate `{gate}` (expected one of {})",
                    GATES.join(", ")
                )));
            }
            let backend = match request.get("backend") {
                None => "paper",
                Some(b) => b
                    .as_str()
                    .ok_or_else(|| bad("`backend` must be a string"))?,
            };
            if !matches!(backend, "paper" | "ideal") {
                return Err(bad(format!(
                    "unknown backend `{backend}` (expected `paper` or `ideal`)"
                )));
            }
            let mut out = vec![
                ("kind", Json::str("gate")),
                ("gate", Json::str(gate)),
                ("backend", Json::str(backend)),
            ];
            if let Some(inputs) = request.get("inputs") {
                let bits = parse_bits(inputs, gate_arity(gate), gate)?;
                out.push(("inputs", bits_json(&bits)));
            }
            if let Some(tag) = tag {
                out.push(("tag", Json::str(tag)));
            }
            Ok(Json::obj(out))
        }
        "circuit" => {
            for key in fields.keys() {
                if !matches!(
                    key.as_str(),
                    "kind" | "circuit" | "width" | "inputs" | "tag"
                ) {
                    return Err(bad(format!("unknown field `{key}` in circuit request")));
                }
            }
            let name = request
                .get("circuit")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("circuit requests need a `circuit` string"))?;
            if !CIRCUITS.contains(&name) {
                return Err(bad(format!(
                    "unknown circuit `{name}` (expected one of {})",
                    CIRCUITS.join(", ")
                )));
            }
            let mut out = vec![("kind", Json::str("circuit")), ("circuit", Json::str(name))];
            let circuit = if name == "ripple_carry_adder" {
                let width = match request.get("width") {
                    None => 2,
                    Some(w) => {
                        let w = w.as_f64().ok_or_else(|| bad("`width` must be a number"))?;
                        if w.fract() != 0.0 || !(1.0..=8.0).contains(&w) {
                            return Err(bad("`width` must be an integer in 1..=8"));
                        }
                        w as usize
                    }
                };
                out.push(("width", Json::Num(width as f64)));
                Circuit::ripple_carry_adder(width)
            } else {
                if request.get("width").is_some() {
                    return Err(bad("`width` only applies to ripple_carry_adder"));
                }
                Circuit::full_adder()
            };
            if let Some(inputs) = request.get("inputs") {
                let bits = parse_bits(inputs, circuit.input_count(), name)?;
                out.push(("inputs", bits_json(&bits)));
            } else if circuit.input_count() > MAX_ENUM_INPUTS {
                return Err(bad(format!(
                    "circuit has {} inputs; supply `inputs` explicitly (truth-table \
                     enumeration is capped at {MAX_ENUM_INPUTS} inputs)",
                    circuit.input_count()
                )));
            }
            if let Some(tag) = tag {
                out.push(("tag", Json::str(tag)));
            }
            Ok(Json::obj(out))
        }
        other => Err(bad(format!(
            "unknown kind `{other}` (expected `gate` or `circuit`)"
        ))),
    }
}

fn signal_json(signal: &swgates::gates::OutputSignal) -> Json {
    Json::obj([
        ("bit", Json::Num(f64::from(signal.bit.as_u8()))),
        ("normalized", Json::Num(signal.normalized)),
        ("phase", Json::Num(signal.phase)),
    ])
}

fn outputs_json(outputs: &GateOutputs) -> Json {
    Json::obj([
        ("o1", signal_json(&outputs.o1)),
        ("o2", signal_json(&outputs.o2)),
    ])
}

fn gate_cost_json(cost: &GateCost) -> Json {
    Json::obj([
        ("energy_aj", Json::Num(cost.energy_aj())),
        ("delay_ns", Json::Num(cost.delay_ns())),
        ("cells", Json::Num(cost.device_count() as f64)),
    ])
}

fn circuit_cost_json(cost: &circuit_cost::CircuitCost) -> Json {
    Json::obj([
        ("energy_aj", Json::Num(cost.energy_aj())),
        ("delay_ns", Json::Num(cost.delay_ns())),
        ("transducers", Json::Num(cost.transducers as f64)),
        ("gates", Json::Num(cost.gates as f64)),
    ])
}

fn sim(error: swgates::SwGateError) -> EvalError {
    bad(format!("evaluation failed: {error}"))
}

/// Rows of a gate truth table as response JSON, plus the verification
/// verdict against the ideal logic function.
fn table_json<const N: usize>(
    table: &TruthTable<N>,
    ideal: impl Fn([Bit; N]) -> Bit,
) -> (Json, bool, bool, f64) {
    let rows: Vec<Json> = table
        .rows()
        .iter()
        .map(|row| {
            Json::obj([
                ("inputs", bits_json(&row.inputs)),
                ("o1", signal_json(&row.outputs.o1)),
                ("o2", signal_json(&row.outputs.o2)),
            ])
        })
        .collect();
    (
        Json::Arr(rows),
        table.verify(ideal).is_ok(),
        table.fanout_consistent(),
        table.max_fanout_mismatch(),
    )
}

fn eval_gate(normalized: &Json) -> Result<Json, EvalError> {
    let gate = normalized
        .get("gate")
        .and_then(Json::as_str)
        .expect("normalized requests have a gate");
    let backend = match normalized.get("backend").and_then(Json::as_str) {
        Some("ideal") => AnalyticBackend::ideal(),
        _ => AnalyticBackend::paper(),
    };
    let cost = match gate {
        "xor" | "xnor" => SwGateKind::TriangleXor.paper_cost(),
        _ => SwGateKind::TriangleMaj3.paper_cost(),
    };
    let single = normalized
        .get("inputs")
        .map(|inputs| parse_bits(inputs, gate_arity(gate), gate))
        .transpose()?;

    let mut fields = vec![("request", normalized.clone())];
    match single {
        Some(bits) => {
            let outputs = match gate {
                "maj3" => Maj3Gate::paper().evaluate(&backend, [bits[0], bits[1], bits[2]]),
                "xor" => XorGate::paper().evaluate(&backend, [bits[0], bits[1]]),
                "xnor" => XnorGate::paper().evaluate(&backend, [bits[0], bits[1]]),
                "and" => AndGate::paper()
                    .map_err(sim)?
                    .evaluate(&backend, [bits[0], bits[1]]),
                "or" => OrGate::paper()
                    .map_err(sim)?
                    .evaluate(&backend, [bits[0], bits[1]]),
                "nand" => NandGate::paper()
                    .map_err(sim)?
                    .evaluate(&backend, [bits[0], bits[1]]),
                "nor" => NorGate::paper()
                    .map_err(sim)?
                    .evaluate(&backend, [bits[0], bits[1]]),
                other => unreachable!("normalize admits only known gates, got {other}"),
            }
            .map_err(sim)?;
            fields.push(("outputs", outputs_json(&outputs)));
            fields.push(("fanout_consistent", Json::Bool(outputs.fanout_consistent())));
        }
        None => {
            let (rows, verified, consistent, mismatch) = match gate {
                "maj3" => {
                    let table = Maj3Gate::paper().truth_table(&backend).map_err(sim)?;
                    table_json(&table, |p| Bit::majority(p[0], p[1], p[2]))
                }
                "xor" => {
                    let table = XorGate::paper().truth_table(&backend).map_err(sim)?;
                    table_json(&table, |p| Bit::xor(p[0], p[1]))
                }
                "xnor" => {
                    let table = XnorGate::paper().truth_table(&backend).map_err(sim)?;
                    table_json(&table, |p| !Bit::xor(p[0], p[1]))
                }
                "and" => {
                    let table = AndGate::paper()
                        .map_err(sim)?
                        .truth_table(&backend)
                        .map_err(sim)?;
                    table_json(&table, |p| AndGate::logic(p[0], p[1]))
                }
                "or" => {
                    let table = OrGate::paper()
                        .map_err(sim)?
                        .truth_table(&backend)
                        .map_err(sim)?;
                    table_json(&table, |p| OrGate::logic(p[0], p[1]))
                }
                "nand" => {
                    let table = NandGate::paper()
                        .map_err(sim)?
                        .truth_table(&backend)
                        .map_err(sim)?;
                    table_json(&table, |p| NandGate::logic(p[0], p[1]))
                }
                "nor" => {
                    let table = NorGate::paper()
                        .map_err(sim)?
                        .truth_table(&backend)
                        .map_err(sim)?;
                    table_json(&table, |p| NorGate::logic(p[0], p[1]))
                }
                other => unreachable!("normalize admits only known gates, got {other}"),
            };
            fields.push(("rows", rows));
            fields.push(("verified", Json::Bool(verified)));
            fields.push(("fanout_consistent", Json::Bool(consistent)));
            fields.push(("max_fanout_mismatch", Json::Num(mismatch)));
        }
    }
    fields.push(("cost", gate_cost_json(&cost)));
    Ok(Json::obj(fields))
}

fn build_circuit(normalized: &Json) -> Circuit {
    match normalized.get("circuit").and_then(Json::as_str) {
        Some("ripple_carry_adder") => {
            let width = normalized
                .get("width")
                .and_then(Json::as_f64)
                .expect("normalized ripple_carry_adder has a width")
                as usize;
            Circuit::ripple_carry_adder(width)
        }
        _ => Circuit::full_adder(),
    }
}

fn eval_circuit(normalized: &Json) -> Result<Json, EvalError> {
    let circuit = build_circuit(normalized);
    let mut fields = vec![("request", normalized.clone())];
    match normalized.get("inputs") {
        Some(inputs) => {
            let bits = parse_bits(inputs, circuit.input_count(), "circuit")?;
            let outputs = circuit.evaluate(&bits).map_err(sim)?;
            fields.push(("outputs", bits_json(&outputs)));
        }
        None => {
            let n = circuit.input_count();
            let rows: Result<Vec<Json>, EvalError> = (0..1usize << n)
                .map(|pattern| {
                    let bits: Vec<Bit> = (0..n)
                        .map(|i| Bit::from_bool(pattern >> i & 1 == 1))
                        .collect();
                    let outputs = circuit.evaluate(&bits).map_err(sim)?;
                    Ok(Json::obj([
                        ("inputs", bits_json(&bits)),
                        ("outputs", bits_json(&outputs)),
                    ]))
                })
                .collect();
            fields.push(("rows", Json::Arr(rows?)));
        }
    }
    let (excitations, detections) = circuit.transducer_counts();
    fields.push(("gates", Json::Num(circuit.gate_count() as f64)));
    fields.push((
        "transducers",
        Json::obj([
            ("excitation", Json::Num(excitations as f64)),
            ("detection", Json::Num(detections as f64)),
        ]),
    ));
    let violations = circuit.fanout_violations();
    fields.push(("fanout_violations", Json::Num(violations.len() as f64)));
    fields.push((
        "fanout",
        Json::obj([
            ("legal", Json::Bool(violations.is_empty())),
            (
                "violations",
                Json::Arr(
                    violations
                        .iter()
                        .map(|&(signal, fanout)| {
                            let (of, index, limit) = match signal {
                                Signal::Gate(g) => (
                                    "gate",
                                    g,
                                    circuit.gate_kind(g).map_or(0, |k| k.max_fanout()),
                                ),
                                Signal::Input(i) => ("input", i, 0),
                            };
                            Json::obj([
                                ("of", Json::str(of)),
                                ("index", Json::Num(index as f64)),
                                ("fanout", Json::Num(fanout as f64)),
                                ("limit", Json::Num(limit as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    ));
    let me = MeCell::paper();
    let (fo2, replicated, saving) = circuit_cost::fanout_advantage(&circuit, &me);
    fields.push((
        "cost",
        Json::obj([
            ("fanout2", circuit_cost_json(&fo2)),
            ("replicated", circuit_cost_json(&replicated)),
            ("energy_saving", Json::Num(saving)),
        ]),
    ));
    Ok(Json::obj(fields))
}

/// Evaluates a **normalized** request (see [`normalize`]) into the
/// response document. Deterministic: equal canonical requests produce
/// byte-identical responses.
///
/// # Errors
///
/// [`EvalError`] if the evaluation fails (all failures are client
/// errors — the analytic backend itself is infallible on valid
/// layouts).
pub fn evaluate(normalized: &Json) -> Result<Json, EvalError> {
    match normalized.get("kind").and_then(Json::as_str) {
        Some("circuit") => eval_circuit(normalized),
        _ => eval_gate(normalized),
    }
}

/// Convenience for the CLI and tests: normalize, evaluate, render.
///
/// # Errors
///
/// [`EvalError`] from either stage.
pub fn respond(request: &Json) -> Result<String, EvalError> {
    Ok(evaluate(&normalize(request)?)?.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).expect("test request parses")
    }

    #[test]
    fn normalization_is_a_normal_form() {
        // Field order, defaults and whitespace all normalize away.
        let a = normalize(&parse(r#"{"gate":"maj3","inputs":[0,1,1]}"#)).unwrap();
        let b = normalize(&parse(
            r#"{ "inputs":[0, 1, 1], "backend":"paper", "kind":"gate", "gate":"maj3" }"#,
        ))
        .unwrap();
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn distinct_requests_normalize_distinctly() {
        let a = normalize(&parse(r#"{"gate":"maj3","inputs":[0,1,1]}"#)).unwrap();
        let b = normalize(&parse(r#"{"gate":"maj3","inputs":[1,1,1]}"#)).unwrap();
        let c = normalize(&parse(r#"{"gate":"maj3","inputs":[0,1,1],"tag":"t"}"#)).unwrap();
        assert_ne!(a.render(), b.render());
        assert_ne!(a.render(), c.render());
    }

    #[test]
    fn unknown_fields_gates_and_kinds_are_rejected() {
        for bad in [
            r#"{"gate":"maj3","bogus":1}"#,
            r#"{"gate":"maj9"}"#,
            r#"{"gate":"maj3","backend":"quantum"}"#,
            r#"{"kind":"poem"}"#,
            r#"{"kind":"circuit","circuit":"alu"}"#,
            r#"{"gate":"maj3","inputs":[0,1]}"#,
            r#"{"gate":"maj3","inputs":[0,1,2]}"#,
            r#"{"kind":"circuit","circuit":"full_adder","width":2}"#,
            r#"{"kind":"circuit","circuit":"ripple_carry_adder","width":99}"#,
            "[1,2,3]",
        ] {
            assert!(normalize(&parse(bad)).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn maj3_single_pattern_evaluates_majority() {
        let response =
            evaluate(&normalize(&parse(r#"{"gate":"maj3","inputs":[0,1,1]}"#)).unwrap()).unwrap();
        let o1 = response
            .get("outputs")
            .and_then(|o| o.get("o1"))
            .and_then(|s| s.get("bit"))
            .and_then(Json::as_f64);
        assert_eq!(o1, Some(1.0));
        assert_eq!(
            response.get("fanout_consistent").and_then(Json::as_bool),
            Some(true)
        );
        let cost = response.get("cost").unwrap();
        assert!((cost.get("energy_aj").and_then(Json::as_f64).unwrap() - 10.32).abs() < 0.05);
        assert_eq!(cost.get("cells").and_then(Json::as_f64), Some(5.0));
    }

    #[test]
    fn every_gate_truth_table_verifies() {
        for gate in GATES {
            let request = parse(&format!(r#"{{"gate":"{gate}"}}"#));
            let response = evaluate(&normalize(&request).unwrap()).unwrap();
            assert_eq!(
                response.get("verified").and_then(Json::as_bool),
                Some(true),
                "{gate} truth table must verify"
            );
            let rows = response.get("rows").and_then(Json::as_arr).unwrap();
            assert_eq!(rows.len(), 1 << gate_arity(gate));
        }
    }

    #[test]
    fn full_adder_adds() {
        // a=1, b=1, cin=1 → sum=1, carry=1.
        let response = evaluate(
            &normalize(&parse(
                r#"{"kind":"circuit","circuit":"full_adder","inputs":[1,1,1]}"#,
            ))
            .unwrap(),
        )
        .unwrap();
        let outputs = response.get("outputs").and_then(Json::as_arr).unwrap();
        let bits: Vec<f64> = outputs.iter().filter_map(Json::as_f64).collect();
        assert_eq!(bits, vec![1.0, 1.0]);
        // No gate output drives two loads here, so replication gains
        // nothing — but the estimate must still be present and finite.
        let saving = response
            .get("cost")
            .and_then(|c| c.get("energy_saving"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(saving >= 0.0, "expected non-negative saving, got {saving}");
    }

    #[test]
    fn ripple_carry_truth_table_matches_arithmetic() {
        let response = evaluate(
            &normalize(&parse(
                r#"{"kind":"circuit","circuit":"ripple_carry_adder","width":2}"#,
            ))
            .unwrap(),
        )
        .unwrap();
        let rows = response.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 32); // 2·2+1 inputs
        for row in rows {
            let inputs: Vec<u64> = row
                .get("inputs")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .filter_map(Json::as_f64)
                .map(|x| x as u64)
                .collect();
            let outputs: Vec<u64> = row
                .get("outputs")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .filter_map(Json::as_f64)
                .map(|x| x as u64)
                .collect();
            let a = inputs[0] | inputs[1] << 1;
            let b = inputs[2] | inputs[3] << 1;
            let cin = inputs[4];
            // Outputs: sums little-endian then the final carry.
            let value = outputs[0] | outputs[1] << 1 | outputs[2] << 2;
            assert_eq!(value, a + b + cin, "row {inputs:?}");
        }
        // Each stage's carry drives the next stage's XOR and MAJ3, so
        // fan-out-of-2 beats single-output replication on energy here.
        let saving = response
            .get("cost")
            .and_then(|c| c.get("energy_saving"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(
            saving > 0.0,
            "expected positive energy saving, got {saving}"
        );
    }

    #[test]
    fn responses_are_deterministic() {
        let request = parse(r#"{"gate":"xor","inputs":[1,0]}"#);
        assert_eq!(respond(&request).unwrap(), respond(&request).unwrap());
    }
}
