//! swserve — a std-only gate-evaluation HTTP service.
//!
//! The paper's gates are cheap to *query* (a truth-table row, a cost
//! figure) but expensive to *compute* (an LLG simulation), which makes
//! them a natural fit for a resident service: calibrate once, answer
//! many. This crate is that service, built on `std::net` alone — no
//! async runtime, no HTTP framework — with the serving techniques that
//! actually matter at this scale implemented from first principles:
//!
//! * [`eval`] — behavioral evaluation of MAJ3/XOR/derived gates and
//!   netlist circuits, with canonical request normalization. The CLI
//!   `repro eval` and `POST /v1/gate/eval` share [`eval::respond`], so
//!   HTTP answers are byte-identical to local ones.
//! * [`netlist`] — the circuit compiler service: `POST
//!   /v1/netlist/eval` accepts a demo name, swnet netlist text/JSON,
//!   or raw truth tables, and answers with the legalized, sized, and
//!   CMOS-scored circuit. `repro compile` shares [`netlist::respond`].
//! * [`cache`] — a content-addressed result cache with single-flight
//!   coalescing: N identical concurrent requests cost one evaluation.
//! * [`jobs`] — micromagnetic evaluations dispatched async onto an
//!   [`swrun::ResidentPool`], with content-addressed job ids and
//!   manifest-backed results.
//! * [`http`] — a bounded HTTP/1.1 request/response layer.
//! * [`metrics`] — lock-free counters and log2 latency histograms
//!   behind `GET /metrics`.
//! * [`server`] — routing, admission control (shed with `429` +
//!   `Retry-After` past `queue_depth`), and graceful drain.
//!
//! Start one with [`Server::bind`] + [`Server::run`], or from the CLI:
//! `repro serve --addr 127.0.0.1:8080 --workers 2 --queue-depth 64`.

pub mod cache;
pub mod eval;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod netlist;
pub mod server;
pub mod store;

pub use cache::{content_key, Begin, FlightError, ResultCache};
pub use eval::{normalize, respond, EvalError};
pub use jobs::{JobStore, SubmitError};
pub use metrics::ServerMetrics;
pub use server::{Server, ServerConfig, ServerHandle};
