//! The HTTP server: accept loop, routing, and the serving policies that
//! tie the crate together.
//!
//! * `POST /v1/gate/eval` — behavioral gate/circuit evaluation, answered
//!   inline through the single-flight [`ResultCache`]: concurrent
//!   identical requests cost one evaluation, repeats are cache hits, and
//!   the `X-Cache` response header says which (`hit`/`miss`/`coalesced`)
//!   without perturbing the body (bodies stay byte-identical to the CLI
//!   `repro eval` output).
//! * `POST /v1/netlist/eval` — the circuit compiler: netlist text/JSON,
//!   truth tables, or demo names in; legalized, sized, CMOS-scored
//!   circuits out. Same cache, same single-flight policy, bodies
//!   byte-identical to `repro compile`.
//! * `POST /v1/jobs`, `GET /v1/jobs/:id` — micromagnetic evaluations
//!   dispatched onto the resident pool; see [`crate::jobs`].
//! * `GET /healthz`, `GET /metrics` — liveness and live counters.
//! * `POST /v1/admin/shutdown` — graceful drain: stop accepting work,
//!   finish in-flight requests and jobs, flush the manifest. (A pure-std
//!   binary cannot trap SIGTERM, so drain is an endpoint.)
//!
//! Backpressure: evaluation work (cache-miss leaders and job
//! submissions) passes admission control bounded by `queue_depth`;
//! beyond it requests are shed with `429` + `Retry-After` instead of
//! queueing unboundedly. Cache hits and coalesced followers bypass
//! admission — they cost no evaluation.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use swjson::Json;
use swrun::ManifestWriter;
use swstore::{Store, StoreConfig};

use crate::cache::{content_key, Begin, FlightError, ResultCache};
use crate::eval;
use crate::http::{error_body, read_request, write_json, ReadError, Request};
use crate::jobs::{JobStore, SubmitError};
use crate::metrics::ServerMetrics;
use crate::netlist;

/// How a [`Server`] is configured; see `repro serve --help` for the
/// CLI surface.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads for micromagnetic jobs.
    pub workers: usize,
    /// Admission bound: concurrent evaluations (gate-eval leaders, and
    /// unfinished jobs) beyond this are shed with 429.
    pub queue_depth: usize,
    /// Result-cache capacity (distinct canonical requests).
    pub cache_capacity: usize,
    /// Manifest path for job results (`None` disables the manifest).
    pub manifest: Option<PathBuf>,
    /// Disk-store directory for the second cache level (`None` keeps the
    /// cache RAM-only, the pre-store behavior).
    pub store: Option<PathBuf>,
    /// Disk-store capacity in bytes (LRU compaction bound).
    pub store_capacity_bytes: u64,
    /// A JSON-lines manifest (or raw request log) replayed into the
    /// disk store at boot; requires `store`.
    pub prewarm: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            cache_capacity: 1024,
            manifest: None,
            store: None,
            store_capacity_bytes: 64 << 20,
            prewarm: None,
        }
    }
}

struct Shared {
    metrics: ServerMetrics,
    cache: ResultCache,
    /// The disk level of the cache hierarchy (None = RAM-only).
    store: Option<Arc<Store>>,
    jobs: JobStore,
    manifest: Option<Arc<ManifestWriter>>,
    queue_depth: usize,
    /// Gate-eval leader evaluations currently running.
    admitted: AtomicUsize,
    shutdown: AtomicBool,
}

/// A cheap handle onto a running server: its address, live metrics, and
/// the shutdown trigger. This is how in-process tests observe the
/// server without going through the socket.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's live metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Begins a graceful drain, as `POST /v1/admin/shutdown` would.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once a drain has begun.
    pub fn draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// The gate-evaluation service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the listener and starts the job subsystem. The server does
    /// not serve until [`run`](Server::run).
    ///
    /// # Errors
    ///
    /// Socket bind failures and manifest-open failures.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let manifest = match &config.manifest {
            None => None,
            Some(path) => Some(Arc::new(ManifestWriter::open(path, false).map_err(
                |e| std::io::Error::other(format!("manifest `{}`: {e}", path.display())),
            )?)),
        };
        let store = match &config.store {
            None => None,
            Some(dir) => {
                let store =
                    Store::open(StoreConfig::new(dir).capacity_bytes(config.store_capacity_bytes))
                        .map_err(|e| {
                            std::io::Error::other(format!("store `{}`: {e}", dir.display()))
                        })?;
                let store = Arc::new(store);
                if let Some(manifest) = &config.prewarm {
                    let warmed = crate::store::prewarm(&store, manifest).map_err(|e| {
                        std::io::Error::other(format!("pre-warm `{}`: {e}", manifest.display()))
                    })?;
                    if warmed > 0 {
                        eprintln!(
                            "swserve: pre-warmed {warmed} result(s) from {}",
                            manifest.display()
                        );
                    }
                }
                Some(store)
            }
        };
        let shared = Arc::new(Shared {
            metrics: ServerMetrics::default(),
            cache: ResultCache::new(config.cache_capacity),
            jobs: JobStore::start(
                config.workers,
                config.queue_depth,
                manifest.clone(),
                store.clone(),
            ),
            store,
            manifest,
            queue_depth: config.queue_depth,
            admitted: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server {
            listener,
            shared,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for observing and shutting down the server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a drain is triggered (`POST /v1/admin/shutdown` or
    /// [`ServerHandle::shutdown`]), then drains gracefully: stops
    /// accepting connections, lets open connections and accepted jobs
    /// finish, and flushes a metrics summary to the manifest.
    ///
    /// # Errors
    ///
    /// Only listener-level failures; per-connection errors are contained.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        // Accept backoff: a fixed sleep on WouldBlock stalls connections
        // that arrive just after the loop dozes off — under a bursty
        // loadtest that backlog stacked up into a ~70 ms p99 tail. Stay
        // hot (100 µs) right after activity and only decay to the 5 ms
        // idle tick when the listener stays quiet.
        const ACCEPT_BACKOFF_MIN: Duration = Duration::from_micros(100);
        const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(5);
        let mut backoff = ACCEPT_BACKOFF_MIN;
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared
                        .metrics
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(&self.shared);
                    connections.push(thread::spawn(move || handle_connection(stream, &shared)));
                    backoff = ACCEPT_BACKOFF_MIN;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            // Reap finished connection threads so the vec stays small on
            // long-lived servers.
            connections.retain(|c| !c.is_finished());
        }
        // Drain: no new connections; open ones notice the flag within
        // one read-timeout tick and close after their in-flight request.
        for connection in connections {
            let _ = connection.join();
        }
        self.shared.jobs.drain();
        sync_job_counters(&self.shared);
        if let Some(writer) = &self.shared.manifest {
            if let Err(e) = writer.summary(&self.shared.metrics.render()) {
                eprintln!("swserve: manifest summary failed: {e}");
            }
        }
        Ok(())
    }
}

/// Derives the `Retry-After` seconds for a 429: the time the current
/// backlog needs to drain at the observed mean per-item latency,
/// rounded up. Before any latency has been observed the estimate
/// defaults to 1 s, and the result is clamped to 1..=60 so a cold or
/// pathological estimate never turns clients away for minutes.
fn retry_after_secs(backlog: usize, mean: Option<Duration>) -> u64 {
    match mean {
        Some(mean) if mean > Duration::ZERO => {
            ((backlog as f64 * mean.as_secs_f64()).ceil() as u64).clamp(1, 60)
        }
        _ => 1,
    }
}

impl Shared {
    /// Retry hint for shed evaluations: the admitted-leader backlog
    /// drained at this endpoint's observed mean latency.
    fn eval_retry_after(&self, endpoint: &crate::metrics::EndpointMetrics) -> u64 {
        let backlog = self.admitted.load(Ordering::SeqCst).max(self.queue_depth);
        retry_after_secs(backlog, endpoint.mean_latency())
    }

    /// Retry hint for shed job submissions: the unfinished-job backlog
    /// drained at the observed mean job wall time.
    fn jobs_retry_after(&self) -> u64 {
        retry_after_secs(self.jobs.in_flight(), self.jobs.mean_wall())
    }
}

/// Copies the job store's lifetime counts into the metrics atomics so
/// `/metrics` renders them without the store needing a metrics handle.
fn sync_job_counters(shared: &Shared) {
    let (accepted, done, failed) = shared.jobs.stats();
    shared
        .metrics
        .jobs_accepted
        .store(accepted, Ordering::Relaxed);
    shared.metrics.jobs_done.store(done, Ordering::Relaxed);
    shared.metrics.jobs_failed.store(failed, Ordering::Relaxed);
    if let Some(store) = &shared.store {
        shared.metrics.sync_store(&store.counters());
    }
}

/// One response, ready to write: status, extra headers, JSON body.
struct Reply {
    status: u16,
    extra: Vec<(&'static str, String)>,
    body: String,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            extra: Vec::new(),
            body,
        }
    }

    fn error(status: u16, message: &str) -> Reply {
        Reply::json(status, error_body(message))
    }

    fn shed(retry_secs: u64) -> Reply {
        let mut reply = Reply::error(429, "server overloaded; retry shortly");
        reply.extra.push(("retry-after", retry_secs.to_string()));
        reply
    }

    fn cached(body: &str, x_cache: &str) -> Reply {
        let mut reply = Reply::json(200, body.to_string());
        reply.extra.push(("x-cache", x_cache.to_string()));
        reply
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Short read timeout so idle keep-alive connections notice a drain.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    loop {
        let request = match read_request(&stream) {
            Ok(request) => request,
            Err(ReadError::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Malformed(message)) => {
                let _ = write_json(&mut stream, 400, &[], &error_body(&message), false);
                return;
            }
            Err(ReadError::BodyTooLarge) => {
                let _ = write_json(&mut stream, 413, &[], &error_body("body too large"), false);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        let close = request.wants_close() || shared.shutdown.load(Ordering::SeqCst);

        let started = Instant::now();
        let (reply, endpoint) = route(&request, shared);
        let latency = started.elapsed();
        endpoint_metrics(endpoint, shared).observe(latency, reply.status >= 400);

        let extra: Vec<(&str, &str)> = reply
            .extra
            .iter()
            .map(|(name, value)| (*name, value.as_str()))
            .collect();
        if write_json(&mut stream, reply.status, &extra, &reply.body, !close).is_err() || close {
            return;
        }
    }
}

/// Which endpoint a request landed on, for metrics attribution.
#[derive(Clone, Copy)]
enum Endpoint {
    GateEval,
    NetlistEval,
    JobsSubmit,
    JobsGet,
    Healthz,
    Metrics,
    Other,
}

fn endpoint_metrics(endpoint: Endpoint, shared: &Shared) -> &crate::metrics::EndpointMetrics {
    match endpoint {
        Endpoint::GateEval => &shared.metrics.gate_eval,
        Endpoint::NetlistEval => &shared.metrics.netlist_eval,
        Endpoint::JobsSubmit => &shared.metrics.jobs_submit,
        Endpoint::JobsGet => &shared.metrics.jobs_get,
        Endpoint::Healthz => &shared.metrics.healthz,
        Endpoint::Metrics => &shared.metrics.metrics,
        Endpoint::Other => &shared.metrics.other,
    }
}

fn route(request: &Request, shared: &Shared) -> (Reply, Endpoint) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (healthz(shared), Endpoint::Healthz),
        ("POST", "/v1/gate/eval") => (
            cached_eval(
                request,
                shared,
                &shared.metrics.gate_eval,
                eval::normalize,
                eval::evaluate,
            ),
            Endpoint::GateEval,
        ),
        ("POST", "/v1/netlist/eval") => (
            cached_eval(
                request,
                shared,
                &shared.metrics.netlist_eval,
                netlist::normalize,
                netlist::evaluate,
            ),
            Endpoint::NetlistEval,
        ),
        ("POST", "/v1/jobs") => (jobs_submit(request, shared), Endpoint::JobsSubmit),
        ("GET", "/metrics") => (metrics_reply(shared), Endpoint::Metrics),
        ("POST", "/v1/admin/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (
                Reply::json(200, r#"{"draining":true}"#.to_string()),
                Endpoint::Other,
            )
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let id = &path["/v1/jobs/".len()..];
            (jobs_get(id, shared), Endpoint::JobsGet)
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/gate/eval" | "/v1/netlist/eval" | "/v1/jobs"
            | "/v1/admin/shutdown",
        ) => (Reply::error(405, "method not allowed"), Endpoint::Other),
        _ => (Reply::error(404, "no such endpoint"), Endpoint::Other),
    }
}

fn healthz(shared: &Shared) -> Reply {
    let body = Json::obj([
        ("status", Json::str("ok")),
        (
            "draining",
            Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
        ),
        ("jobs_in_flight", Json::Num(shared.jobs.in_flight() as f64)),
    ])
    .render();
    Reply::json(200, body)
}

fn metrics_reply(shared: &Shared) -> Reply {
    sync_job_counters(shared);
    Reply::json(200, shared.metrics.render().render())
}

/// The canonicalize-then-cache serving policy shared by the gate and
/// netlist evaluation endpoints. Both stages are pure functions of the
/// request JSON, so distinct endpoints can share one [`ResultCache`]:
/// canonical forms are disjoint by construction (gate requests carry a
/// `kind`, netlist requests a `netlist`), and the single-flight
/// admission accounting applies across both.
fn cached_eval(
    request: &Request,
    shared: &Shared,
    endpoint: &crate::metrics::EndpointMetrics,
    normalize: fn(&Json) -> Result<Json, eval::EvalError>,
    evaluate: fn(&Json) -> Result<Json, eval::EvalError>,
) -> Reply {
    let parsed = match Json::parse_bytes(&request.body) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::error(400, &format!("bad JSON: {e}")),
    };
    let normalized = match normalize(&parsed) {
        Ok(normalized) => normalized,
        Err(e) => return Reply::error(400, &e.message),
    };
    let key = content_key(&normalized.render());
    match shared.cache.begin(key) {
        Begin::Hit(body) => {
            shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            Reply::cached(&body, "ram")
        }
        Begin::Follower(flight) => match flight.wait() {
            Ok(body) => {
                shared
                    .metrics
                    .cache_coalesced
                    .fetch_add(1, Ordering::Relaxed);
                Reply::cached(&body, "coalesced")
            }
            Err(FlightError::Shed) => {
                shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                Reply::shed(shared.eval_retry_after(endpoint))
            }
            Err(FlightError::Eval(message)) => Reply::error(400, &message),
            Err(FlightError::Aborted) => Reply::error(500, "evaluation aborted"),
        },
        Begin::Leader(token) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.cache.abandon(token, FlightError::Shed);
                return Reply::error(503, "server is draining");
            }
            // Disk level, consulted under the leader token so N
            // concurrent identical requests still cost one disk read.
            // A disk hit promotes the body into RAM via `complete`
            // (followers and future repeats answer from RAM).
            if let Some(store) = &shared.store {
                if let Some(body) = store.get(key).and_then(|b| String::from_utf8(b).ok()) {
                    let body = shared.cache.complete(token, body);
                    return Reply::cached(&body, "disk");
                }
            }
            if shared.admitted.fetch_add(1, Ordering::SeqCst) >= shared.queue_depth {
                shared.admitted.fetch_sub(1, Ordering::SeqCst);
                shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                shared.cache.abandon(token, FlightError::Shed);
                return Reply::shed(shared.eval_retry_after(endpoint));
            }
            let outcome = evaluate(&normalized).map(|result| result.render());
            shared.admitted.fetch_sub(1, Ordering::SeqCst);
            match outcome {
                Ok(body) => {
                    shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                    // Write through to disk so the result survives a
                    // restart; a store write failure only costs
                    // durability, never the response.
                    if let Some(store) = &shared.store {
                        if let Err(e) = store.put(key, body.as_bytes()) {
                            eprintln!("swserve: store write failed: {e}");
                        }
                    }
                    let body = shared.cache.complete(token, body);
                    Reply::cached(&body, "miss")
                }
                Err(e) => {
                    shared
                        .cache
                        .abandon(token, FlightError::Eval(e.message.clone()));
                    Reply::error(400, &e.message)
                }
            }
        }
    }
}

fn jobs_submit(request: &Request, shared: &Shared) -> Reply {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Reply::error(503, "server is draining");
    }
    let parsed = match Json::parse_bytes(&request.body) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::error(400, &format!("bad JSON: {e}")),
    };
    match shared.jobs.submit(&parsed) {
        Ok((id, resubmitted)) => {
            let status = shared
                .jobs
                .status(&id)
                .and_then(|s| s.get("status").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_else(|| "queued".to_string());
            let body = Json::obj([
                ("id", Json::str(&id)),
                ("status", Json::str(&status)),
                ("resubmitted", Json::Bool(resubmitted)),
            ])
            .render();
            Reply::json(202, body)
        }
        Err(SubmitError::Invalid(e)) => Reply::error(400, &e.message),
        Err(SubmitError::Overloaded) => {
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            Reply::shed(shared.jobs_retry_after())
        }
        Err(SubmitError::Closed) => Reply::error(503, "server is draining"),
    }
}

fn jobs_get(id: &str, shared: &Shared) -> Reply {
    match shared.jobs.status(id) {
        Some(status) => Reply::json(200, status.render()),
        None => Reply::error(404, "no such job"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared(queue_depth: usize) -> Arc<Shared> {
        Arc::new(Shared {
            metrics: ServerMetrics::default(),
            cache: ResultCache::new(8),
            jobs: JobStore::start(1, queue_depth, None, None),
            manifest: None,
            store: None,
            queue_depth,
            admitted: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn routes_and_statuses() {
        let shared = test_shared(4);
        let cases = [
            (get("/healthz"), 200),
            (get("/metrics"), 200),
            (get("/nope"), 404),
            (post("/healthz", ""), 405),
            (post("/v1/gate/eval", "not json"), 400),
            (post("/v1/gate/eval", r#"{"gate":"warp"}"#), 400),
            (post("/v1/netlist/eval", r#"{"demo":"alu"}"#), 400),
            (get("/v1/netlist/eval"), 405),
            (post("/v1/jobs", r#"{"kind":"explode"}"#), 400),
            (get("/v1/jobs/job-0-dead"), 404),
        ];
        for (request, expected) in cases {
            let (reply, _) = route(&request, &shared);
            assert_eq!(
                reply.status, expected,
                "{} {} → {}",
                request.method, request.path, reply.body
            );
        }
    }

    #[test]
    fn gate_eval_miss_then_hit_with_identical_bodies() {
        let shared = test_shared(4);
        let request = post("/v1/gate/eval", r#"{"gate":"maj3","inputs":[0,1,1]}"#);
        let (first, _) = route(&request, &shared);
        assert_eq!(first.status, 200);
        assert_eq!(first.extra, vec![("x-cache", "miss".to_string())]);
        // Same meaning, different field order — still the same entry.
        let reordered = post("/v1/gate/eval", r#"{"inputs":[0,1,1],"gate":"maj3"}"#);
        let (second, _) = route(&reordered, &shared);
        assert_eq!(second.status, 200);
        assert_eq!(second.extra, vec![("x-cache", "ram".to_string())]);
        assert_eq!(first.body, second.body, "cache must not change bytes");
        assert_eq!(shared.metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(shared.metrics.cache_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn netlist_eval_coalesces_equivalent_spellings() {
        let shared = test_shared(4);
        let (first, endpoint) = route(&post("/v1/netlist/eval", r#"{"demo":"mul2"}"#), &shared);
        assert!(matches!(endpoint, Endpoint::NetlistEval));
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(first.extra, vec![("x-cache", "miss".to_string())]);
        // The same circuit spelled as netlist text lands on the same
        // cache entry: normalization compiles both to one canonical
        // form.
        let source = swnet::arith::array_multiplier(2).to_string();
        let spelled = Json::obj([("source", Json::str(&source))]).render();
        let (second, _) = route(&post("/v1/netlist/eval", &spelled), &shared);
        assert_eq!(second.status, 200);
        assert_eq!(second.extra, vec![("x-cache", "ram".to_string())]);
        assert_eq!(first.body, second.body);
        // And the body matches the CLI responder byte for byte.
        let cli = netlist::respond(&Json::parse(r#"{"demo":"mul2"}"#).unwrap()).unwrap();
        assert_eq!(first.body, cli);
    }

    #[test]
    fn gate_and_netlist_requests_do_not_collide_in_the_cache() {
        let shared = test_shared(4);
        let (gate, _) = route(
            &post(
                "/v1/gate/eval",
                r#"{"kind":"circuit","circuit":"full_adder"}"#,
            ),
            &shared,
        );
        let (net, _) = route(
            &post("/v1/netlist/eval", r#"{"demo":"full_adder"}"#),
            &shared,
        );
        assert_eq!(gate.status, 200);
        assert_eq!(net.status, 200);
        assert_eq!(net.extra, vec![("x-cache", "miss".to_string())]);
        assert_ne!(gate.body, net.body);
        assert_eq!(shared.metrics.cache_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn gate_eval_body_matches_cli_responder() {
        let shared = test_shared(4);
        let raw = r#"{"gate":"xor","inputs":[1,0],"backend":"paper"}"#;
        let (reply, _) = route(&post("/v1/gate/eval", raw), &shared);
        let cli = eval::respond(&Json::parse(raw).unwrap()).unwrap();
        assert_eq!(reply.body, cli, "server and CLI must emit identical bytes");
    }

    #[test]
    fn zero_queue_depth_sheds_every_evaluation() {
        let shared = test_shared(0);
        let (reply, _) = route(
            &post("/v1/gate/eval", r#"{"gate":"maj3","inputs":[0,1,1]}"#),
            &shared,
        );
        assert_eq!(reply.status, 429);
        // A cold server has no observed latency, so the derived
        // Retry-After falls back to its 1 s floor.
        assert!(reply
            .extra
            .iter()
            .any(|(name, value)| *name == "retry-after" && value == "1"));
        assert_eq!(shared.metrics.shed.load(Ordering::Relaxed), 1);
        // Errors/sheds are not cached: capacity remains unused.
        assert!(shared.cache.is_empty());
    }

    #[test]
    fn retry_after_grows_with_backlog_and_latency() {
        // No observation yet, or an empty queue: floor of 1 s.
        assert_eq!(retry_after_secs(4, None), 1);
        assert_eq!(retry_after_secs(0, Some(Duration::from_secs(10))), 1);
        // Drain-time estimate: backlog × mean latency, rounded up.
        assert_eq!(retry_after_secs(10, Some(Duration::from_millis(500))), 5);
        assert_eq!(retry_after_secs(3, Some(Duration::from_millis(400))), 2);
        // Pathological backlogs cap at a minute.
        assert_eq!(retry_after_secs(1000, Some(Duration::from_secs(2))), 60);
    }

    #[test]
    fn shed_evaluations_derive_retry_after_from_endpoint_latency() {
        let shared = test_shared(4);
        // Pretend past gate evaluations took 2 s each and every
        // admission slot is busy: 4 × 2 s = 8 s to drain.
        shared
            .metrics
            .gate_eval
            .observe(Duration::from_secs(2), false);
        shared.admitted.store(4, Ordering::SeqCst);
        let (reply, _) = route(
            &post("/v1/gate/eval", r#"{"gate":"maj3","inputs":[0,1,1]}"#),
            &shared,
        );
        assert_eq!(reply.status, 429);
        assert!(
            reply
                .extra
                .iter()
                .any(|(name, value)| *name == "retry-after" && value == "8"),
            "headers: {:?}",
            reply.extra
        );
    }

    #[test]
    fn shed_job_submissions_derive_retry_after_from_observed_wall_time() {
        let shared = test_shared(1);
        // Teach the store that a job takes ~3 s.
        shared.jobs.record_wall(Duration::from_secs(3));
        // One long sleep fills the single admission slot; the next
        // distinct job is shed with a drain estimate of 1 × 3 s.
        let (hold, _) = route(
            &post("/v1/jobs", r#"{"kind":"sleep","ms":400,"tag":"hold"}"#),
            &shared,
        );
        assert_eq!(hold.status, 202);
        let (shed, _) = route(
            &post("/v1/jobs", r#"{"kind":"sleep","ms":400,"tag":"next"}"#),
            &shared,
        );
        assert_eq!(shed.status, 429);
        assert!(
            shed.extra
                .iter()
                .any(|(name, value)| *name == "retry-after" && value == "3"),
            "headers: {:?}",
            shed.extra
        );
        let id = Json::parse(&hold.body)
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        shared.jobs.wait(&id);
    }

    #[test]
    fn job_lifecycle_over_routes() {
        let shared = test_shared(4);
        let (submit, _) = route(&post("/v1/jobs", r#"{"kind":"sleep","ms":5}"#), &shared);
        assert_eq!(submit.status, 202);
        let body = Json::parse(&submit.body).unwrap();
        let id = body.get("id").and_then(Json::as_str).unwrap().to_string();
        assert_eq!(body.get("resubmitted").and_then(Json::as_bool), Some(false));
        shared.jobs.wait(&id);
        let (status, _) = route(&get(&format!("/v1/jobs/{id}")), &shared);
        assert_eq!(status.status, 200);
        let status_body = Json::parse(&status.body).unwrap();
        assert_eq!(
            status_body.get("status").and_then(Json::as_str),
            Some("done")
        );
        // Resubmission returns the same id without new work.
        let (again, _) = route(&post("/v1/jobs", r#"{"kind":"sleep","ms":5}"#), &shared);
        let again_body = Json::parse(&again.body).unwrap();
        assert_eq!(
            again_body.get("id").and_then(Json::as_str),
            Some(id.as_str())
        );
        assert_eq!(
            again_body.get("resubmitted").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn draining_rejects_new_work() {
        let shared = test_shared(4);
        shared.shutdown.store(true, Ordering::SeqCst);
        let (eval_reply, _) = route(
            &post("/v1/gate/eval", r#"{"gate":"maj3","inputs":[0,1,1]}"#),
            &shared,
        );
        assert_eq!(eval_reply.status, 503);
        let (job_reply, _) = route(&post("/v1/jobs", r#"{"kind":"sleep","ms":1}"#), &shared);
        assert_eq!(job_reply.status, 503);
        // Health stays observable while draining.
        let (health, _) = route(&get("/healthz"), &shared);
        assert_eq!(health.status, 200);
        assert!(health.body.contains(r#""draining":true"#));
    }

    #[test]
    fn shutdown_endpoint_sets_the_flag() {
        let shared = test_shared(4);
        assert!(!shared.shutdown.load(Ordering::SeqCst));
        let (reply, _) = route(&post("/v1/admin/shutdown", ""), &shared);
        assert_eq!(reply.status, 200);
        assert!(shared.shutdown.load(Ordering::SeqCst));
    }
}
