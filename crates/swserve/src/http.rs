//! A minimal HTTP/1.1 layer over `std::net` — just enough for a JSON
//! service: request-line + header parsing, `Content-Length` framed
//! bodies, keep-alive, and response writing. No chunked encoding, no
//! TLS, no pipelining (each request is fully answered before the next
//! is read, which HTTP/1.1 permits).
//!
//! Inputs come off the network, so everything is bounded: request line
//! and headers are capped, bodies are capped (the caller gets a clean
//! 413), and malformed framing produces an error instead of a hang.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (1 MiB — JSON requests are tiny).
pub const MAX_BODY: usize = 1 << 20;
/// Largest accepted request line or header line.
pub const MAX_LINE: usize = 8 << 10;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as sent).
    pub method: String,
    /// The path, e.g. `/v1/gate/eval` (query strings are not split off —
    /// the API doesn't use them).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True if the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before (or between) requests.
    Closed,
    /// The socket read timed out (idle keep-alive tick; retry or close).
    TimedOut,
    /// The request is malformed; the message is safe to echo in a 400.
    Malformed(String),
    /// The body exceeds [`MAX_BODY`]; answer 413.
    BodyTooLarge,
    /// An underlying socket error.
    Io(std::io::Error),
}

fn read_line(reader: &mut BufReader<&TcpStream>) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Malformed("truncated request line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| ReadError::Malformed("non-UTF-8 in request head".into()));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(ReadError::Malformed("request line too long".into()));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if line.is_empty() {
                    return Err(ReadError::TimedOut);
                }
                // A partial line followed by a timeout: treat as io so
                // the caller drops the connection rather than spinning.
                return Err(ReadError::Io(e));
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// Reads one request off the stream. Blocks until a request arrives,
/// the stream's read timeout fires, or the peer disconnects.
///
/// # Errors
///
/// See [`ReadError`]; `Malformed` and `BodyTooLarge` deserve an HTTP
/// error response, the rest close the connection.
pub fn read_request(stream: &TcpStream) -> Result<Request, ReadError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if content_length > MAX_BODY {
        return Err(ReadError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ReadError::Malformed("truncated body".into())
            } else {
                ReadError::Io(e)
            }
        })?;
    }
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes a JSON response. `extra` headers are emitted verbatim (e.g.
/// `("X-Cache", "hit")`, `("Retry-After", "1")`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        reason(status),
        body.len() + 1
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    // Trailing newline so `curl` output ends cleanly; counted above.
    stream.write_all(b"\n")?;
    stream.flush()
}

/// A ready-made `{"error": ...}` body.
pub fn error_body(message: &str) -> String {
    swjson::Json::obj([("error", swjson::Json::str(message))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        (client.join().unwrap(), server)
    }

    #[test]
    fn parses_a_post_with_body() {
        let (mut client, server) = pair();
        client
            .write_all(b"POST /v1/gate/eval HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap();
        let request = read_request(&server).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/gate/eval");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.body, b"body");
        assert!(!request.wants_close());
    }

    #[test]
    fn rejects_malformed_framing() {
        let cases: &[&[u8]] = &[
            b"NONSENSE\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: hat\r\n\r\n",
        ];
        for case in cases {
            let (mut client, server) = pair();
            client.write_all(case).unwrap();
            drop(client);
            assert!(
                matches!(read_request(&server), Err(ReadError::Malformed(_))),
                "{} must be malformed",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn rejects_oversized_bodies_cleanly() {
        let (mut client, server) = pair();
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        client.write_all(head.as_bytes()).unwrap();
        assert!(matches!(
            read_request(&server),
            Err(ReadError::BodyTooLarge)
        ));
    }

    #[test]
    fn eof_before_any_request_is_closed() {
        let (client, server) = pair();
        drop(client);
        assert!(matches!(read_request(&server), Err(ReadError::Closed)));
    }

    #[test]
    fn truncated_body_is_malformed_not_a_hang() {
        let (mut client, server) = pair();
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
            .unwrap();
        drop(client);
        assert!(matches!(
            read_request(&server),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn written_responses_parse_back() {
        let (mut client, mut server_stream) = pair();
        let body = r#"{"ok":true}"#;
        write_json(&mut server_stream, 200, &[("X-Cache", "hit")], body, true).unwrap();
        drop(server_stream);
        let mut raw = String::new();
        client.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(raw.contains("x-cache: hit\r\n") || raw.contains("X-Cache: hit\r\n"));
        assert!(raw.ends_with("{\"ok\":true}\n"), "{raw}");
    }

    #[test]
    fn error_body_is_json() {
        let body = error_body("no such gate");
        assert_eq!(body, r#"{"error":"no such gate"}"#);
    }
}
