//! Content-addressed result cache with single-flight coalescing.
//!
//! A gate-evaluation request is normalized to a canonical JSON form
//! (defaults filled in, keys sorted — see [`crate::eval::normalize`]),
//! and the FNV-1a hash of that canonical string is the cache key: two
//! requests that *mean* the same thing share one entry, regardless of
//! field order or formatting in the original bodies.
//!
//! The cache is also the coalescing point. [`ResultCache::begin`]
//! classifies a request as a **hit** (answer cached), a **leader** (first
//! request for this key — it must compute), or a **follower** (an
//! identical request is already being computed — it waits on the
//! leader's flight instead of spawning a duplicate evaluation). N
//! identical concurrent requests therefore cost exactly one evaluation.
//!
//! Only successes are cached; a failed or shed flight wakes its
//! followers with the error and leaves no entry behind, so the next
//! request retries. Capacity is bounded with FIFO eviction — the cache
//! is a working set, not a database.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// 64-bit FNV-1a over a canonical request rendering — the content
/// address of a request.
pub fn content_key(canonical: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a flight did not produce a cached body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightError {
    /// The leader was shed by admission control before evaluating.
    Shed,
    /// The evaluation itself failed (bad request or backend error).
    Eval(String),
    /// The leader disappeared without reporting (a panic on its thread).
    Aborted,
}

type FlightResult = Result<Arc<String>, FlightError>;

/// One in-flight evaluation that followers can wait on.
#[derive(Debug)]
pub struct Flight {
    result: Mutex<Option<FlightResult>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Blocks until the leader resolves this flight.
    pub fn wait(&self) -> FlightResult {
        let mut result = self.result.lock().expect("flight poisoned");
        while result.is_none() {
            result = self.done.wait(result).expect("flight poisoned");
        }
        result.clone().expect("checked above")
    }

    fn finish(&self, outcome: FlightResult) {
        let mut result = self.result.lock().expect("flight poisoned");
        *result = Some(outcome);
        drop(result);
        self.done.notify_all();
    }
}

#[derive(Debug, Default)]
struct CacheState {
    ready: HashMap<u64, Arc<String>>,
    /// Insertion order of `ready` keys, for FIFO eviction.
    order: VecDeque<u64>,
    in_flight: HashMap<u64, Arc<Flight>>,
}

/// The bounded result cache.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

/// How [`ResultCache::begin`] classified a request.
pub enum Begin {
    /// The answer was cached.
    Hit(Arc<String>),
    /// An identical request is being computed; wait on its flight.
    Follower(Arc<Flight>),
    /// First request for this key — compute, then resolve the token.
    Leader(LeaderToken),
}

/// The leader's obligation: exactly one of [`LeaderToken::complete`] or
/// [`LeaderToken::abandon`] must resolve the flight. Dropping the token
/// unresolved (a panicking handler) wakes followers with
/// [`FlightError::Aborted`] so nobody hangs.
pub struct LeaderToken {
    key: u64,
    flight: Arc<Flight>,
    resolved: bool,
}

impl ResultCache {
    /// A cache holding at most `capacity` ready results (min 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Classifies the request for `key` (see [`Begin`]).
    pub fn begin(&self, key: u64) -> Begin {
        let mut state = self.state.lock().expect("cache poisoned");
        if let Some(body) = state.ready.get(&key) {
            return Begin::Hit(Arc::clone(body));
        }
        if let Some(flight) = state.in_flight.get(&key) {
            // `complete`/`abandon` remove the entry before resolving, so
            // a resolved flight still registered here means its leader's
            // token was dropped unresolved (the handler panicked). Don't
            // follow a dead flight — take over as the new leader.
            let stale = flight.result.lock().expect("flight poisoned").is_some();
            if !stale {
                return Begin::Follower(Arc::clone(flight));
            }
            state.in_flight.remove(&key);
        }
        let flight = Flight::new();
        state.in_flight.insert(key, Arc::clone(&flight));
        Begin::Leader(LeaderToken {
            key,
            flight,
            resolved: false,
        })
    }

    /// Stores a leader's successful result, wakes followers, and caches
    /// the body (evicting the oldest entry if full).
    pub fn complete(&self, mut token: LeaderToken, body: String) -> Arc<String> {
        let body = Arc::new(body);
        token.resolved = true;
        {
            let mut state = self.state.lock().expect("cache poisoned");
            let state = &mut *state;
            state.in_flight.remove(&token.key);
            if let std::collections::hash_map::Entry::Vacant(slot) = state.ready.entry(token.key) {
                slot.insert(Arc::clone(&body));
                state.order.push_back(token.key);
                while state.ready.len() > self.capacity {
                    if let Some(old) = state.order.pop_front() {
                        state.ready.remove(&old);
                    }
                }
            }
        }
        token.flight.finish(Ok(Arc::clone(&body)));
        body
    }

    /// Resolves a leader's flight with an error (shed or failed) and
    /// caches nothing — the next identical request starts fresh.
    pub fn abandon(&self, mut token: LeaderToken, error: FlightError) {
        token.resolved = true;
        self.state
            .lock()
            .expect("cache poisoned")
            .in_flight
            .remove(&token.key);
        token.flight.finish(Err(error));
    }

    /// Number of ready entries (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache poisoned").ready.len()
    }

    /// True when no results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for LeaderToken {
    fn drop(&mut self) {
        if !self.resolved {
            self.flight.finish(Err(FlightError::Aborted));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn content_key_is_stable_and_content_sensitive() {
        let a = content_key(r#"{"gate":"maj3","inputs":[0,1,1]}"#);
        let b = content_key(r#"{"gate":"maj3","inputs":[0,1,1]}"#);
        let c = content_key(r#"{"gate":"maj3","inputs":[1,1,1]}"#);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Pinned: the FNV-1a of the empty string.
        assert_eq!(content_key(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn leader_then_hit() {
        let cache = ResultCache::new(4);
        let Begin::Leader(token) = cache.begin(1) else {
            panic!("first request must lead");
        };
        let body = cache.complete(token, "answer".to_string());
        assert_eq!(*body, "answer");
        match cache.begin(1) {
            Begin::Hit(cached) => assert_eq!(*cached, "answer"),
            _ => panic!("second request must hit"),
        }
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let cache = Arc::new(ResultCache::new(4));
        let evaluations = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let evaluations = Arc::clone(&evaluations);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    match cache.begin(42) {
                        Begin::Hit(body) => (*body).clone(),
                        Begin::Follower(flight) => (*flight.wait().unwrap()).clone(),
                        Begin::Leader(token) => {
                            evaluations.fetch_add(1, Ordering::SeqCst);
                            // A slow evaluation, so followers really pile up.
                            thread::sleep(Duration::from_millis(50));
                            (*cache.complete(token, "computed".to_string())).clone()
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "computed");
        }
        assert_eq!(evaluations.load(Ordering::SeqCst), 1, "exactly one leader");
    }

    #[test]
    fn errors_are_not_cached_and_wake_followers() {
        let cache = Arc::new(ResultCache::new(4));
        let Begin::Leader(token) = cache.begin(7) else {
            panic!("must lead");
        };
        let follower = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || match cache.begin(7) {
                Begin::Follower(flight) => flight.wait(),
                Begin::Hit(_) => panic!("nothing is cached yet"),
                Begin::Leader(_) => panic!("leader already exists"),
            })
        };
        // Give the follower time to attach to the flight.
        thread::sleep(Duration::from_millis(20));
        cache.abandon(token, FlightError::Eval("bad gate".into()));
        assert_eq!(
            follower.join().unwrap(),
            Err(FlightError::Eval("bad gate".into()))
        );
        // The failure left no entry; the next request leads again.
        assert!(matches!(cache.begin(7), Begin::Leader(_)));
        assert!(cache.is_empty());
    }

    #[test]
    fn dropped_leader_token_aborts_followers_and_frees_the_key() {
        let cache = Arc::new(ResultCache::new(4));
        let Begin::Leader(token) = cache.begin(9) else {
            panic!("must lead");
        };
        let follower = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || match cache.begin(9) {
                Begin::Follower(flight) => flight.wait(),
                _ => panic!("a flight is active"),
            })
        };
        thread::sleep(Duration::from_millis(20));
        drop(token); // handler panicked without resolving
        assert_eq!(follower.join().unwrap(), Err(FlightError::Aborted));
        // The dead flight is reclaimed: the next request leads afresh.
        assert!(matches!(cache.begin(9), Begin::Leader(_)));
    }

    #[test]
    fn capacity_is_bounded_fifo() {
        let cache = ResultCache::new(2);
        for key in 0..3u64 {
            let Begin::Leader(token) = cache.begin(key) else {
                panic!("fresh keys lead");
            };
            cache.complete(token, format!("v{key}"));
        }
        assert_eq!(cache.len(), 2);
        // Key 0 was evicted first-in-first-out.
        assert!(matches!(cache.begin(0), Begin::Leader(_)));
        assert!(matches!(cache.begin(2), Begin::Hit(_)));
    }
}
