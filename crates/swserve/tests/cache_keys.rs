//! Golden content-address values. The FNV-1a key of the canonical
//! request rendering is the contract shared by the RAM cache, the disk
//! store's segment records, the job manifest replay, and the router's
//! hash ring — if any of these hashes drift, warmed disk stores stop
//! matching and shard affinity silently reshuffles. These pins turn
//! that drift into a test failure.

use swjson::Json;
use swserve::cache::content_key;

type Normalizer = fn(&Json) -> Result<Json, swserve::EvalError>;

/// The key exactly as the server derives it: parse, normalize through
/// the endpoint's canonicalizer, hash the canonical rendering.
fn key_of(raw: &str, normalize: Normalizer) -> u64 {
    let parsed = Json::parse(raw).expect("test request parses");
    let canonical = normalize(&parsed).expect("test request normalizes");
    content_key(&canonical.render())
}

#[test]
fn canonical_request_hashes_are_pinned() {
    let gate = swserve::eval::normalize as Normalizer;
    let netlist = swserve::netlist::normalize as Normalizer;
    let cases: [(&str, &str, Normalizer, u64); 8] = [
        (
            "gate-maj3",
            r#"{"gate":"maj3","inputs":[0,1,1]}"#,
            gate,
            0x1d60f2825a96008f,
        ),
        (
            "gate-xor-truth-table",
            r#"{"gate":"xor"}"#,
            gate,
            0xa5a3d47493bfb7a2,
        ),
        (
            "gate-nand-ideal-backend",
            r#"{"gate":"nand","inputs":[1,1],"backend":"ideal"}"#,
            gate,
            0xed535dbc54fdb8f2,
        ),
        (
            "circuit-full-adder",
            r#"{"kind":"circuit","circuit":"full_adder","inputs":[1,1,1]}"#,
            gate,
            0x649b943c2c95b9fb,
        ),
        (
            "circuit-rca2",
            r#"{"kind":"circuit","circuit":"ripple_carry_adder","width":2}"#,
            gate,
            0xba94e1f381876c16,
        ),
        (
            "netlist-demo-rca4",
            r#"{"demo":"rca4"}"#,
            netlist,
            0x14e8f0a8cea1610b,
        ),
        (
            "netlist-truth-table",
            r#"{"table":["01101001","00010111"]}"#,
            netlist,
            0x0351d29d33d80223,
        ),
        (
            "netlist-source",
            r#"{"source":"input a b\noutput y\ny = maj3 a a b\n"}"#,
            netlist,
            0x2f023ee64d38b038,
        ),
    ];

    let actual: Vec<String> = cases
        .iter()
        .map(|(name, raw, normalize, _)| format!("{name}: {:#018x}", key_of(raw, *normalize)))
        .collect();
    let expected: Vec<String> = cases
        .iter()
        .map(|(name, _, _, key)| format!("{name}: {key:#018x}"))
        .collect();
    assert_eq!(
        actual, expected,
        "canonical content hashes drifted — warmed disk stores and \
         shard affinity would break for existing deployments"
    );
}

#[test]
fn field_order_and_default_elision_do_not_change_the_key() {
    let gate = swserve::eval::normalize;
    // Same request, shuffled field order: normalization sorts keys.
    let a = key_of(r#"{"gate":"maj3","inputs":[0,1,1]}"#, gate);
    let b = key_of(r#"{"inputs":[0,1,1],"gate":"maj3"}"#, gate);
    assert_eq!(a, b, "field order must not change the content address");
    // Spelling out the default backend must land on the same address as
    // leaving it implicit.
    let implicit = key_of(r#"{"gate":"xor","inputs":[1,0]}"#, gate);
    let explicit = key_of(r#"{"gate":"xor","inputs":[1,0],"backend":"paper"}"#, gate);
    assert_eq!(
        implicit, explicit,
        "an explicit default backend must not change the content address"
    );
}
