//! Disk-store integration over real sockets: a restarted server must
//! answer every previously-seen request from disk with byte-identical
//! bodies, and the `/metrics` counters must stay monotone across a full
//! trip through the cache hierarchy (miss → disk write → RAM hit →
//! restart → disk hit).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use swjson::Json;
use swserve::server::{Server, ServerConfig, ServerHandle};

/// A minimal HTTP/1.1 response as the tests see it.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request on a fresh connection and reads the response.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = std::str::from_utf8(&raw).expect("UTF-8 response");
    let (head, rest) = text.split_once("\r\n\r\n").expect("header terminator");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: rest.strip_suffix('\n').unwrap_or(rest).to_string(),
    }
}

/// Boots a server on an ephemeral port.
fn boot(config: ServerConfig) -> (ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let handle = server.handle();
    let runner = thread::spawn(move || server.run().expect("server run"));
    (handle, runner)
}

/// A fresh scratch directory for one test's store.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swserve-store-test-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn store_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        store: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

#[test]
fn a_restarted_server_answers_previous_requests_from_disk_byte_identical() {
    let dir = scratch("restart");
    let requests: [(&str, &str); 4] = [
        ("/v1/gate/eval", r#"{"gate":"maj3","inputs":[0,1,1]}"#),
        ("/v1/gate/eval", r#"{"gate":"xor","inputs":[1,0]}"#),
        (
            "/v1/gate/eval",
            r#"{"kind":"circuit","circuit":"full_adder","inputs":[1,1,1]}"#,
        ),
        ("/v1/netlist/eval", r#"{"demo":"rca4"}"#),
    ];

    // First life: every request is a genuine miss that writes through.
    let (handle, runner) = boot(store_config(&dir));
    let mut firsts = Vec::new();
    for (path, raw) in requests {
        let response = call(handle.addr(), "POST", path, raw);
        assert_eq!(response.status, 200, "{raw}: {}", response.body);
        assert_eq!(response.header("x-cache"), Some("miss"), "{raw}");
        firsts.push(response.body);
    }
    handle.shutdown();
    runner.join().unwrap();

    // Second life on the same store directory: the RAM cache is empty,
    // so every repeat must be answered by the disk level.
    let (handle, runner) = boot(store_config(&dir));
    for ((path, raw), first) in requests.iter().zip(&firsts) {
        let response = call(handle.addr(), "POST", path, raw);
        assert_eq!(response.status, 200, "{raw}: {}", response.body);
        assert_eq!(
            response.header("x-cache"),
            Some("disk"),
            "{raw}: a restarted server must answer from the disk store"
        );
        assert_eq!(
            &response.body, first,
            "{raw}: disk hit must be byte-identical to the original"
        );
        // The disk hit promoted the body to RAM; a second repeat stays
        // off the disk entirely.
        let again = call(handle.addr(), "POST", path, raw);
        assert_eq!(again.header("x-cache"), Some("ram"), "{raw}");
        assert_eq!(&again.body, first, "{raw}");
    }
    let metrics = call(handle.addr(), "GET", "/metrics", "");
    let doc = Json::parse(&metrics.body).unwrap();
    let store_hits = doc
        .get("store")
        .and_then(|s| s.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(
        store_hits,
        requests.len() as f64,
        "one disk hit per restarted request"
    );
    handle.shutdown();
    runner.join().unwrap();
}

/// Every cumulative counter in `/metrics`; gauges (`store.entries`,
/// `store.disk_bytes`) are deliberately absent.
const CUMULATIVE: &[&[&str]] = &[
    &["uptime_s"],
    &["endpoints", "gate_eval", "requests"],
    &["endpoints", "metrics", "requests"],
    &["cache", "hits"],
    &["cache", "misses"],
    &["cache", "coalesced"],
    &["store", "hits"],
    &["store", "misses"],
    &["store", "puts"],
    &["store", "read_bytes"],
    &["store", "compactions"],
    &["store", "prewarm_records"],
    &["jobs", "accepted"],
    &["jobs", "done"],
    &["jobs", "failed"],
    &["shed"],
    &["connections"],
];

fn counter(doc: &Json, path: &[&str]) -> f64 {
    let mut node = doc;
    for key in path {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("/metrics lost the {} counter", path.join(".")));
    }
    node.as_f64()
        .unwrap_or_else(|| panic!("{} is not numeric", path.join(".")))
}

#[test]
fn metrics_counters_are_monotone_across_the_cache_hierarchy() {
    let dir = scratch("monotone");
    let (handle, runner) = boot(store_config(&dir));
    let addr = handle.addr();
    let raw = r#"{"gate":"nand","inputs":[1,1]}"#;

    let snapshot = |label: &str| -> Json {
        let response = call(addr, "GET", "/metrics", "");
        assert_eq!(response.status, 200, "{label}");
        Json::parse(&response.body).unwrap()
    };

    // Walk the hierarchy: miss (evaluate + disk write), RAM hit, then a
    // second distinct request, snapshotting /metrics after every step.
    let mut snapshots = vec![snapshot("boot")];
    assert_eq!(call(addr, "POST", "/v1/gate/eval", raw).status, 200);
    snapshots.push(snapshot("after miss"));
    assert_eq!(call(addr, "POST", "/v1/gate/eval", raw).status, 200);
    snapshots.push(snapshot("after RAM hit"));
    assert_eq!(
        call(addr, "POST", "/v1/gate/eval", r#"{"gate":"xor"}"#).status,
        200
    );
    snapshots.push(snapshot("after second miss"));

    for pair in snapshots.windows(2) {
        for path in CUMULATIVE {
            let before = counter(&pair[0], path);
            let after = counter(&pair[1], path);
            assert!(
                after >= before,
                "{} went backwards: {before} -> {after}",
                path.join(".")
            );
        }
    }
    let last = snapshots.last().unwrap();
    assert_eq!(counter(last, &["cache", "misses"]), 2.0);
    assert_eq!(counter(last, &["cache", "hits"]), 1.0);
    assert_eq!(counter(last, &["store", "puts"]), 2.0);
    assert!(last.get("version").and_then(Json::as_str).is_some());

    handle.shutdown();
    runner.join().unwrap();
}
