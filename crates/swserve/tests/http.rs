//! End-to-end tests over real sockets: an in-process server on an
//! ephemeral port, plain `TcpStream` clients, and assertions on the
//! exact serving behaviors the crate promises — byte-identity with the
//! CLI evaluation path, cache hits on repeats, single-flight coalescing
//! under concurrency, 429 shedding (not hangs) past the queue depth,
//! and graceful drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use swjson::Json;
use swserve::server::{Server, ServerConfig, ServerHandle};

/// A minimal HTTP/1.1 response as the tests see it.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request on a fresh connection and reads the response.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Response {
    let text = std::str::from_utf8(raw).expect("UTF-8 response");
    let (head, rest) = text.split_once("\r\n\r\n").expect("header terminator");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().expect("numeric content-length"))
        .expect("content-length present");
    assert_eq!(rest.len(), length, "body length matches content-length");
    // Responses end with a cosmetic newline counted in content-length.
    Response {
        status,
        headers,
        body: rest.strip_suffix('\n').unwrap_or(rest).to_string(),
    }
}

/// Boots a server on an ephemeral port; returns its handle and the
/// thread running the accept loop.
fn boot(config: ServerConfig) -> (ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let handle = server.handle();
    let runner = thread::spawn(move || server.run().expect("server run"));
    (handle, runner)
}

#[test]
fn responses_are_byte_identical_to_the_cli_evaluation() {
    let (handle, runner) = boot(ServerConfig::default());
    let requests = [
        r#"{"gate":"maj3","inputs":[0,1,1]}"#,
        r#"{"gate":"xor"}"#,
        r#"{"gate":"nand","inputs":[1,1],"backend":"ideal"}"#,
        r#"{"kind":"circuit","circuit":"full_adder","inputs":[1,1,1]}"#,
        r#"{"kind":"circuit","circuit":"ripple_carry_adder","width":2}"#,
    ];
    for raw in requests {
        let response = call(handle.addr(), "POST", "/v1/gate/eval", raw);
        assert_eq!(response.status, 200, "{raw}: {}", response.body);
        let cli = swserve::respond(&Json::parse(raw).unwrap()).unwrap();
        assert_eq!(response.body, cli, "{raw}: HTTP and CLI bytes must match");
    }
    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn netlist_endpoint_compiles_scores_and_caches() {
    let (handle, runner) = boot(ServerConfig::default());
    let addr = handle.addr();
    let requests = [
        r#"{"demo":"rca4"}"#,
        r#"{"demo":"mul2","inputs":[1,1,1,0]}"#,
        r#"{"table":["01101001","00010111"]}"#,
        r#"{"source":"input a b\noutput y\ny = maj3 a a b\n"}"#,
    ];
    for raw in requests {
        let response = call(addr, "POST", "/v1/netlist/eval", raw);
        assert_eq!(response.status, 200, "{raw}: {}", response.body);
        let cli = swserve::netlist::respond(&Json::parse(raw).unwrap()).unwrap();
        assert_eq!(response.body, cli, "{raw}: HTTP and CLI bytes must match");
        let doc = Json::parse(&response.body).unwrap();
        assert_eq!(
            doc.get("fanout")
                .and_then(|f| f.get("legal"))
                .and_then(Json::as_bool),
            Some(true),
            "{raw}: every compiled netlist must be fan-out legal"
        );
        let ratios = doc.get("cost").and_then(|c| c.get("ratios")).unwrap();
        for key in ["energy_n16", "energy_n7", "delay_n16", "delay_n7"] {
            let value = ratios.get(key).and_then(Json::as_f64).unwrap();
            assert!(value.is_finite() && value > 0.0, "{raw}: {key}={value}");
        }
    }
    // A repeat is a cache hit with identical bytes.
    let first = call(addr, "POST", "/v1/netlist/eval", r#"{"demo":"rca4"}"#);
    assert_eq!(first.header("x-cache"), Some("ram"));
    // The 2-bit multiplier evaluated at 3×2: outputs are 6 = 0110 LE.
    let mul = call(
        addr,
        "POST",
        "/v1/netlist/eval",
        r#"{"demo":"mul2","inputs":[1,1,0,1]}"#,
    );
    let outputs: Vec<f64> = Json::parse(&mul.body)
        .unwrap()
        .get("outputs")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_f64)
        .collect();
    assert_eq!(outputs, vec![0.0, 1.0, 1.0, 0.0]);
    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn repeats_hit_the_cache_and_concurrent_identicals_coalesce() {
    let (handle, runner) = boot(ServerConfig::default());
    let addr = handle.addr();
    let raw = r#"{"gate":"xor","inputs":[1,0]}"#;

    let first = call(addr, "POST", "/v1/gate/eval", raw);
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    let second = call(addr, "POST", "/v1/gate/eval", raw);
    assert_eq!(second.header("x-cache"), Some("ram"));
    assert_eq!(first.body, second.body);

    // 16 clients fire an identical *fresh* request at once; the metrics
    // must show exactly one underlying evaluation (one miss) with the
    // rest hits or coalesced followers.
    let misses_before = handle.metrics().cache_misses.load(Ordering::Relaxed);
    let fresh = r#"{"gate":"maj3","inputs":[1,0,1]}"#;
    let barrier = Arc::new(Barrier::new(16));
    let clients: Vec<_> = (0..16)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                call(addr, "POST", "/v1/gate/eval", fresh)
            })
        })
        .collect();
    let mut bodies = Vec::new();
    for client in clients {
        let response = client.join().unwrap();
        assert_eq!(
            response.status, 200,
            "no request may fail: {}",
            response.body
        );
        bodies.push(response.body);
    }
    bodies.dedup();
    assert_eq!(bodies.len(), 1, "all clients see identical bytes");
    let misses_after = handle.metrics().cache_misses.load(Ordering::Relaxed);
    assert_eq!(
        misses_after - misses_before,
        1,
        "16 identical concurrent requests cost exactly one evaluation"
    );

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn sixty_four_concurrent_connections_all_get_answers() {
    let (handle, runner) = boot(ServerConfig {
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let barrier = Arc::new(Barrier::new(64));
    let clients: Vec<_> = (0..64)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                // Distinct requests: each costs a real evaluation.
                let raw = format!(
                    r#"{{"gate":"maj3","inputs":[{},{},{}]}}"#,
                    i & 1,
                    (i >> 1) & 1,
                    (i >> 2) & 1
                );
                call(addr, "POST", "/v1/gate/eval", &raw)
            })
        })
        .collect();
    for client in clients {
        let response = client.join().unwrap();
        assert_eq!(
            response.status, 200,
            "zero dropped non-shed requests: {}",
            response.body
        );
    }
    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn overfilling_the_queue_sheds_with_429_instead_of_hanging() {
    // One worker, depth 2: two long sleep jobs fill the queue, the
    // third distinct job must shed immediately.
    let (handle, runner) = boot(ServerConfig {
        workers: 1,
        queue_depth: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let a = call(
        addr,
        "POST",
        "/v1/jobs",
        r#"{"kind":"sleep","ms":400,"tag":"a"}"#,
    );
    let b = call(
        addr,
        "POST",
        "/v1/jobs",
        r#"{"kind":"sleep","ms":400,"tag":"b"}"#,
    );
    assert_eq!(a.status, 202, "{}", a.body);
    assert_eq!(b.status, 202, "{}", b.body);
    let shed = call(
        addr,
        "POST",
        "/v1/jobs",
        r#"{"kind":"sleep","ms":400,"tag":"c"}"#,
    );
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert_eq!(shed.header("retry-after"), Some("1"));

    // The accepted jobs still finish and report via GET /v1/jobs/:id.
    let id = Json::parse(&a.body)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let status = call(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status.status, 200);
        let doc = Json::parse(&status.body).unwrap();
        if doc.get("status").and_then(Json::as_str) == Some("done") {
            assert_eq!(
                doc.get("result")
                    .and_then(|r| r.get("slept_ms"))
                    .and_then(Json::as_f64),
                Some(400.0)
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job did not finish in time: {}",
            status.body
        );
        thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn health_metrics_and_errors_speak_json() {
    let (handle, runner) = boot(ServerConfig::default());
    let addr = handle.addr();

    let health = call(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    let health_doc = Json::parse(&health.body).unwrap();
    assert_eq!(health_doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health_doc.get("draining").and_then(Json::as_bool),
        Some(false)
    );

    call(
        addr,
        "POST",
        "/v1/gate/eval",
        r#"{"gate":"maj3","inputs":[1,1,0]}"#,
    );
    let metrics = call(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    let doc = Json::parse(&metrics.body).unwrap();
    let gate_requests = doc
        .get("endpoints")
        .and_then(|e| e.get("gate_eval"))
        .and_then(|g| g.get("requests"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(gate_requests >= 1.0);

    let bad = call(addr, "POST", "/v1/gate/eval", "{broken");
    assert_eq!(bad.status, 400);
    assert!(Json::parse(&bad.body).unwrap().get("error").is_some());

    let missing = call(addr, "GET", "/v1/gates/nope", "");
    assert_eq!(missing.status, 404);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_and_stops_serving() {
    let (handle, runner) = boot(ServerConfig::default());
    let addr = handle.addr();
    // Accept a job, then ask for a drain over HTTP.
    let accepted = call(addr, "POST", "/v1/jobs", r#"{"kind":"sleep","ms":100}"#);
    assert_eq!(accepted.status, 202);
    let drain = call(addr, "POST", "/v1/admin/shutdown", "");
    assert_eq!(drain.status, 200);
    assert!(drain.body.contains("draining"));
    // run() returns only after open connections and the job finish.
    runner.join().unwrap();
    assert!(handle.draining());
    // The accepted job ran to completion before shutdown returned.
    assert_eq!(
        handle.metrics().jobs_done.load(Ordering::Relaxed),
        1,
        "drain must finish accepted jobs"
    );
    // New connections are refused (or reset) after drain.
    let late = TcpStream::connect(addr);
    match late {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buffer = Vec::new();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let n = stream.read_to_end(&mut buffer).unwrap_or(0);
            assert_eq!(n, 0, "a drained server must not answer new requests");
        }
    }
}
