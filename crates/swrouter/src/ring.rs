//! The consistent-hash ring that gives every content key a stable home
//! shard — and a stable fallback order when that shard is down.
//!
//! Each backend contributes `vnodes` points to a 64-bit ring (hashes of
//! `shard-{b}/vnode-{v}`); a key is served by the first point at or
//! after its (remixed) hash, walking clockwise. Virtual nodes smooth
//! the load split, and — because the ring itself never changes while
//! the process runs — a dead shard is handled by *skipping* it in the
//! candidate order rather than rebuilding the ring. That is the cache
//! affinity argument: every key's candidate order is a fixed
//! permutation of the shards, so a shard's death only moves the keys it
//! owned (to each key's next candidate), and its recovery moves exactly
//! those keys back to their warmed home.

/// FNV-1a, the same function the serving tier keys its caches with.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Finalizer from splitmix64 — decorrelates the content key (itself an
/// FNV-1a hash) from the ring point hashes so shard assignment is not a
/// structured function of request bytes.
fn remix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fixed consistent-hash ring over `backends` shards.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted ring points: (point hash, backend index).
    points: Vec<(u64, u32)>,
    backends: usize,
}

impl Ring {
    /// Builds the ring with `vnodes` points per backend (min 1).
    pub fn new(backends: usize, vnodes: usize) -> Ring {
        assert!(backends > 0, "ring needs at least one backend");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backends * vnodes);
        for backend in 0..backends {
            for vnode in 0..vnodes {
                let label = format!("shard-{backend}/vnode-{vnode}");
                // FNV of short similar strings clusters in the high
                // bits; the remix spreads the points uniformly.
                points.push((remix(fnv1a(label.as_bytes())), backend as u32));
            }
        }
        points.sort_unstable();
        Ring { points, backends }
    }

    /// Number of backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The full candidate order for `key`: every backend exactly once,
    /// starting at the key's home shard and continuing clockwise. The
    /// caller tries candidates in order, skipping unhealthy ones — the
    /// order itself never changes, which is what keeps cache affinity
    /// through shard death and recovery.
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        let target = remix(key);
        let start = self.points.partition_point(|&(hash, _)| hash < target);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for step in 0..self.points.len() {
            let (_, backend) = self.points[(start + step) % self.points.len()];
            if !seen[backend as usize] {
                seen[backend as usize] = true;
                order.push(backend as usize);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// The home shard for `key` (first candidate).
    pub fn primary(&self, key: u64) -> usize {
        self.candidates(key)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_candidate_list_is_a_permutation() {
        let ring = Ring::new(4, 16);
        for key in 0..200u64 {
            let mut order = ring.candidates(key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(order.len(), 4);
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn load_split_is_roughly_balanced() {
        let ring = Ring::new(3, 64);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.primary(fnv1a(&key.to_le_bytes()))] += 1;
        }
        for (backend, &count) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(&count),
                "backend {backend} owns {count}/3000 keys — ring is lopsided: {counts:?}"
            );
        }
    }

    #[test]
    fn shard_death_only_moves_the_dead_shards_keys() {
        let ring = Ring::new(4, 32);
        let dead = 2usize;
        let mut moved = 0;
        let total = 2000u64;
        for key in 0..total {
            let key = fnv1a(&key.to_le_bytes());
            let order = ring.candidates(key);
            let with_all = order[0];
            let without_dead = *order
                .iter()
                .find(|&&backend| backend != dead)
                .expect("3 shards remain");
            if with_all == dead {
                moved += 1;
                assert_ne!(without_dead, dead);
            } else {
                // Keys not owned by the dead shard keep their home.
                assert_eq!(with_all, without_dead);
            }
        }
        // ~1/4 of keys lived on the dead shard; only those moved.
        assert!(
            (total / 8..=total / 2).contains(&(moved as u64)),
            "moved {moved}/{total}"
        );
    }

    #[test]
    fn single_backend_ring_owns_everything() {
        let ring = Ring::new(1, 8);
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(ring.candidates(key), vec![0]);
        }
    }

    #[test]
    fn candidate_order_is_deterministic() {
        let a = Ring::new(5, 16);
        let b = Ring::new(5, 16);
        for key in 0..100u64 {
            assert_eq!(a.candidates(key), b.candidates(key));
        }
    }
}
