//! swrouter — a std-only consistent-hash front for a fleet of swserve
//! shards.
//!
//! The router owns no evaluation logic. It canonicalizes each request
//! exactly the way the shards do (same [`swserve`] normalize functions,
//! same FNV-1a content key), places the key on a fixed virtual-node
//! hash [`ring`], and relays the request to the key's home shard over a
//! bounded keep-alive connection [`proxy`] pool. Because shards cache
//! by the same key, this placement *is* the cache policy: every
//! distinct request warms exactly one shard's RAM + disk hierarchy, and
//! repeats land on the warmed shard — cache affinity falls out of the
//! hash, no coordination protocol needed.
//!
//! Failure handling is equally boring on purpose. A shard that fails a
//! fresh dial is marked unhealthy and the request is retried on the
//! ring's next candidate (the client sees one answer, never an error
//! caused by a single shard death); a health thread keeps probing
//! ejected shards and re-admits them when `/healthz` answers again,
//! which routes their keys straight back to their warmed caches. Job
//! ids embed the submitting request's content key (`job-{seq}-{key}`),
//! so status polls follow the submit to the same shard without any
//! routing table.

pub mod proxy;
pub mod ring;

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use swjson::Json;
use swserve::http::{error_body, read_request, write_json, ReadError, Request};
use swserve::{content_key, eval, jobs, netlist};

use proxy::{serialize_request, Backend, BackendResponse};
use ring::Ring;

/// How a [`Router`] is configured; see `repro route --help` for the
/// CLI surface.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` for an ephemeral port).
    pub addr: String,
    /// Shard addresses, e.g. `["127.0.0.1:7071", "127.0.0.1:7072"]`.
    pub backends: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Idle keep-alive connections pooled per shard.
    pub pool_per_backend: usize,
    /// Read/write timeout for shard I/O.
    pub io_timeout: Duration,
    /// Health-probe cadence for ejected shards.
    pub health_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            vnodes: 64,
            pool_per_backend: 8,
            io_timeout: Duration::from_secs(30),
            health_interval: Duration::from_millis(250),
        }
    }
}

/// Router-level counters (shard-level ones live on each [`Backend`]).
#[derive(Debug)]
pub struct RouterMetrics {
    /// Requests read from clients.
    pub requests: AtomicU64,
    /// Requests answered by a shard.
    pub relayed: AtomicU64,
    /// Requests answered by the router itself (health, metrics, errors).
    pub local: AtomicU64,
    /// Requests that had to move past their home shard.
    pub failovers: AtomicU64,
    /// 503s because every candidate shard failed.
    pub no_backend: AtomicU64,
    /// Healthy→unhealthy transitions.
    pub ejections: AtomicU64,
    /// Unhealthy→healthy transitions (probe recovered the shard).
    pub readmissions: AtomicU64,
    started: Instant,
}

impl Default for RouterMetrics {
    fn default() -> RouterMetrics {
        RouterMetrics {
            requests: AtomicU64::new(0),
            relayed: AtomicU64::new(0),
            local: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            no_backend: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

struct Shared {
    ring: Ring,
    backends: Vec<Backend>,
    metrics: RouterMetrics,
    shutdown: AtomicBool,
}

impl Shared {
    fn render_metrics(&self) -> Json {
        let backends = self
            .backends
            .iter()
            .map(|backend| {
                Json::obj([
                    ("addr", Json::str(backend.addr().to_string())),
                    ("healthy", Json::Bool(backend.is_healthy())),
                    (
                        "forwarded",
                        Json::Num(backend.forwarded.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "stale_retries",
                        Json::Num(backend.stale_retries.load(Ordering::Relaxed) as f64),
                    ),
                    ("pooled_connections", Json::Num(backend.pooled() as f64)),
                ])
            })
            .collect::<Vec<_>>();
        let m = &self.metrics;
        Json::obj([
            ("role", Json::str("router")),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            (
                "uptime_s",
                Json::Num(m.started.elapsed().as_secs_f64().floor()),
            ),
            (
                "requests",
                Json::Num(m.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "relayed",
                Json::Num(m.relayed.load(Ordering::Relaxed) as f64),
            ),
            ("local", Json::Num(m.local.load(Ordering::Relaxed) as f64)),
            (
                "failovers",
                Json::Num(m.failovers.load(Ordering::Relaxed) as f64),
            ),
            (
                "no_backend",
                Json::Num(m.no_backend.load(Ordering::Relaxed) as f64),
            ),
            (
                "ejections",
                Json::Num(m.ejections.load(Ordering::Relaxed) as f64),
            ),
            (
                "readmissions",
                Json::Num(m.readmissions.load(Ordering::Relaxed) as f64),
            ),
            ("backends", Json::Arr(backends)),
        ])
    }
}

/// A cheap handle onto a running router (tests and the CLI use it).
#[derive(Clone)]
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Router-level counters.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.shared.metrics
    }

    /// True while the given shard index is considered healthy.
    pub fn backend_healthy(&self, index: usize) -> bool {
        self.shared.backends[index].is_healthy()
    }

    /// Begins a drain, as `POST /v1/admin/shutdown` would.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The shard-routing HTTP front.
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
    addr: SocketAddr,
    health_interval: Duration,
}

impl Router {
    /// Binds the router and resolves every shard address. Shards are
    /// presumed healthy until a request or probe says otherwise — the
    /// router boots even if shards are still coming up.
    ///
    /// # Errors
    ///
    /// Bind failures, unresolvable shard addresses, or an empty shard
    /// list.
    pub fn bind(config: &RouterConfig) -> std::io::Result<Router> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one backend (--backend host:port)",
            ));
        }
        let mut backends = Vec::with_capacity(config.backends.len());
        for spec in &config.backends {
            let addr = spec
                .to_socket_addrs()
                .map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("backend `{spec}`: {e}"),
                    )
                })?
                .next()
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("backend `{spec}` resolved to nothing"),
                    )
                })?;
            backends.push(Backend::new(
                addr,
                config.pool_per_backend,
                config.io_timeout,
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            ring: Ring::new(backends.len(), config.vnodes),
            backends,
            metrics: RouterMetrics::default(),
            shutdown: AtomicBool::new(false),
        });
        Ok(Router {
            listener,
            shared,
            addr,
            health_interval: config.health_interval,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for observing and draining the router.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a drain is triggered, then lets open connections
    /// finish. Mirrors [`swserve::Server::run`]'s accept loop, plus a
    /// health thread that re-admits ejected shards.
    ///
    /// # Errors
    ///
    /// Listener-level failures only; per-connection and per-shard
    /// errors are contained (that is the router's whole job).
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let health = {
            let shared = Arc::clone(&self.shared);
            let interval = self.health_interval;
            thread::spawn(move || health_loop(&shared, interval))
        };
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        const ACCEPT_BACKOFF_MIN: Duration = Duration::from_micros(100);
        const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(5);
        let mut backoff = ACCEPT_BACKOFF_MIN;
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    connections.push(thread::spawn(move || handle_connection(stream, &shared)));
                    backoff = ACCEPT_BACKOFF_MIN;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            connections.retain(|c| !c.is_finished());
        }
        for connection in connections {
            let _ = connection.join();
        }
        let _ = health.join();
        Ok(())
    }
}

/// Probes shards in the background. Ejected shards are probed every
/// tick so recovery is fast (their keys snap back to warmed caches);
/// healthy shards are probed every eighth tick, which catches silent
/// deaths without the router adding constant probe load.
fn health_loop(shared: &Shared, interval: Duration) {
    let mut tick = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        for backend in &shared.backends {
            let was_healthy = backend.is_healthy();
            if !was_healthy || tick.is_multiple_of(8) {
                let alive = backend.probe();
                if alive != was_healthy {
                    backend.set_healthy(alive);
                    let counter = if alive {
                        &shared.metrics.readmissions
                    } else {
                        &shared.metrics.ejections
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        tick += 1;
        thread::sleep(interval);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    loop {
        let request = match read_request(&stream) {
            Ok(request) => request,
            Err(ReadError::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Malformed(message)) => {
                let _ = write_json(&mut stream, 400, &[], &error_body(&message), false);
                return;
            }
            Err(ReadError::BodyTooLarge) => {
                let _ = write_json(&mut stream, 413, &[], &error_body("body too large"), false);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let close = request.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        let ok = match dispatch(&request, shared) {
            Dispatched::Local { status, body } => {
                shared.metrics.local.fetch_add(1, Ordering::Relaxed);
                write_json(&mut stream, status, &[], &body, !close).is_ok()
            }
            Dispatched::Relayed { shard, response } => {
                shared.metrics.relayed.fetch_add(1, Ordering::Relaxed);
                relay(&mut stream, shard, &response, !close).is_ok()
            }
        };
        if !ok || close {
            return;
        }
    }
}

/// What became of one request.
enum Dispatched {
    /// The router answered it directly.
    Local { status: u16, body: String },
    /// Shard `shard` answered; relay its bytes.
    Relayed {
        shard: usize,
        response: BackendResponse,
    },
}

impl Dispatched {
    fn error(status: u16, message: &str) -> Dispatched {
        Dispatched::Local {
            status,
            body: error_body(message),
        }
    }
}

/// Routes one request: answer locally (router endpoints, canonicalize
/// errors) or derive the content key and relay to its shard.
fn dispatch(request: &Request, shared: &Shared) -> Dispatched {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let healthy = shared
                .backends
                .iter()
                .filter(|backend| backend.is_healthy())
                .count();
            Dispatched::Local {
                status: 200,
                body: Json::obj([
                    ("status", Json::str("ok")),
                    ("role", Json::str("router")),
                    (
                        "draining",
                        Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
                    ),
                    ("backends", Json::Num(shared.backends.len() as f64)),
                    ("healthy", Json::Num(healthy as f64)),
                ])
                .render(),
            }
        }
        ("GET", "/metrics") => Dispatched::Local {
            status: 200,
            body: shared.render_metrics().render(),
        },
        ("POST", "/v1/admin/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Dispatched::Local {
                status: 200,
                body: r#"{"draining":true}"#.to_string(),
            }
        }
        ("POST", "/v1/gate/eval") => keyed_relay(request, shared, eval::normalize),
        ("POST", "/v1/netlist/eval") => keyed_relay(request, shared, netlist::normalize),
        ("POST", "/v1/jobs") => keyed_relay(request, shared, jobs::normalize_job),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let id = &path["/v1/jobs/".len()..];
            forward(request, shared, job_key(id))
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/gate/eval" | "/v1/netlist/eval" | "/v1/jobs"
            | "/v1/admin/shutdown",
        ) => Dispatched::error(405, "method not allowed"),
        _ => Dispatched::error(404, "no such endpoint"),
    }
}

/// Canonicalizes the body with the same function the shard would use,
/// keys it, and relays. Canonicalization failures are answered at the
/// router with the exact error body the shard would have produced —
/// invalid requests never cost a network hop.
fn keyed_relay(
    request: &Request,
    shared: &Shared,
    normalize: fn(&Json) -> Result<Json, eval::EvalError>,
) -> Dispatched {
    let parsed = match Json::parse_bytes(&request.body) {
        Ok(parsed) => parsed,
        Err(e) => return Dispatched::error(400, &format!("bad JSON: {e}")),
    };
    let normalized = match normalize(&parsed) {
        Ok(normalized) => normalized,
        Err(e) => return Dispatched::error(400, &e.message),
    };
    forward(request, shared, content_key(&normalized.render()))
}

/// The routing key for a job-status poll. Job ids embed the submit's
/// content key as their trailing 16 hex digits (`job-{seq}-{key:016x}`),
/// so polls route to the shard that accepted the job. Unparseable ids
/// still route *deterministically* (hash of the id) — the shard answers
/// the 404.
fn job_key(id: &str) -> u64 {
    id.rsplit('-')
        .next()
        .filter(|hex| hex.len() == 16)
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .unwrap_or_else(|| content_key(id))
}

/// Relays the request to the key's shard, failing over along the ring's
/// candidate order. Healthy shards are tried first (in ring order);
/// unhealthy ones are last-resort candidates — if a probe hasn't
/// re-admitted a shard yet but it is actually back, a request can still
/// land there rather than 503.
fn forward(request: &Request, shared: &Shared, key: u64) -> Dispatched {
    let raw = serialize_request(&request.method, &request.path, &request.body);
    let candidates = shared.ring.candidates(key);
    let ordered = candidates
        .iter()
        .filter(|&&shard| shared.backends[shard].is_healthy())
        .chain(
            candidates
                .iter()
                .filter(|&&shard| !shared.backends[shard].is_healthy()),
        )
        .copied()
        .collect::<Vec<_>>();
    for (attempt, shard) in ordered.iter().copied().enumerate() {
        match shared.backends[shard].request(&raw) {
            Ok(response) => {
                if attempt > 0 {
                    shared.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                }
                return Dispatched::Relayed { shard, response };
            }
            Err(_) => {
                // A fresh dial failed too: the shard is down. Eject it;
                // the health loop re-admits it when it answers again.
                if shared.backends[shard].set_healthy(false) {
                    shared.metrics.ejections.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    shared.metrics.no_backend.fetch_add(1, Ordering::Relaxed);
    Dispatched::error(503, "no healthy backend")
}

/// Writes a shard's response onward, body bytes untouched (callers rely
/// on byte-identity with direct shard responses). The shard's cache and
/// retry headers are preserved; `x-shard` says who answered.
fn relay(
    stream: &mut TcpStream,
    shard: usize,
    response: &BackendResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nx-shard: {shard}\r\n",
        response.status,
        match response.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Response",
        },
        response.body.len(),
    );
    for name in ["x-cache", "retry-after"] {
        if let Some(value) = response.header(name) {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_keys_route_polls_to_the_submitting_shard() {
        assert_eq!(job_key("job-3-00ff00ff00ff00ff"), 0x00ff_00ff_00ff_00ff);
        assert_eq!(job_key("job-12-cbf29ce484222325"), 0xcbf2_9ce4_8422_2325);
        // Unparseable ids still route deterministically.
        assert_eq!(job_key("garbage"), content_key("garbage"));
        assert_eq!(job_key("job-1-short"), content_key("job-1-short"));
    }

    #[test]
    fn error_dispatch_matches_shard_error_bodies() {
        // The router's local 400s must be byte-identical to what a
        // shard would answer, so clients cannot tell who rejected them.
        let shared = Shared {
            ring: Ring::new(1, 8),
            backends: vec![Backend::new(
                "127.0.0.1:1".parse().unwrap(),
                1,
                Duration::from_millis(100),
            )],
            metrics: RouterMetrics::default(),
            shutdown: AtomicBool::new(false),
        };
        let request = Request {
            method: "POST".to_string(),
            path: "/v1/gate/eval".to_string(),
            headers: Vec::new(),
            body: br#"{"gate":"warp"}"#.to_vec(),
        };
        let Dispatched::Local { status, body } = dispatch(&request, &shared) else {
            panic!("invalid gate must be answered locally");
        };
        assert_eq!(status, 400);
        let parsed = Json::parse(&body).unwrap();
        let message = parsed.get("error").and_then(Json::as_str).unwrap();
        let direct = eval::normalize(&Json::parse(r#"{"gate":"warp"}"#).unwrap()).unwrap_err();
        assert_eq!(message, direct.message);
    }
}
