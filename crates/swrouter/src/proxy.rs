//! The backend side of the router: bounded keep-alive connection pools
//! and a minimal HTTP/1.1 client just big enough to relay swserve's
//! JSON responses byte for byte.
//!
//! Each backend gets one [`Pool`]: a small stack of idle `TcpStream`s
//! that previous requests left open. A forward checks out an idle
//! connection when one exists (the common case under keep-alive load),
//! otherwise dials fresh; connections whose response said
//! `connection: keep-alive` go back into the pool, up to the bound —
//! extras are simply closed. A pooled connection that fails mid-request
//! is indistinguishable from a dead shard *from one sample*, so the
//! caller retries once on a fresh dial before declaring the backend
//! down (see [`Backend::request`]).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Largest relayed response body (matches swserve's request bound with
/// headroom for large netlist responses).
const MAX_RESPONSE_BODY: usize = 8 << 20;

/// A response read back from a shard, body bytes untouched.
#[derive(Debug)]
pub struct BackendResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The exact body bytes (including swserve's trailing newline).
    pub body: Vec<u8>,
    keep_alive: bool,
}

impl BackendResponse {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a backend request failed (all of them are retryable on another
/// shard; none leave a half-written client response).
#[derive(Debug)]
pub enum ProxyError {
    /// Dial, write, or read failure.
    Io(std::io::Error),
    /// The shard answered bytes that do not parse as HTTP/1.1.
    BadResponse(String),
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::Io(e) => write!(f, "io: {e}"),
            ProxyError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

/// One shard as the router sees it: address, health flag, connection
/// pool, and per-backend counters.
#[derive(Debug)]
pub struct Backend {
    addr: SocketAddr,
    healthy: AtomicBool,
    idle: Mutex<VecDeque<TcpStream>>,
    pool_cap: usize,
    /// Requests this shard answered.
    pub forwarded: AtomicU64,
    /// Pooled connections that died and were replaced by a fresh dial.
    pub stale_retries: AtomicU64,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl Backend {
    /// A backend with an empty pool, initially presumed healthy.
    pub fn new(addr: SocketAddr, pool_cap: usize, io_timeout: Duration) -> Backend {
        Backend {
            addr,
            healthy: AtomicBool::new(true),
            idle: Mutex::new(VecDeque::new()),
            pool_cap: pool_cap.max(1),
            forwarded: AtomicU64::new(0),
            stale_retries: AtomicU64::new(0),
            connect_timeout: Duration::from_millis(500),
            io_timeout,
        }
    }

    /// The shard's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current health verdict.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Flip the health flag; returns the previous value so callers can
    /// count transitions.
    pub fn set_healthy(&self, healthy: bool) -> bool {
        self.healthy.swap(healthy, Ordering::SeqCst)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.idle.lock().expect("pool poisoned").pop_front()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("pool poisoned");
        if idle.len() < self.pool_cap {
            idle.push_back(stream);
        } // else: drop — the bound is the point.
    }

    /// Idle connections currently pooled (for metrics).
    pub fn pooled(&self) -> usize {
        self.idle.lock().expect("pool poisoned").len()
    }

    fn dial(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        Ok(stream)
    }

    /// Sends `raw` (a fully serialized request) and reads one response.
    /// Tries a pooled keep-alive connection first; if that fails — a
    /// stale keep-alive is expected after idle periods — retries once on
    /// a fresh dial. Only a fresh-dial failure is evidence the shard is
    /// actually down, and that verdict is the caller's to act on.
    ///
    /// # Errors
    ///
    /// [`ProxyError`] once both the pooled and fresh attempts failed.
    pub fn request(&self, raw: &[u8]) -> Result<BackendResponse, ProxyError> {
        if let Some(stream) = self.checkout() {
            match round_trip(stream, raw, self) {
                Ok(response) => return Ok(response),
                Err(_) => {
                    // Stale pooled connection; fall through to a fresh dial.
                    self.stale_retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let stream = self.dial().map_err(ProxyError::Io)?;
        round_trip(stream, raw, self)
    }

    /// A quick liveness probe: `GET /healthz` answering 200.
    pub fn probe(&self) -> bool {
        let raw = b"GET /healthz HTTP/1.1\r\nhost: router\r\nconnection: keep-alive\r\n\r\n";
        match self.dial() {
            Ok(stream) => matches!(round_trip(stream, raw, self), Ok(r) if r.status == 200),
            Err(_) => false,
        }
    }
}

/// One request/response exchange on `stream`; on a keep-alive response
/// the stream goes back into the backend's pool.
fn round_trip(
    mut stream: TcpStream,
    raw: &[u8],
    backend: &Backend,
) -> Result<BackendResponse, ProxyError> {
    stream.write_all(raw).map_err(ProxyError::Io)?;
    stream.flush().map_err(ProxyError::Io)?;
    let response = read_response(&stream)?;
    backend.forwarded.fetch_add(1, Ordering::Relaxed);
    if response.keep_alive {
        backend.checkin(stream);
    }
    Ok(response)
}

fn read_response(stream: &TcpStream) -> Result<BackendResponse, ProxyError> {
    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let mut parts = status_line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| ProxyError::BadResponse(format!("bad status in `{status_line}`")))?,
        _ => {
            return Err(ProxyError::BadResponse(format!(
                "bad status line `{status_line}`"
            )))
        }
    };
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ProxyError::BadResponse(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map(|(_, value)| value.parse::<usize>())
        .transpose()
        .map_err(|_| ProxyError::BadResponse("bad content-length".into()))?
        .unwrap_or(0);
    if content_length > MAX_RESPONSE_BODY {
        return Err(ProxyError::BadResponse(format!(
            "response body of {content_length} bytes exceeds relay bound"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ProxyError::Io)?;
    let keep_alive = headers
        .iter()
        .find(|(name, _)| name == "connection")
        .is_some_and(|(_, value)| value.eq_ignore_ascii_case("keep-alive"));
    Ok(BackendResponse {
        status,
        headers,
        body,
        keep_alive,
    })
}

fn read_line(reader: &mut BufReader<&TcpStream>) -> Result<String, ProxyError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err(ProxyError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "shard closed mid-response",
        ))),
        Ok(_) => {
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(line)
        }
        Err(e) => Err(ProxyError::Io(e)),
    }
}

/// Serializes a request for relaying: same method/path/body, explicit
/// content-length, keep-alive.
pub fn serialize_request(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: shard\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
        body.len()
    );
    let mut raw = Vec::with_capacity(head.len() + body.len());
    raw.extend_from_slice(head.as_bytes());
    raw.extend_from_slice(body);
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// A tiny one-shot HTTP responder for exercising the client side.
    fn fake_shard(responses: Vec<String>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for response in responses {
                // Swallow one request's head + body (requests are tiny).
                let mut buffer = [0u8; 4096];
                let _ = stream.read(&mut buffer);
                stream.write_all(response.as_bytes()).unwrap();
            }
        });
        addr
    }

    fn response(status: u16, body: &str, keep_alive: bool) -> String {
        format!(
            "HTTP/1.1 {status} X\r\ncontent-type: application/json\r\ncontent-length: {}\r\nx-cache: ram\r\nconnection: {}\r\n\r\n{body}",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
    }

    #[test]
    fn keep_alive_responses_return_the_connection_to_the_pool() {
        let body = "{\"ok\":true}\n";
        let addr = fake_shard(vec![response(200, body, true), response(200, body, true)]);
        let backend = Backend::new(addr, 4, Duration::from_secs(2));
        let raw = serialize_request("POST", "/v1/gate/eval", b"{}");
        let first = backend.request(&raw).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body, body.as_bytes());
        assert_eq!(first.header("x-cache"), Some("ram"));
        assert_eq!(backend.pooled(), 1, "keep-alive connection pooled");
        backend.request(&raw).unwrap();
        assert_eq!(
            backend.forwarded.load(Ordering::Relaxed),
            2,
            "second request reused the pooled connection"
        );
    }

    #[test]
    fn close_responses_do_not_pool() {
        let addr = fake_shard(vec![response(200, "{}\n", false)]);
        let backend = Backend::new(addr, 4, Duration::from_secs(2));
        backend
            .request(&serialize_request("GET", "/healthz", b""))
            .unwrap();
        assert_eq!(backend.pooled(), 0);
    }

    #[test]
    fn stale_pooled_connection_retries_on_a_fresh_dial() {
        // First exchange pools the connection, then the shard thread
        // exits, closing it. A second listener on the same port is not
        // possible, so use two serial exchanges on one listener instead:
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            // Exchange 1: answer keep-alive, then DROP the connection.
            {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buffer = [0u8; 4096];
                let _ = stream.read(&mut buffer);
                stream
                    .write_all(response(200, "{}\n", true).as_bytes())
                    .unwrap();
            } // dropped: pooled connection is now stale
              // Exchange 2: accept the retry dial.
            let (mut stream, _) = listener.accept().unwrap();
            let mut buffer = [0u8; 4096];
            let _ = stream.read(&mut buffer);
            stream
                .write_all(response(200, "{\"retried\":true}\n", true).as_bytes())
                .unwrap();
        });
        let backend = Backend::new(addr, 4, Duration::from_secs(2));
        let raw = serialize_request("POST", "/v1/gate/eval", b"{}");
        backend.request(&raw).unwrap();
        assert_eq!(backend.pooled(), 1);
        let second = backend.request(&raw).unwrap();
        assert_eq!(second.body, b"{\"retried\":true}\n");
        assert_eq!(backend.stale_retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn dead_shard_is_an_error_not_a_hang() {
        // Bind then drop a listener: the port is (very likely) closed.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let backend = Backend::new(addr, 2, Duration::from_millis(300));
        let result = backend.request(&serialize_request("GET", "/healthz", b""));
        assert!(result.is_err());
        assert!(!backend.probe());
    }

    #[test]
    fn garbage_response_is_bad_response() {
        let addr = fake_shard(vec!["TOTALLY NOT HTTP\r\n\r\n".to_string()]);
        let backend = Backend::new(addr, 2, Duration::from_secs(2));
        let result = backend.request(&serialize_request("GET", "/healthz", b""));
        assert!(
            matches!(result, Err(ProxyError::BadResponse(_))),
            "{result:?}"
        );
    }
}
