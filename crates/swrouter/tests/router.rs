//! Router integration over real sockets: two in-process swserve shards
//! behind a router, asserting cache affinity (the same request always
//! lands on the same shard), byte-identity with direct shard answers,
//! failover with zero failed requests when a shard dies, and job
//! submit/poll routing by the key embedded in the job id.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use swjson::Json;
use swrouter::{Router, RouterConfig, RouterHandle};
use swserve::server::{Server, ServerConfig, ServerHandle};

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request on a fresh connection and reads the response.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = std::str::from_utf8(&raw).expect("UTF-8 response");
    let (head, rest) = text.split_once("\r\n\r\n").expect("header terminator");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: rest.strip_suffix('\n').unwrap_or(rest).to_string(),
    }
}

/// Boots one swserve shard on an ephemeral port.
fn boot_shard() -> (ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig::default()).expect("bind shard");
    let handle = server.handle();
    let runner = thread::spawn(move || server.run().expect("shard run"));
    (handle, runner)
}

/// Boots a router over the given shard addresses with a fast health
/// probe (tests exercise ejection and re-admission in milliseconds).
fn boot_router(shards: &[SocketAddr]) -> (RouterHandle, thread::JoinHandle<()>) {
    let config = RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: shards.iter().map(|a| a.to_string()).collect(),
        health_interval: Duration::from_millis(25),
        ..RouterConfig::default()
    };
    let router = Router::bind(&config).expect("bind router");
    let handle = router.handle();
    let runner = thread::spawn(move || router.run().expect("router run"));
    (handle, runner)
}

fn drain(addr: SocketAddr) {
    let response = call(addr, "POST", "/v1/admin/shutdown", "");
    assert_eq!(response.status, 200);
}

#[test]
fn the_router_pins_each_key_to_one_shard_and_matches_direct_bytes() {
    let (shard_a, runner_a) = boot_shard();
    let (shard_b, runner_b) = boot_shard();
    let (router, router_runner) = boot_router(&[shard_a.addr(), shard_b.addr()]);

    // Distinct requests spread over the ring; each key must stick to
    // one shard across repeats (cache affinity), and the second hit of
    // a key must come from that shard's RAM cache.
    let mut homes = std::collections::HashSet::new();
    for i in 0..16 {
        let raw = if i < 8 {
            format!(
                r#"{{"gate":"maj3","inputs":[{},{},{}]}}"#,
                i & 1,
                (i >> 1) & 1,
                (i >> 2) & 1
            )
        } else {
            let gate = if i < 12 { "xor" } else { "nand" };
            format!(
                r#"{{"gate":"{gate}","inputs":[{},{}]}}"#,
                i & 1,
                (i >> 1) & 1
            )
        };
        let first = call(router.addr(), "POST", "/v1/gate/eval", &raw);
        assert_eq!(first.status, 200, "{raw}: {}", first.body);
        let home = first.header("x-shard").expect("x-shard header").to_string();
        let again = call(router.addr(), "POST", "/v1/gate/eval", &raw);
        assert_eq!(
            again.header("x-shard"),
            Some(home.as_str()),
            "{raw}: repeats must land on the same shard"
        );
        assert_eq!(
            again.header("x-cache"),
            Some("ram"),
            "{raw}: the home shard's cache must answer the repeat"
        );
        assert_eq!(first.body, again.body);
        // Byte-identity with a direct (router-less) evaluation.
        let direct = call(shard_a.addr(), "POST", "/v1/gate/eval", &raw);
        assert_eq!(
            first.body, direct.body,
            "{raw}: routed bytes must match a direct shard answer"
        );
        homes.insert(home);
    }
    assert_eq!(
        homes.len(),
        2,
        "16 distinct keys must use both shards (lopsided ring)"
    );

    drain(router.addr());
    router_runner.join().unwrap();
    shard_a.shutdown();
    shard_b.shutdown();
    runner_a.join().unwrap();
    runner_b.join().unwrap();
}

#[test]
fn a_dead_shard_fails_over_with_zero_failed_requests() {
    let (shard_a, runner_a) = boot_shard();
    let (shard_b, runner_b) = boot_shard();
    let shard_addrs = [shard_a.addr(), shard_b.addr()];
    let (router, router_runner) = boot_router(&shard_addrs);

    let raw = r#"{"gate":"xor","inputs":[1,0]}"#;
    let first = call(router.addr(), "POST", "/v1/gate/eval", raw);
    assert_eq!(first.status, 200);
    let home: usize = first
        .header("x-shard")
        .expect("x-shard header")
        .parse()
        .expect("numeric shard index");

    // Kill the home shard (drain stops its accept loop and closes the
    // listener — to the router this is a dead backend).
    let (dead, dead_runner, survivor) = if home == 0 {
        (shard_a, runner_a, shard_b)
    } else {
        (shard_b, runner_b, shard_a)
    };
    dead.shutdown();
    dead_runner.join().unwrap();

    // The same request must keep answering 200 with identical bytes —
    // now from the surviving shard.
    for attempt in 0..4 {
        let response = call(router.addr(), "POST", "/v1/gate/eval", raw);
        assert_eq!(
            response.status, 200,
            "attempt {attempt} after shard death: {}",
            response.body
        );
        assert_eq!(
            response.body, first.body,
            "failover answers must stay byte-identical"
        );
        assert_ne!(
            response.header("x-shard"),
            Some(home.to_string().as_str()),
            "the dead shard must not answer"
        );
    }
    // The death is recorded either as a failover (a request dialed the
    // corpse and moved on) or as an ejection (the health loop got there
    // first and the ring skipped it) — depending on who noticed first.
    let metrics = router.metrics();
    let failovers = metrics.failovers.load(std::sync::atomic::Ordering::Relaxed);
    let ejections = metrics.ejections.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        failovers + ejections >= 1,
        "the shard death must show up in the router counters"
    );
    // The health loop notices the corpse and marks it unhealthy.
    let deadline = Instant::now() + Duration::from_secs(5);
    while router.backend_healthy(home) {
        assert!(
            Instant::now() < deadline,
            "health loop never ejected the dead shard"
        );
        thread::sleep(Duration::from_millis(10));
    }

    drain(router.addr());
    router_runner.join().unwrap();
    survivor.shutdown();
}

#[test]
fn jobs_submit_through_the_router_and_poll_on_the_same_shard() {
    let (shard_a, runner_a) = boot_shard();
    let (shard_b, runner_b) = boot_shard();
    let (router, router_runner) = boot_router(&[shard_a.addr(), shard_b.addr()]);

    let accepted = call(
        router.addr(),
        "POST",
        "/v1/jobs",
        r#"{"kind":"sleep","ms":50}"#,
    );
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let submit_shard = accepted.header("x-shard").expect("x-shard").to_string();
    let id = Json::parse(&accepted.body)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .expect("job id")
        .to_string();

    // Polls route by the key baked into the id, so they reach the shard
    // that owns the job.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let poll = call(router.addr(), "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(poll.status, 200, "{}", poll.body);
        assert_eq!(
            poll.header("x-shard"),
            Some(submit_shard.as_str()),
            "job polls must have affinity with the submitting shard"
        );
        let doc = Json::parse(&poll.body).unwrap();
        if doc.get("status").and_then(Json::as_str) == Some("done") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "job never finished through the router: {}",
            poll.body
        );
        thread::sleep(Duration::from_millis(25));
    }

    drain(router.addr());
    router_runner.join().unwrap();
    shard_a.shutdown();
    shard_b.shutdown();
    runner_a.join().unwrap();
    runner_b.join().unwrap();
}
