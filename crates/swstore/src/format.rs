//! The on-disk record format of a segment file.
//!
//! A segment is a flat sequence of records, each fully self-describing:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  = 0x53_57_53_31 ("SWS1", little-endian u32)
//!      4     8  key    (u64, little-endian — the FNV-1a content key)
//!     12     4  len    (u32, little-endian — body length in bytes)
//!     16     4  crc    (u32, little-endian — CRC-32/IEEE over key ‖ len ‖ body)
//!     20   len  body
//! ```
//!
//! The CRC covers everything after the magic, so a record is either
//! verifiably whole or rejected; there is no state a reader can trust
//! halfway. A write interrupted mid-record (crash, SIGKILL) leaves a
//! tail that fails the magic, length, or CRC check — [`scan`] reports
//! how many bytes of the segment are valid so the opener can truncate
//! the torn tail and keep appending after the last good record.

/// Record header magic: "SWS1" as a little-endian u32.
pub const MAGIC: u32 = 0x3153_5753;
/// Bytes of header before the body.
pub const HEADER_LEN: usize = 20;
/// Largest accepted record body (16 MiB — response bodies are small;
/// this bound keeps a corrupt length field from provoking a huge
/// allocation during recovery).
pub const MAX_BODY: usize = 16 << 20;

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — the same
/// polynomial gzip and PNG use.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    static TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

fn record_crc(key: u64, body: &[u8]) -> u32 {
    let mut covered = Vec::with_capacity(12 + body.len());
    covered.extend_from_slice(&key.to_le_bytes());
    covered.extend_from_slice(&(body.len() as u32).to_le_bytes());
    covered.extend_from_slice(body);
    crc32(&covered)
}

/// Encodes one record, header + body, ready to append to a segment.
pub fn encode(key: u64, body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= MAX_BODY, "record body exceeds MAX_BODY");
    let mut record = Vec::with_capacity(HEADER_LEN + body.len());
    record.extend_from_slice(&MAGIC.to_le_bytes());
    record.extend_from_slice(&key.to_le_bytes());
    record.extend_from_slice(&(body.len() as u32).to_le_bytes());
    record.extend_from_slice(&record_crc(key, body).to_le_bytes());
    record.extend_from_slice(body);
    record
}

/// One record located by [`scan`]: its key and where its body lives in
/// the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannedRecord {
    /// The content key.
    pub key: u64,
    /// Byte offset of the body within the segment file.
    pub body_offset: u64,
    /// Body length in bytes.
    pub body_len: u32,
}

/// The result of scanning a segment's bytes.
#[derive(Debug)]
pub struct Scan {
    /// Every whole, CRC-valid record, in file order.
    pub records: Vec<ScannedRecord>,
    /// Bytes of the segment that are valid; anything past this offset is
    /// a torn or corrupt tail the opener should truncate.
    pub valid_len: u64,
}

fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4 bytes"))
}

fn le_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

/// Walks a segment's bytes record by record, stopping at the first
/// framing or checksum violation. Scanning never fails — a corrupt or
/// torn segment simply yields a shorter `valid_len`.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < HEADER_LEN {
            break;
        }
        if le_u32(&rest[0..4]) != MAGIC {
            break;
        }
        let key = le_u64(&rest[4..12]);
        let len = le_u32(&rest[12..16]) as usize;
        let crc = le_u32(&rest[16..20]);
        if len > MAX_BODY || rest.len() < HEADER_LEN + len {
            break;
        }
        let body = &rest[HEADER_LEN..HEADER_LEN + len];
        if record_crc(key, body) != crc {
            break;
        }
        records.push(ScannedRecord {
            key,
            body_offset: (offset + HEADER_LEN) as u64,
            body_len: len as u32,
        });
        offset += HEADER_LEN + len;
    }
    Scan {
        records,
        valid_len: offset as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn encode_then_scan_round_trips() {
        let mut segment = Vec::new();
        segment.extend_from_slice(&encode(7, b"alpha"));
        segment.extend_from_slice(&encode(9, b""));
        segment.extend_from_slice(&encode(7, b"alpha-v2"));
        let scan = scan(&segment);
        assert_eq!(scan.valid_len, segment.len() as u64);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].key, 7);
        assert_eq!(scan.records[1].body_len, 0);
        let last = scan.records[2];
        let body = &segment
            [last.body_offset as usize..(last.body_offset + u64::from(last.body_len)) as usize];
        assert_eq!(body, b"alpha-v2");
    }

    #[test]
    fn torn_tail_is_cut_at_the_last_whole_record() {
        let mut segment = Vec::new();
        let first = encode(1, b"whole");
        segment.extend_from_slice(&first);
        let torn = encode(2, b"interrupted mid-write");
        segment.extend_from_slice(&torn[..torn.len() - 3]);
        let scan = scan(&segment);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, first.len() as u64);
    }

    #[test]
    fn flipped_body_bit_fails_the_crc() {
        let mut segment = encode(3, b"payload");
        let last = segment.len() - 1;
        segment[last] ^= 0x01;
        let scan = scan(&segment);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn corrupt_length_cannot_provoke_a_huge_read() {
        let mut segment = encode(4, b"x");
        // Claim a 2 GiB body: the scan must stop, not allocate.
        segment[12..16].copy_from_slice(&(2u32 << 30).to_le_bytes());
        let scan = scan(&segment);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn garbage_prefix_yields_nothing() {
        let scan = scan(b"not a segment at all, just bytes");
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }
}
