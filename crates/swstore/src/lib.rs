//! swstore — a std-only, disk-backed, content-addressed result store.
//!
//! The serving tier's RAM cache ([`swserve`]'s `ResultCache`) answers in
//! nanoseconds but evaporates on every restart; the evaluations it holds
//! took microseconds (analytic) to minutes (micromagnetic) to produce.
//! This crate is the durable second level: a directory of append-only
//! **segment files** addressed by the same 64-bit FNV-1a content key the
//! RAM cache already uses, so promotion between the levels is a key
//! lookup, not a format conversion.
//!
//! Design, in one breath: writes append CRC-framed records to an active
//! segment (see [`format`]); opening a store replays every segment into
//! a compact in-memory index (key → segment/offset/length), truncating
//! any torn tail the last crash left behind; reads seek straight to the
//! body and re-verify its CRC; capacity is bounded by total on-disk
//! bytes, and exceeding it triggers a **compaction** that rewrites the
//! most-recently-used survivors into a fresh segment via temp + rename
//! (crash-safe: either the old segments or the complete new one exist,
//! never a half state) and deletes the rest — which is also how
//! overwritten duplicates get garbage-collected. A [`Store::prewarm`]
//! path replays JSON-lines manifests (swrun/swserve run manifests, or
//! raw request logs) through a caller-supplied mapper so a fresh store
//! can be seeded from recorded work before the first request lands.
//!
//! Everything is `std`-only and safe to share: the store is internally
//! a mutex over the index plus atomic counters, and values are returned
//! as owned byte vectors.

pub mod format;

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use swjson::Json;

/// How a [`Store`] is configured.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Total on-disk budget in bytes; exceeding it triggers compaction,
    /// which evicts least-recently-used entries (min 64 KiB).
    pub capacity_bytes: u64,
    /// Active-segment rotation threshold (min 4 KiB). Smaller segments
    /// mean finer-grained compaction; larger ones mean fewer files.
    pub segment_bytes: u64,
}

impl StoreConfig {
    /// A store rooted at `dir` with the default 64 MiB capacity and
    /// 8 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            capacity_bytes: 64 << 20,
            segment_bytes: 8 << 20,
        }
    }

    /// Overrides the on-disk capacity.
    #[must_use]
    pub fn capacity_bytes(mut self, bytes: u64) -> StoreConfig {
        self.capacity_bytes = bytes.max(64 << 10);
        self
    }

    /// Overrides the segment rotation threshold.
    #[must_use]
    pub fn segment_bytes(mut self, bytes: u64) -> StoreConfig {
        self.segment_bytes = bytes.max(4 << 10);
        self
    }
}

/// Where one live value lives on disk.
#[derive(Debug, Clone, Copy)]
struct Entry {
    segment: u32,
    body_offset: u64,
    body_len: u32,
    /// Logical access clock at last get/put — the LRU ordering key.
    touched: u64,
}

#[derive(Debug, Default)]
struct Inner {
    index: HashMap<u64, Entry>,
    /// Byte size of every sealed segment still on disk, by id.
    sealed: Vec<(u32, u64)>,
    active: Option<File>,
    active_id: u32,
    active_bytes: u64,
    clock: u64,
}

impl Inner {
    fn disk_bytes(&self) -> u64 {
        self.sealed.iter().map(|(_, bytes)| bytes).sum::<u64>() + self.active_bytes
    }
}

/// Monotonic lifetime counters, snapshot via [`Store::counters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreCounters {
    /// `get` calls that found a value.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Records appended (puts + pre-warm inserts).
    pub puts: u64,
    /// Body bytes read back by hits.
    pub read_bytes: u64,
    /// Record bytes appended (headers included).
    pub written_bytes: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Entries evicted by compaction (LRU overflow).
    pub evicted: u64,
    /// Entries inserted by [`Store::prewarm`].
    pub prewarm_records: u64,
    /// Live entries in the index right now.
    pub entries: u64,
    /// Total segment bytes on disk right now.
    pub disk_bytes: u64,
}

/// The disk-backed content-addressed store.
#[derive(Debug)]
pub struct Store {
    config: StoreConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    read_bytes: AtomicU64,
    written_bytes: AtomicU64,
    compactions: AtomicU64,
    evicted: AtomicU64,
    prewarm_records: AtomicU64,
}

impl Store {
    /// Opens (or creates) the store at `config.dir`, replaying every
    /// segment into the in-memory index. A torn tail on the newest
    /// segment — the signature of a crash mid-append — is truncated so
    /// the segment is clean for future reads; corrupt records in older
    /// segments simply end that segment's replay early (later segments
    /// still load, and compaction eventually rewrites everything).
    ///
    /// # Errors
    ///
    /// Directory creation and segment I/O failures.
    pub fn open(config: StoreConfig) -> std::io::Result<Store> {
        fs::create_dir_all(&config.dir)?;
        let mut ids: Vec<u32> = Vec::new();
        for entry in fs::read_dir(&config.dir)? {
            let name = entry?.file_name();
            if let Some(id) = segment_id(&name.to_string_lossy()) {
                ids.push(id);
            }
        }
        ids.sort_unstable();

        let mut inner = Inner::default();
        for (position, &id) in ids.iter().enumerate() {
            let path = segment_path(&config.dir, id);
            let bytes = fs::read(&path)?;
            let scan = format::scan(&bytes);
            if scan.valid_len < bytes.len() as u64 && position == ids.len() - 1 {
                // Torn tail on the newest segment: truncate in place so
                // the file's contents and the index agree byte for byte.
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(scan.valid_len)?;
                file.sync_all()?;
            }
            for record in scan.records {
                inner.clock += 1;
                inner.index.insert(
                    record.key,
                    Entry {
                        segment: id,
                        body_offset: record.body_offset,
                        body_len: record.body_len,
                        touched: inner.clock,
                    },
                );
            }
            inner.sealed.push((id, scan.valid_len));
        }
        inner.active_id = ids.last().map_or(0, |id| id + 1);
        Ok(Store {
            config,
            inner: Mutex::new(inner),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            read_bytes: AtomicU64::new(0),
            written_bytes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            prewarm_records: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Looks up `key`, returning the stored body. The body's CRC is
    /// re-verified on every read; a record that fails (bit rot, external
    /// tampering) is treated as a miss and dropped from the index.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().expect("store poisoned");
        let Some(entry) = inner.index.get(&key).copied() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let verified = self
            .read_body(&entry)
            .ok()
            .filter(|body| read_header_crc(&self.config.dir, &entry) == Some(body_crc(key, body)));
        match verified {
            Some(body) => {
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(live) = inner.index.get_mut(&key) {
                    live.touched = clock;
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.read_bytes
                    .fetch_add(body.len() as u64, Ordering::Relaxed);
                Some(body)
            }
            None => {
                // Unreadable or checksum-failed (bit rot, tampering):
                // drop the entry so future lookups recompute.
                inner.index.remove(&key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `body` under `key`, overwriting any previous value. The
    /// record is flushed to the OS before the call returns; if the new
    /// total exceeds the capacity budget, a compaction runs inline.
    ///
    /// # Errors
    ///
    /// Segment I/O failures (the index is only updated on success).
    pub fn put(&self, key: u64, body: &[u8]) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("store poisoned");
        self.append_locked(&mut inner, key, body)?;
        if inner.disk_bytes() > self.config.capacity_bytes {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// True when `key` has a live entry (no I/O, no LRU touch).
    pub fn contains(&self, key: u64) -> bool {
        self.inner
            .lock()
            .expect("store poisoned")
            .index
            .contains_key(&key)
    }

    /// Live entries in the index.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store poisoned").index.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total segment bytes currently on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.inner.lock().expect("store poisoned").disk_bytes()
    }

    /// A snapshot of the lifetime counters plus current entry/byte
    /// gauges.
    pub fn counters(&self) -> StoreCounters {
        let (entries, disk_bytes) = {
            let inner = self.inner.lock().expect("store poisoned");
            (inner.index.len() as u64, inner.disk_bytes())
        };
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            written_bytes: self.written_bytes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            prewarm_records: self.prewarm_records.load(Ordering::Relaxed),
            entries,
            disk_bytes,
        }
    }

    /// Replays a JSON-lines manifest into the store. Each parseable
    /// line is offered to `map`; a `Some((key, body))` answer is
    /// inserted **unless the key is already present** (live entries are
    /// assumed correct — pre-warm fills gaps, it does not clobber).
    /// Returns the number of entries inserted. Unparseable lines (e.g.
    /// a tail torn by a kill) are skipped, matching swrun's own
    /// manifest-replay tolerance.
    ///
    /// # Errors
    ///
    /// Manifest read failures and segment write failures. A missing
    /// manifest file is not an error — there is simply nothing to warm.
    pub fn prewarm<F>(&self, manifest: &Path, mut map: F) -> std::io::Result<usize>
    where
        F: FnMut(&Json) -> Option<(u64, String)>,
    {
        let text = match fs::read_to_string(manifest) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut inserted = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(record) = Json::parse(line) else {
                continue;
            };
            let Some((key, body)) = map(&record) else {
                continue;
            };
            let mut inner = self.inner.lock().expect("store poisoned");
            if inner.index.contains_key(&key) {
                continue;
            }
            self.append_locked(&mut inner, key, body.as_bytes())?;
            if inner.disk_bytes() > self.config.capacity_bytes {
                self.compact_locked(&mut inner)?;
            }
            drop(inner);
            self.prewarm_records.fetch_add(1, Ordering::Relaxed);
            inserted += 1;
        }
        Ok(inserted)
    }

    fn read_body(&self, entry: &Entry) -> std::io::Result<Vec<u8>> {
        let mut file = File::open(segment_path(&self.config.dir, entry.segment))?;
        file.seek(SeekFrom::Start(entry.body_offset))?;
        let mut body = vec![0u8; entry.body_len as usize];
        file.read_exact(&mut body)?;
        Ok(body)
    }

    fn append_locked(&self, inner: &mut Inner, key: u64, body: &[u8]) -> std::io::Result<()> {
        let record = format::encode(key, body);
        if inner.active.is_none() {
            let path = segment_path(&self.config.dir, inner.active_id);
            let file = OpenOptions::new().create(true).append(true).open(path)?;
            inner.active = Some(file);
            inner.active_bytes = 0;
        }
        let body_offset = inner.active_bytes + format::HEADER_LEN as u64;
        {
            let file = inner.active.as_mut().expect("just ensured");
            file.write_all(&record)?;
            file.flush()?;
        }
        inner.active_bytes += record.len() as u64;
        inner.clock += 1;
        inner.index.insert(
            key,
            Entry {
                segment: inner.active_id,
                body_offset,
                body_len: body.len() as u32,
                touched: inner.clock,
            },
        );
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.written_bytes
            .fetch_add(record.len() as u64, Ordering::Relaxed);
        if inner.active_bytes >= self.config.segment_bytes {
            // Seal the active segment; the next append opens a new one.
            if let Some(file) = inner.active.take() {
                file.sync_all()?;
            }
            inner.sealed.push((inner.active_id, inner.active_bytes));
            inner.active_id += 1;
            inner.active_bytes = 0;
        }
        Ok(())
    }

    /// Rewrites the most-recently-used live entries into one fresh
    /// segment and deletes every older file. Survivors are chosen
    /// newest-first until half the capacity budget is used (so the
    /// store breathes between compactions); everything else is evicted
    /// LRU. The new segment is written to a `.tmp` path, synced, then
    /// renamed into place — a crash at any point leaves either the old
    /// segments (rename not reached) or a complete new one.
    fn compact_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        // Seal the active segment so every body is readable from a file.
        if let Some(file) = inner.active.take() {
            file.sync_all()?;
            inner.sealed.push((inner.active_id, inner.active_bytes));
            inner.active_id += 1;
            inner.active_bytes = 0;
        }

        let mut live: Vec<(u64, Entry)> = inner.index.iter().map(|(k, e)| (*k, *e)).collect();
        live.sort_by_key(|entry| std::cmp::Reverse(entry.1.touched));
        let budget = self.config.capacity_bytes / 2;
        let mut kept_bytes = 0u64;
        let mut survivors = Vec::new();
        for (key, entry) in live {
            let record_bytes = u64::from(entry.body_len) + format::HEADER_LEN as u64;
            if !survivors.is_empty() && kept_bytes + record_bytes > budget {
                break;
            }
            kept_bytes += record_bytes;
            survivors.push((key, entry));
        }
        let evicted = inner.index.len() - survivors.len();

        let new_id = inner.active_id;
        let final_path = segment_path(&self.config.dir, new_id);
        let tmp_path = final_path.with_extension("log.tmp");
        let mut new_index = HashMap::with_capacity(survivors.len());
        let mut written = 0u64;
        {
            let mut tmp = File::create(&tmp_path)?;
            // Oldest-touched first, so the newest survivors win any
            // replay and sit at the segment tail.
            for (key, entry) in survivors.iter().rev() {
                let body = self.read_body(entry)?;
                let record = format::encode(*key, &body);
                inner.clock += 1;
                new_index.insert(
                    *key,
                    Entry {
                        segment: new_id,
                        body_offset: written + format::HEADER_LEN as u64,
                        body_len: entry.body_len,
                        touched: inner.clock,
                    },
                );
                tmp.write_all(&record)?;
                written += record.len() as u64;
            }
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;

        for (id, _) in &inner.sealed {
            fs::remove_file(segment_path(&self.config.dir, *id)).ok();
        }
        inner.sealed.clear();
        inner.sealed.push((new_id, written));
        inner.index = new_index;
        inner.active_id = new_id + 1;
        inner.active = None;
        inner.active_bytes = 0;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        Ok(())
    }
}

fn segment_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

fn segment_id(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn read_header_crc(dir: &Path, entry: &Entry) -> Option<u32> {
    let mut file = File::open(segment_path(dir, entry.segment)).ok()?;
    file.seek(SeekFrom::Start(entry.body_offset - 4)).ok()?;
    let mut crc = [0u8; 4];
    file.read_exact(&mut crc).ok()?;
    Some(u32::from_le_bytes(crc))
}

fn body_crc(key: u64, body: &[u8]) -> u32 {
    let mut covered = Vec::with_capacity(12 + body.len());
    covered.extend_from_slice(&key.to_le_bytes());
    covered.extend_from_slice(&(body.len() as u32).to_le_bytes());
    covered.extend_from_slice(body);
    format::crc32(&covered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swstore-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_store(dir: &Path) -> Store {
        Store::open(
            StoreConfig::new(dir)
                .capacity_bytes(64 << 10)
                .segment_bytes(4 << 10),
        )
        .expect("open store")
    }

    #[test]
    fn put_get_round_trip_and_overwrite() {
        let dir = temp_dir("roundtrip");
        let store = small_store(&dir);
        assert_eq!(store.get(1), None);
        store.put(1, b"{\"out\":1}").unwrap();
        store.put(2, b"{\"out\":2}").unwrap();
        assert_eq!(store.get(1).as_deref(), Some(&b"{\"out\":1}"[..]));
        store.put(1, b"{\"out\":1,\"v\":2}").unwrap();
        assert_eq!(store.get(1).as_deref(), Some(&b"{\"out\":1,\"v\":2}"[..]));
        let c = store.counters();
        assert_eq!(c.puts, 3);
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
        assert_eq!(c.entries, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_entries_and_latest_wins() {
        let dir = temp_dir("reopen");
        {
            let store = small_store(&dir);
            store.put(7, b"first").unwrap();
            store.put(8, b"other").unwrap();
            store.put(7, b"second").unwrap();
        }
        let store = small_store(&dir);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(7).as_deref(), Some(&b"second"[..]));
        assert_eq!(store.get(8).as_deref(), Some(&b"other"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        {
            let store = small_store(&dir);
            store.put(1, b"whole record").unwrap();
        }
        // Simulate a crash mid-append: a partial record at the tail.
        let seg = segment_path(&dir, 0);
        let mut file = OpenOptions::new().append(true).open(&seg).unwrap();
        let torn = format::encode(2, b"interrupted");
        file.write_all(&torn[..torn.len() - 4]).unwrap();
        drop(file);

        let store = small_store(&dir);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(1).as_deref(), Some(&b"whole record"[..]));
        assert_eq!(store.get(2), None);
        // The tail was physically truncated, so appends stay readable.
        store.put(3, b"post-crash").unwrap();
        drop(store);
        let store = small_store(&dir);
        assert_eq!(store.get(3).as_deref(), Some(&b"post-crash"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_evicts_least_recently_used() {
        let dir = temp_dir("compact");
        let store = Store::open(
            StoreConfig::new(&dir)
                .capacity_bytes(64 << 10)
                .segment_bytes(4 << 10),
        )
        .unwrap();
        let body = vec![b'x'; 1024];
        for key in 0..40u64 {
            store.put(key, &body).unwrap(); // ~41 KiB total: under capacity
        }
        assert_eq!(store.counters().compactions, 0);
        // Touch key 0 so it is the most recently used despite being oldest.
        assert!(store.get(0).is_some());
        // One oversized record pushes past capacity -> compaction.
        store.put(99, &vec![b'z'; 30 << 10]).unwrap();
        let c = store.counters();
        assert!(c.compactions >= 1, "expected a compaction, got {c:?}");
        assert!(c.evicted > 0);
        assert!(store.disk_bytes() <= 64 << 10);
        assert!(store.get(0).is_some(), "recently-touched entry survived");
        assert!(store.get(99).is_some(), "newest entry survived");
        assert!(
            store.get(1).is_none(),
            "cold entry was evicted ({} live)",
            store.len()
        );
        // Survivors are still readable after a reopen (rename landed).
        drop(store);
        let store = small_store(&dir);
        assert!(store.get(0).is_some());
        assert!(store.get(99).is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_body_is_dropped_not_served() {
        let dir = temp_dir("bitrot");
        let store = small_store(&dir);
        store.put(5, b"pristine bytes").unwrap();
        // Flip one body byte on disk behind the store's back.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        assert_eq!(store.get(5), None, "corrupt record must not be served");
        assert_eq!(store.len(), 0, "corrupt record is dropped from the index");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prewarm_inserts_mapped_lines_and_skips_present_keys() {
        let dir = temp_dir("prewarm");
        let store = small_store(&dir);
        store.put(11, b"already here").unwrap();
        let manifest = dir.join("manifest.jsonl");
        fs::write(
            &manifest,
            concat!(
                "{\"key\":11.0,\"body\":\"clobber?\"}\n",
                "{\"key\":12.0,\"body\":\"warmed\"}\n",
                "not json at all\n",
                "{\"unrelated\":true}\n",
                "{\"key\":13.0,\"body\":\"also warmed\"}\n",
            ),
        )
        .unwrap();
        let inserted = store
            .prewarm(&manifest, |record| {
                let key = record.get("key")?.as_f64()? as u64;
                let body = record.get("body")?.as_str()?.to_string();
                Some((key, body))
            })
            .unwrap();
        assert_eq!(inserted, 2);
        assert_eq!(store.get(11).as_deref(), Some(&b"already here"[..]));
        assert_eq!(store.get(12).as_deref(), Some(&b"warmed"[..]));
        assert_eq!(store.get(13).as_deref(), Some(&b"also warmed"[..]));
        assert_eq!(store.counters().prewarm_records, 2);
        // A missing manifest is a no-op, not an error.
        assert_eq!(store.prewarm(&dir.join("nope.jsonl"), |_| None).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_rotation_seals_files() {
        let dir = temp_dir("rotate");
        let store = small_store(&dir); // 4 KiB segments
        let body = vec![b'y'; 1500];
        for key in 0..6u64 {
            store.put(key, &body).unwrap();
        }
        let segments = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| segment_id(&e.as_ref().unwrap().file_name().to_string_lossy()).is_some())
            .count();
        assert!(
            segments >= 2,
            "expected rotation, got {segments} segment(s)"
        );
        for key in 0..6u64 {
            assert!(store.get(key).is_some(), "key {key} readable post-rotation");
        }
        fs::remove_dir_all(&dir).ok();
    }
}
