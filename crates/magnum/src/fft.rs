//! Radix-2 Cooley–Tukey FFT, written from scratch.
//!
//! Used by the Newell demagnetization kernel (2-D convolution) and by the
//! spectrum probes. Lengths must be powers of two; callers zero-pad.

use crate::math::Complex64;

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT: `X[k] = Σ x[n]·e^{-2πi·kn/N}`.
    Forward,
    /// Inverse DFT, normalized by 1/N.
    Inverse,
}

/// In-place radix-2 FFT of a power-of-two-length buffer.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (zero-length included).
///
/// ```
/// use magnum::fft::{fft_in_place, Direction};
/// use magnum::Complex64;
/// let mut data = vec![Complex64::ONE; 4];
/// fft_in_place(&mut data, Direction::Forward);
/// assert!((data[0].re - 4.0).abs() < 1e-12); // DC bin
/// assert!(data[1].abs() < 1e-12);
/// ```
pub fn fft_in_place(data: &mut [Complex64], direction: Direction) {
    let n = data.len();
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT length must be a power of two, got {n}"
    );
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = match direction {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(angle);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    if direction == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// Forward FFT of a real signal, returning the full complex spectrum.
///
/// # Panics
///
/// Panics if `signal.len()` is not a power of two.
pub fn fft_real(signal: &[f64]) -> Vec<Complex64> {
    let mut data: Vec<Complex64> = signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
    fft_in_place(&mut data, Direction::Forward);
    data
}

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// 2-D FFT over a row-major `nx × ny` buffer (both dimensions powers of
/// two), transforming rows then columns.
///
/// # Panics
///
/// Panics if `data.len() != nx * ny` or either dimension is not a power of
/// two.
pub fn fft2_in_place(data: &mut [Complex64], nx: usize, ny: usize, direction: Direction) {
    assert_eq!(data.len(), nx * ny, "buffer size mismatch");
    assert!(
        nx.is_power_of_two() && ny.is_power_of_two(),
        "dimensions must be powers of two"
    );
    // Rows.
    for row in data.chunks_mut(nx) {
        fft_in_place(row, direction);
    }
    // Columns, via a scratch buffer.
    let mut column = vec![Complex64::ZERO; ny];
    for ix in 0..nx {
        for iy in 0..ny {
            column[iy] = data[iy * nx + ix];
        }
        fft_in_place(&mut column, direction);
        for iy in 0..ny {
            data[iy * nx + ix] = column[iy];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!(
            (a - b).abs() < tol,
            "expected {b}, got {a} (|diff| = {})",
            (a - b).abs()
        );
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        fft_in_place(&mut data, Direction::Forward);
        for z in &data {
            assert_close(*z, Complex64::ONE, 1e-12);
        }
    }

    #[test]
    fn round_trip_recovers_signal() {
        let original: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data, Direction::Forward);
        fft_in_place(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(original.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spectrum = fft_real(&signal);
        // cos splits into bins k0 and n-k0, each with magnitude n/2.
        assert!((spectrum[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spectrum[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, z) in spectrum.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(z.abs() < 1e-9, "leakage in bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * i) as f64 * 0.1).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spectrum = fft_real(&signal);
        let freq_energy: f64 =
            spectrum.iter().map(|z| z.abs_sq()).sum::<f64>() / signal.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new(0.0, (i as f64).cos()))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_in_place(&mut fa, Direction::Forward);
        fft_in_place(&mut fb, Direction::Forward);
        fft_in_place(&mut fab, Direction::Forward);
        for i in 0..8 {
            assert_close(fab[i], fa[i] + fb[i], 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex64::ZERO; 12];
        fft_in_place(&mut data, Direction::Forward);
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(64), 64);
        assert_eq!(next_power_of_two(65), 128);
    }

    #[test]
    fn fft2_round_trip() {
        let nx = 8;
        let ny = 4;
        let original: Vec<Complex64> = (0..nx * ny)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let mut data = original.clone();
        fft2_in_place(&mut data, nx, ny, Direction::Forward);
        fft2_in_place(&mut data, nx, ny, Direction::Inverse);
        for (a, b) in data.iter().zip(original.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn fft2_of_constant_is_dc_only() {
        let nx = 4;
        let ny = 4;
        let mut data = vec![Complex64::ONE; nx * ny];
        fft2_in_place(&mut data, nx, ny, Direction::Forward);
        assert_close(data[0], Complex64::new(16.0, 0.0), 1e-12);
        for (i, z) in data.iter().enumerate().skip(1) {
            assert!(z.abs() < 1e-12, "bin {i} should be empty");
        }
    }
}
