//! Radix-2 Cooley–Tukey FFT, written from scratch.
//!
//! Used by the Newell demagnetization kernel (2-D convolution) and by the
//! spectrum probes. Lengths must be powers of two; callers zero-pad.
//!
//! ## Plans
//!
//! Hot paths build an [`FftPlan`] (1-D) or [`Fft2Plan`] (2-D) once and
//! reuse it. A plan precomputes the bit-reversal permutation and one
//! twiddle table per butterfly stage, so the inner loop is a single
//! complex multiply per butterfly — the old implementation regenerated
//! twiddles with a running product `w *= wlen`, which both cost an extra
//! complex multiply per butterfly and accumulated rounding drift that
//! grows with the transform length (see the `table_twiddles_beat_running_
//! product` regression test).
//!
//! [`Fft2Plan`] transforms rows, block-transposes, transforms the former
//! columns as contiguous rows, and transposes back; every row transform
//! and transpose tile is independent of the block partition, so results
//! are bitwise identical for any [`WorkerTeam`] size (the same
//! determinism contract as the fused LLG kernel).
//!
//! ## Real transforms
//!
//! [`fft_real_pair`] packs two real sequences into one complex transform
//! (re/im channels) and unpacks the two spectra via conjugate symmetry;
//! [`fft_real`] transforms a single real sequence through a half-length
//! complex FFT. The Newell demag path uses the same packing in 2-D to
//! turn six full transforms of `mx/my/mz` into four.
//!
//! The convenience free functions ([`fft_in_place`], [`fft2_in_place`])
//! build a throwaway plan per call and run serially — fine for tests and
//! one-off spectra, wasteful inside an integrator loop.

use crate::math::Complex64;
use crate::par::{SendPtr, WorkerTeam};

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT: `X[k] = Σ x[n]·e^{-2πi·kn/N}`.
    Forward,
    /// Inverse DFT, normalized by 1/N.
    Inverse,
}

/// A reusable 1-D FFT plan: bit-reversal permutation plus per-stage
/// twiddle tables for one power-of-two length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of every position.
    rev: Vec<u32>,
    /// Forward twiddles `e^{-2πik/len}`, stages concatenated in order
    /// `len = 2, 4, …, n` (`len/2` entries each, `n − 1` total). The
    /// inverse transform conjugates on the fly.
    tw: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two (zero included).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT length must be a power of two, got {n}"
        );
        assert!(n <= u32::MAX as usize, "FFT length too large");
        let mut rev = vec![0u32; n];
        for i in 1..n {
            rev[i] = (rev[i >> 1] >> 1) | if i & 1 == 1 { n as u32 >> 1 } else { 0 };
        }
        let mut tw = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let step = -2.0 * std::f64::consts::PI / len as f64;
            for k in 0..len / 2 {
                tw.push(Complex64::cis(step * k as f64));
            }
            len <<= 1;
        }
        FftPlan { n, rev, tw }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate length-1 plan's… never: plans always
    /// have `n ≥ 1`, so this reports whether `n == 0`, which cannot
    /// happen. Provided to satisfy the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Executes the transform in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn process(&self, data: &mut [Complex64], direction: Direction) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length does not match FFT plan");
        for (i, &r) in self.rev.iter().enumerate() {
            let j = r as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        let conj = direction == Direction::Inverse;
        let mut len = 2;
        let mut toff = 0;
        while len <= n {
            let half = len / 2;
            let tw = &self.tw[toff..toff + half];
            for start in (0..n).step_by(len) {
                for (k, &w0) in tw.iter().enumerate() {
                    let w = if conj { w0.conj() } else { w0 };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            toff += half;
            len <<= 1;
        }
        if conj {
            let inv = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z = z.scale(inv);
            }
        }
    }
}

/// In-place radix-2 FFT of a power-of-two-length buffer.
///
/// Convenience wrapper that builds a throwaway [`FftPlan`]; hold a plan
/// when transforming repeatedly.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (zero-length included).
///
/// ```
/// use magnum::fft::{fft_in_place, Direction};
/// use magnum::Complex64;
/// let mut data = vec![Complex64::ONE; 4];
/// fft_in_place(&mut data, Direction::Forward);
/// assert!((data[0].re - 4.0).abs() < 1e-12); // DC bin
/// assert!(data[1].abs() < 1e-12);
/// ```
pub fn fft_in_place(data: &mut [Complex64], direction: Direction) {
    FftPlan::new(data.len()).process(data, direction);
}

/// Forward FFT of a real signal, returning the full complex spectrum.
///
/// Internally runs a half-length complex transform on the even/odd
/// packing of the signal (the classic r2c split), so it costs roughly
/// half of a full complex FFT.
///
/// # Panics
///
/// Panics if `signal.len()` is not a power of two.
pub fn fft_real(signal: &[f64]) -> Vec<Complex64> {
    let n = signal.len();
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT length must be a power of two, got {n}"
    );
    if n == 1 {
        return vec![Complex64::new(signal[0], 0.0)];
    }
    let half = n / 2;
    // Pack even samples into re, odd samples into im.
    let mut packed: Vec<Complex64> = (0..half)
        .map(|j| Complex64::new(signal[2 * j], signal[2 * j + 1]))
        .collect();
    FftPlan::new(half).process(&mut packed, Direction::Forward);
    let mut spectrum = vec![Complex64::ZERO; n];
    let step = -2.0 * std::f64::consts::PI / n as f64;
    for k in 0..half {
        let kc = if k == 0 { 0 } else { half - k };
        let z1 = packed[k];
        let z2 = packed[kc];
        // Spectra of the even (E) and odd (O) sub-sequences.
        let e = Complex64::new(0.5 * (z1.re + z2.re), 0.5 * (z1.im - z2.im));
        let o = Complex64::new(0.5 * (z1.im + z2.im), 0.5 * (z2.re - z1.re));
        let x = e + Complex64::cis(step * k as f64) * o;
        spectrum[k] = x;
        if k == 0 {
            // X[n/2] = E[0] − O[0] (the twiddle at k = n/2 is −1).
            spectrum[half] = e - o;
        } else {
            spectrum[n - k] = x.conj();
        }
    }
    spectrum
}

/// Forward FFTs of **two** real signals of equal power-of-two length via
/// a single complex transform (`a` in the real channel, `b` in the
/// imaginary channel), returning both full spectra.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn fft_real_pair(a: &[f64], b: &[f64]) -> (Vec<Complex64>, Vec<Complex64>) {
    let n = a.len();
    assert_eq!(n, b.len(), "paired real signals must have equal length");
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT length must be a power of two, got {n}"
    );
    let mut packed: Vec<Complex64> = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| Complex64::new(x, y))
        .collect();
    FftPlan::new(n).process(&mut packed, Direction::Forward);
    let mut fa = vec![Complex64::ZERO; n];
    let mut fb = vec![Complex64::ZERO; n];
    for k in 0..n {
        let kc = if k == 0 { 0 } else { n - k };
        let z1 = packed[k];
        let z2 = packed[kc];
        // A[k] = (Z[k] + conj(Z[−k]))/2, B[k] = −i(Z[k] − conj(Z[−k]))/2.
        fa[k] = Complex64::new(0.5 * (z1.re + z2.re), 0.5 * (z1.im - z2.im));
        fb[k] = Complex64::new(0.5 * (z1.im + z2.im), 0.5 * (z2.re - z1.re));
    }
    (fa, fb)
}

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Transpose tile edge; 32 × 16 B complex values = two pages of cache
/// lines per tile row, comfortably L1-resident for a 32×32 tile.
const TILE: usize = 32;

/// A reusable 2-D FFT plan over a row-major `nx × ny` grid.
///
/// Executes as rows → block transpose → rows (the former columns, now
/// contiguous) → block transpose back. Both row batches and both
/// transposes are partitioned across the caller's [`WorkerTeam`]; every
/// per-row transform and per-tile copy is independent of the partition,
/// so results are bitwise identical at any thread count, and no
/// allocation happens per execution (the caller owns the scratch).
#[derive(Debug, Clone)]
pub struct Fft2Plan {
    nx: usize,
    ny: usize,
    row: FftPlan,
    col: FftPlan,
}

impl Fft2Plan {
    /// Builds a plan for `nx × ny` grids (both powers of two).
    pub fn new(nx: usize, ny: usize) -> Self {
        Fft2Plan {
            nx,
            ny,
            row: FftPlan::new(nx),
            col: FftPlan::new(ny),
        }
    }

    /// Grid width (row length).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height (column length).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of elements `process` expects in `data` and `scratch`.
    pub fn grid_len(&self) -> usize {
        self.nx * self.ny
    }

    /// Executes the 2-D transform in place, using `scratch` (same length
    /// as `data`) for the transposed intermediate and `team` to batch
    /// rows and tiles across worker blocks.
    ///
    /// # Panics
    ///
    /// Panics if `data` or `scratch` length differs from
    /// [`Fft2Plan::grid_len`].
    pub fn process(
        &self,
        data: &mut [Complex64],
        scratch: &mut [Complex64],
        team: &WorkerTeam,
        direction: Direction,
    ) {
        assert_eq!(data.len(), self.grid_len(), "buffer size mismatch");
        assert_eq!(scratch.len(), self.grid_len(), "scratch size mismatch");
        fft_rows(data, &self.row, self.ny, team, direction);
        transpose(data, scratch, self.nx, self.ny, team);
        fft_rows(scratch, &self.col, self.nx, team, direction);
        transpose(scratch, data, self.ny, self.nx, team);
    }

    /// Forward transform of a zero-padded grid whose rows
    /// `data_rows..ny` are identically zero: the first row pass only
    /// transforms the populated rows (the DFT of an all-zero row is
    /// zero), saving a quarter of the 1-D transforms when the data fills
    /// half the padded grid — the standard convolution layout.
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatch or `data_rows > ny`.
    pub fn process_padded(
        &self,
        data: &mut [Complex64],
        scratch: &mut [Complex64],
        team: &WorkerTeam,
        data_rows: usize,
    ) {
        assert_eq!(data.len(), self.grid_len(), "buffer size mismatch");
        assert_eq!(scratch.len(), self.grid_len(), "scratch size mismatch");
        assert!(data_rows <= self.ny, "data_rows exceeds grid height");
        fft_rows(
            &mut data[..data_rows * self.nx],
            &self.row,
            data_rows,
            team,
            Direction::Forward,
        );
        transpose(data, scratch, self.nx, self.ny, team);
        fft_rows(scratch, &self.col, self.nx, team, Direction::Forward);
        transpose(scratch, data, self.ny, self.nx, team);
    }

    /// Inverse transform producing only rows `0..out_rows` of the result
    /// (rows beyond are left unspecified): the column pass runs first and
    /// the final row pass skips the rows the caller will not read —
    /// the mirror image of [`Fft2Plan::process_padded`], with the same
    /// saving when a convolution only reads back the unpadded region.
    ///
    /// The row/column pass order differs from [`Fft2Plan::process`], so
    /// results agree to rounding (not bitwise) with a full inverse; they
    /// are still bitwise identical across thread counts.
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatch or `out_rows > ny`.
    pub fn process_truncated(
        &self,
        data: &mut [Complex64],
        scratch: &mut [Complex64],
        team: &WorkerTeam,
        out_rows: usize,
    ) {
        assert_eq!(data.len(), self.grid_len(), "buffer size mismatch");
        assert_eq!(scratch.len(), self.grid_len(), "scratch size mismatch");
        assert!(out_rows <= self.ny, "out_rows exceeds grid height");
        transpose(data, scratch, self.nx, self.ny, team);
        fft_rows(scratch, &self.col, self.nx, team, Direction::Inverse);
        transpose(scratch, data, self.ny, self.nx, team);
        fft_rows(
            &mut data[..out_rows * self.nx],
            &self.row,
            out_rows,
            team,
            Direction::Inverse,
        );
    }
}

/// Transforms `rows` contiguous rows of `data` in place, batched across
/// the worker team (each row is one independent transform).
fn fft_rows(
    data: &mut [Complex64],
    plan: &FftPlan,
    rows: usize,
    team: &WorkerTeam,
    direction: Direction,
) {
    let rowlen = plan.len();
    debug_assert_eq!(data.len(), rowlen * rows);
    let base = SendPtr::new(data.as_mut_ptr());
    team.for_each_span(rows, |r0, r1| {
        for r in r0..r1 {
            // Safety: row ranges are disjoint across spans and in bounds.
            let row = unsafe { std::slice::from_raw_parts_mut(base.add(r * rowlen), rowlen) };
            plan.process(row, direction);
        }
    });
}

/// Blocked transpose: `src` is row-major `rows` rows × `cols` columns;
/// `dst` receives the `cols × rows` transpose. Parallel over output-row
/// spans; tiles keep both access patterns cache-resident.
fn transpose(
    src: &[Complex64],
    dst: &mut [Complex64],
    cols: usize,
    rows: usize,
    team: &WorkerTeam,
) {
    debug_assert_eq!(src.len(), cols * rows);
    debug_assert_eq!(dst.len(), cols * rows);
    let base = SendPtr::new(dst.as_mut_ptr());
    team.for_each_span(cols, |x0, x1| {
        for xt in (x0..x1).step_by(TILE) {
            let xe = (xt + TILE).min(x1);
            for yt in (0..rows).step_by(TILE) {
                let ye = (yt + TILE).min(rows);
                for x in xt..xe {
                    for y in yt..ye {
                        // Safety: each output row `x` belongs to exactly
                        // one span; writes are disjoint and in bounds.
                        unsafe { *base.add(x * rows + y) = src[y * cols + x] };
                    }
                }
            }
        }
    });
}

/// 2-D FFT over a row-major `nx × ny` buffer (both dimensions powers of
/// two), transforming rows then columns.
///
/// Convenience wrapper building a throwaway [`Fft2Plan`] and running
/// serially; hold a plan (and scratch) when transforming repeatedly.
///
/// # Panics
///
/// Panics if `data.len() != nx * ny` or either dimension is not a power
/// of two.
pub fn fft2_in_place(data: &mut [Complex64], nx: usize, ny: usize, direction: Direction) {
    assert_eq!(data.len(), nx * ny, "buffer size mismatch");
    assert!(
        nx.is_power_of_two() && ny.is_power_of_two(),
        "dimensions must be powers of two"
    );
    let plan = Fft2Plan::new(nx, ny);
    let mut scratch = vec![Complex64::ZERO; data.len()];
    plan.process(data, &mut scratch, &WorkerTeam::new(1), direction);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!(
            (a - b).abs() < tol,
            "expected {b}, got {a} (|diff| = {})",
            (a - b).abs()
        );
    }

    /// Deterministic pseudo-random stream for test signals (SplitMix64).
    fn test_noise(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64) * 2.0 - 1.0
            })
            .collect()
    }

    /// Direct O(N²) DFT with Kahan-compensated accumulation — the
    /// high-accuracy reference for the twiddle regression test.
    fn direct_dft(signal: &[Complex64]) -> Vec<Complex64> {
        let n = signal.len();
        let table: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        (0..n)
            .map(|k| {
                let (mut sr, mut si) = (0.0f64, 0.0f64);
                let (mut cr, mut ci) = (0.0f64, 0.0f64);
                for (j, &x) in signal.iter().enumerate() {
                    let w = table[(k * j) % n];
                    let term = x * w;
                    // Kahan compensation, separately per component.
                    let yr = term.re - cr;
                    let tr = sr + yr;
                    cr = (tr - sr) - yr;
                    sr = tr;
                    let yi = term.im - ci;
                    let ti = si + yi;
                    ci = (ti - si) - yi;
                    si = ti;
                }
                Complex64::new(sr, si)
            })
            .collect()
    }

    /// The pre-plan butterfly loop: twiddles regenerated per group with a
    /// running product `w *= wlen`. Kept here only to demonstrate the
    /// rounding drift the table-driven plan fixes.
    fn legacy_fft_running_product(data: &mut [Complex64]) {
        let n = data.len();
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if j > i {
                data.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let angle = -2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex64::cis(angle);
            for start in (0..n).step_by(len) {
                let mut w = Complex64::ONE;
                for k in 0..len / 2 {
                    let a = data[start + k];
                    let b = data[start + k + len / 2] * w;
                    data[start + k] = a + b;
                    data[start + k + len / 2] = a - b;
                    w *= wlen;
                }
            }
            len <<= 1;
        }
    }

    #[test]
    fn table_twiddles_beat_running_product_at_n4096() {
        // Regression test for the twiddle accumulation drift: at N = 4096
        // the table-driven plan must agree with a compensated direct DFT
        // to ≤ 5e-15 of the spectrum's peak — a tolerance the old
        // running-product butterfly misses by an order of magnitude (its
        // recurrence error grows with the stage length: measured 3.9e-14
        // vs 5.8e-16 for the table on this fixed seed).
        let n = 4096;
        let noise = test_noise(0x5eed, 2 * n);
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
            .collect();
        let reference = direct_dft(&signal);
        let peak = reference.iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!(peak > 0.0);

        let max_err = |spectrum: &[Complex64]| {
            spectrum
                .iter()
                .zip(reference.iter())
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max)
                / peak
        };

        let mut table_driven = signal.clone();
        fft_in_place(&mut table_driven, Direction::Forward);
        let table_err = max_err(&table_driven);

        let mut running = signal.clone();
        legacy_fft_running_product(&mut running);
        let legacy_err = max_err(&running);

        let tol = 5e-15; // far tighter than the 1e-9 requirement
        assert!(
            table_err <= tol,
            "table-driven FFT drifted: {table_err:.3e} > {tol:.0e}"
        );
        assert!(
            legacy_err > tol,
            "legacy running-product error {legacy_err:.3e} unexpectedly within {tol:.0e} — \
             the regression test lost its teeth"
        );
        assert!(
            table_err < legacy_err,
            "table twiddles ({table_err:.3e}) must beat the running product ({legacy_err:.3e})"
        );
    }

    #[test]
    fn plan_reuse_matches_free_function() {
        let noise = test_noise(7, 128);
        let signal: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
            .collect();
        let plan = FftPlan::new(64);
        let mut a = signal.clone();
        let mut b = signal;
        plan.process(&mut a, Direction::Forward);
        fft_in_place(&mut b, Direction::Forward);
        assert_eq!(a, b, "plan reuse must be bitwise identical");
        plan.process(&mut a, Direction::Inverse);
        fft_in_place(&mut b, Direction::Inverse);
        assert_eq!(a, b);
    }

    #[test]
    fn length_one_transform_is_identity() {
        let mut data = vec![Complex64::new(3.5, -1.25)];
        fft_in_place(&mut data, Direction::Forward);
        assert_eq!(data[0], Complex64::new(3.5, -1.25));
        fft_in_place(&mut data, Direction::Inverse);
        assert_eq!(data[0], Complex64::new(3.5, -1.25));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        fft_in_place(&mut data, Direction::Forward);
        for z in &data {
            assert_close(*z, Complex64::ONE, 1e-12);
        }
    }

    #[test]
    fn round_trip_recovers_signal() {
        let original: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data, Direction::Forward);
        fft_in_place(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(original.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spectrum = fft_real(&signal);
        // cos splits into bins k0 and n-k0, each with magnitude n/2.
        assert!((spectrum[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spectrum[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, z) in spectrum.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(z.abs() < 1e-9, "leakage in bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * i) as f64 * 0.1).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spectrum = fft_real(&signal);
        let freq_energy: f64 =
            spectrum.iter().map(|z| z.abs_sq()).sum::<f64>() / signal.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn fft_real_matches_complex_transform() {
        // The r2c half-length split must agree with transforming the
        // signal as complex data with a zero imaginary channel.
        for n in [1usize, 2, 4, 64, 256] {
            let signal = test_noise(42 + n as u64, n);
            let spectrum = fft_real(&signal);
            let mut complex: Vec<Complex64> =
                signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
            fft_in_place(&mut complex, Direction::Forward);
            let scale = (n as f64).sqrt();
            for (k, (a, b)) in spectrum.iter().zip(complex.iter()).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-11 * scale,
                    "n={n} bin {k}: r2c {a} vs complex {b}"
                );
            }
        }
    }

    #[test]
    fn fft_real_pair_matches_two_complex_transforms() {
        for n in [2usize, 8, 128] {
            let a = test_noise(1000 + n as u64, n);
            let b = test_noise(2000 + n as u64, n);
            let (fa, fb) = fft_real_pair(&a, &b);
            let mut ca: Vec<Complex64> = a.iter().map(|&x| Complex64::new(x, 0.0)).collect();
            let mut cb: Vec<Complex64> = b.iter().map(|&x| Complex64::new(x, 0.0)).collect();
            fft_in_place(&mut ca, Direction::Forward);
            fft_in_place(&mut cb, Direction::Forward);
            let scale = (n as f64).sqrt();
            for k in 0..n {
                assert!(
                    (fa[k] - ca[k]).abs() < 1e-11 * scale,
                    "n={n} channel a bin {k}: {} vs {}",
                    fa[k],
                    ca[k]
                );
                assert!(
                    (fb[k] - cb[k]).abs() < 1e-11 * scale,
                    "n={n} channel b bin {k}: {} vs {}",
                    fb[k],
                    cb[k]
                );
            }
        }
    }

    #[test]
    fn fft_real_pair_round_trips_through_inverse() {
        let n = 64;
        let a = test_noise(31, n);
        let b = test_noise(33, n);
        let (fa, fb) = fft_real_pair(&a, &b);
        // Repack Hx + i·Hy and invert: re must recover a, im must
        // recover b — exactly the packing the demag pipeline relies on.
        let mut packed: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new(fa[k].re - fb[k].im, fa[k].im + fb[k].re))
            .collect();
        fft_in_place(&mut packed, Direction::Inverse);
        for i in 0..n {
            assert!((packed[i].re - a[i]).abs() < 1e-12, "re channel at {i}");
            assert!((packed[i].im - b[i]).abs() < 1e-12, "im channel at {i}");
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new(0.0, (i as f64).cos()))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_in_place(&mut fa, Direction::Forward);
        fft_in_place(&mut fb, Direction::Forward);
        fft_in_place(&mut fab, Direction::Forward);
        for i in 0..8 {
            assert_close(fab[i], fa[i] + fb[i], 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex64::ZERO; 12];
        fft_in_place(&mut data, Direction::Forward);
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(64), 64);
        assert_eq!(next_power_of_two(65), 128);
    }

    #[test]
    fn fft2_round_trip() {
        let nx = 8;
        let ny = 4;
        let original: Vec<Complex64> = (0..nx * ny)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let mut data = original.clone();
        fft2_in_place(&mut data, nx, ny, Direction::Forward);
        fft2_in_place(&mut data, nx, ny, Direction::Inverse);
        for (a, b) in data.iter().zip(original.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn fft2_of_constant_is_dc_only() {
        let nx = 4;
        let ny = 4;
        let mut data = vec![Complex64::ONE; nx * ny];
        fft2_in_place(&mut data, nx, ny, Direction::Forward);
        assert_close(data[0], Complex64::new(16.0, 0.0), 1e-12);
        for (i, z) in data.iter().enumerate().skip(1) {
            assert!(z.abs() < 1e-12, "bin {i} should be empty");
        }
    }

    #[test]
    fn fft2_matches_row_column_composition() {
        // The transpose-based plan must agree with the naive row-then-
        // column definition (which is what the old implementation did).
        let nx = 16;
        let ny = 8;
        let noise = test_noise(77, 2 * nx * ny);
        let original: Vec<Complex64> = (0..nx * ny)
            .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
            .collect();
        let mut fast = original.clone();
        fft2_in_place(&mut fast, nx, ny, Direction::Forward);
        // Naive reference: rows in place, then each column gathered,
        // transformed, scattered.
        let mut slow = original;
        for row in slow.chunks_mut(nx) {
            fft_in_place(row, Direction::Forward);
        }
        let mut column = vec![Complex64::ZERO; ny];
        for ix in 0..nx {
            for iy in 0..ny {
                column[iy] = slow[iy * nx + ix];
            }
            fft_in_place(&mut column, Direction::Forward);
            for iy in 0..ny {
                slow[iy * nx + ix] = column[iy];
            }
        }
        for (k, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
            assert_close(*a, *b, 1e-12);
            let _ = k;
        }
    }

    #[test]
    fn fft2_plan_is_bitwise_identical_across_thread_counts() {
        let nx = 32;
        let ny = 16;
        let noise = test_noise(99, 2 * nx * ny);
        let original: Vec<Complex64> = (0..nx * ny)
            .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
            .collect();
        let plan = Fft2Plan::new(nx, ny);
        let mut scratch = vec![Complex64::ZERO; nx * ny];
        let mut serial = original.clone();
        plan.process(
            &mut serial,
            &mut scratch,
            &WorkerTeam::new(1),
            Direction::Forward,
        );
        for threads in [2, 3, 4, 7] {
            let team = WorkerTeam::new(threads);
            let mut parallel = original.clone();
            plan.process(&mut parallel, &mut scratch, &team, Direction::Forward);
            assert_eq!(serial, parallel, "2-D FFT diverged at {threads} threads");
            plan.process(&mut parallel, &mut scratch, &team, Direction::Inverse);
            let mut round = original.clone();
            plan.process(
                &mut round,
                &mut scratch,
                &WorkerTeam::new(1),
                Direction::Inverse,
            );
            let _ = round;
        }
    }

    #[test]
    fn process_padded_matches_full_forward_on_zero_padded_input() {
        // A grid whose top half is zero (the convolution layout): the
        // row-skipping forward must agree with the full transform.
        let nx = 16;
        let ny = 8;
        let data_rows = 3;
        let noise = test_noise(31, 2 * nx * data_rows);
        let mut original = vec![Complex64::ZERO; nx * ny];
        for i in 0..nx * data_rows {
            original[i] = Complex64::new(noise[2 * i], noise[2 * i + 1]);
        }
        let plan = Fft2Plan::new(nx, ny);
        let team = WorkerTeam::new(1);
        let mut scratch = vec![Complex64::ZERO; nx * ny];
        let mut full = original.clone();
        plan.process(&mut full, &mut scratch, &team, Direction::Forward);
        let mut padded = original;
        plan.process_padded(&mut padded, &mut scratch, &team, data_rows);
        assert_eq!(full, padded, "padded forward diverged from full forward");
    }

    #[test]
    fn process_truncated_matches_full_inverse_on_requested_rows() {
        // The truncated inverse runs columns before rows, so it agrees
        // with the full inverse to rounding on the rows it produces.
        let nx = 16;
        let ny = 8;
        let out_rows = 3;
        let noise = test_noise(57, 2 * nx * ny);
        let spectrum: Vec<Complex64> = (0..nx * ny)
            .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
            .collect();
        let plan = Fft2Plan::new(nx, ny);
        let team = WorkerTeam::new(1);
        let mut scratch = vec![Complex64::ZERO; nx * ny];
        let mut full = spectrum.clone();
        plan.process(&mut full, &mut scratch, &team, Direction::Inverse);
        let mut truncated = spectrum;
        plan.process_truncated(&mut truncated, &mut scratch, &team, out_rows);
        for i in 0..nx * out_rows {
            assert_close(truncated[i], full[i], 1e-12);
        }
    }

    #[test]
    fn padded_and_truncated_are_bitwise_identical_across_thread_counts() {
        let nx = 32;
        let ny = 16;
        let data_rows = 7;
        let noise = test_noise(41, 2 * nx * data_rows);
        let mut original = vec![Complex64::ZERO; nx * ny];
        for i in 0..nx * data_rows {
            original[i] = Complex64::new(noise[2 * i], noise[2 * i + 1]);
        }
        let plan = Fft2Plan::new(nx, ny);
        let mut scratch = vec![Complex64::ZERO; nx * ny];
        let mut serial = original.clone();
        let team1 = WorkerTeam::new(1);
        plan.process_padded(&mut serial, &mut scratch, &team1, data_rows);
        plan.process_truncated(&mut serial, &mut scratch, &team1, data_rows);
        for threads in [2, 3, 4, 7] {
            let team = WorkerTeam::new(threads);
            let mut parallel = original.clone();
            plan.process_padded(&mut parallel, &mut scratch, &team, data_rows);
            plan.process_truncated(&mut parallel, &mut scratch, &team, data_rows);
            assert_eq!(
                serial[..nx * data_rows],
                parallel[..nx * data_rows],
                "padded/truncated pipeline diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn fft2_handles_degenerate_single_row_and_column() {
        // nx = 1: the row pass is the identity, the column pass does all
        // the work (and vice versa) — exercises the length-1 plan inside
        // the 2-D pipeline.
        let n = 8;
        let noise = test_noise(123, n);
        let signal: Vec<Complex64> = noise.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        let mut as_column = signal.clone();
        fft2_in_place(&mut as_column, 1, n, Direction::Forward);
        let mut as_row = signal.clone();
        fft2_in_place(&mut as_row, n, 1, Direction::Forward);
        let mut reference = signal;
        fft_in_place(&mut reference, Direction::Forward);
        for i in 0..n {
            assert_close(as_column[i], reference[i], 1e-12);
            assert_close(as_row[i], reference[i], 1e-12);
        }
    }
}
