//! Planned mixed-radix FFT (radix-4/2/3/5 with a Bluestein fallback).
//!
//! Used by the Newell demagnetization kernel (2-D convolution) and by the
//! spectrum probes. Any length `n ≥ 1` is accepted: 5-smooth lengths
//! (`n = 2^a·3^b·5^c`) run through native radix-4/2/3/5 stages; lengths
//! with a larger prime factor fall back to Bluestein's chirp-z algorithm
//! over an inner 5-smooth plan. Hot paths never hit the fallback because
//! they pad with [`good_size`], which only returns 5-smooth lengths.
//!
//! ## Plans
//!
//! Hot paths build an [`FftPlan`] (1-D) or [`Fft2Plan`] (2-D) once and
//! reuse it. A plan precomputes the mixed-radix digit-reversal
//! permutation (stored as a swap list so execution stays in place) and
//! one twiddle table per butterfly stage, so the inner loop is a single
//! complex multiply per input of each butterfly — the old implementation
//! regenerated twiddles with a running product `w *= wlen`, which both
//! cost an extra complex multiply per butterfly and accumulated rounding
//! drift that grows with the transform length (see the
//! `table_twiddles_beat_running_product` regression test).
//!
//! `process` takes `&self` and mutates only the caller's buffer, so one
//! plan is shared concurrently by every worker thread; the decimation
//! order and butterfly arithmetic are fixed at plan time, so results are
//! bitwise identical no matter which thread runs which row.
//!
//! ## Plan selection
//!
//! [`good_size`] picks the padded length for convolutions: the cheapest
//! 5-smooth length ≥ `n` under a per-stage cost model (DESIGN.md §4.4),
//! instead of `next_power_of_two`. At the awkward sizes large demag
//! grids produce (2n−1 for n = 320, 960, 1500, …) this cuts the padded
//! area — and with it every transform, transpose and spectral multiply
//! — by up to ~2.5× in 2-D.
//!
//! [`Fft2Plan`] transforms rows, block-transposes, transforms the former
//! columns as contiguous rows, and transposes back; every row transform
//! and transpose tile is independent of the block partition, so results
//! are bitwise identical for any [`WorkerTeam`] size (the same
//! determinism contract as the fused LLG kernel).
//!
//! ## Real transforms
//!
//! [`fft_real_pair`] packs two real sequences into one complex transform
//! (re/im channels) and unpacks the two spectra via conjugate symmetry;
//! [`fft_real`] transforms a single even-length real sequence through a
//! half-length complex FFT (odd lengths take a plain complex transform).
//! The Newell demag path uses the same packing in 2-D to turn six full
//! transforms of `mx/my/mz` into four.
//!
//! The convenience free functions ([`fft_in_place`], [`fft2_in_place`])
//! build a throwaway plan per call and run serially — fine for tests and
//! one-off spectra, wasteful inside an integrator loop.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::math::Complex64;
use crate::par::{chunk_bounds, effective_threads, SendPtr, WorkerTeam};

/// Default minimum number of grid cells a 2-D FFT pass must touch per
/// worker thread before the pass fans out.
///
/// FFT passes are heavier per cell than the LLG axpy sweeps, but their
/// parallel regions are also much shorter-lived (one pass per axis per
/// transform, ~20 rendezvous per demag eval), so the break-even point
/// sits far above [`crate::par::MIN_CELLS_PER_THREAD`]: BENCH_fft.json
/// showed the 512²-padded 256×256 demag eval *losing* ~10% at 2 and 4
/// threads. 2¹⁸ complex cells per thread keeps every pass of a 512²
/// (and 640²) padded grid serial while the million-cell film paddings
/// (1920×768 and up) still use the full team.
pub const MIN_FFT_CELLS_PER_THREAD: usize = 1 << 18;

thread_local! {
    /// Hot-path scratch allocations observed on this thread — bumped by
    /// every allocation that the per-system scratch arena exists to
    /// avoid (see [`hot_scratch_allocs`]).
    static HOT_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Records one scratch allocation on a path the integrator hot loop must
/// never take (per-eval buffer construction, Bluestein fallback without
/// caller scratch, arena growth).
pub(crate) fn note_hot_alloc() {
    HOT_ALLOCS.with(|c| c.set(c.get() + 1));
}

/// Number of hot-path scratch allocations recorded on the calling thread
/// since it started.
///
/// Steady-state integrator stepping must not move this counter: scratch
/// arenas are sized on first use and reused afterwards. Tests snapshot
/// the value after a warm-up step and assert it stays put.
pub fn hot_scratch_allocs() -> u64 {
    HOT_ALLOCS.with(|c| c.get())
}

/// Process-wide cache of 1-D plans for repeated cold-path transforms
/// (probe readouts transform the same trace length every readout).
/// Bounded: when full, the map is cleared rather than tracking LRU order
/// — plan construction is cheap relative to the transforms the cache
/// serves, so the occasional full rebuild is harmless.
static PLAN_CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();

/// Entry cap for [`cached_plan`]; far above the handful of distinct
/// lengths a run's probes produce.
const PLAN_CACHE_CAP: usize = 64;

/// A shared plan for length `n` from the process-wide cache, built on
/// first use. Plan construction is deterministic, so a cached plan is
/// interchangeable with a freshly built one bit for bit.
pub fn cached_plan(n: usize) -> Arc<FftPlan> {
    let cache = PLAN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // Poisoning is survivable: the map is only ever mutated by the
    // infallible insert/clear below, so a poisoned lock still guards a
    // consistent map (plan construction — which can panic on bad
    // lengths — happens outside the lock).
    {
        let map = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(plan) = map.get(&n) {
            return Arc::clone(plan);
        }
    }
    let plan = Arc::new(FftPlan::new(n));
    let mut map = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = map.get(&n) {
        return Arc::clone(existing);
    }
    if map.len() >= PLAN_CACHE_CAP {
        map.clear();
    }
    map.insert(n, Arc::clone(&plan));
    plan
}

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT: `X[k] = Σ x[n]·e^{-2πi·kn/N}`.
    Forward,
    /// Inverse DFT, normalized by 1/N.
    Inverse,
}

/// One butterfly pass: combines `radix` interleaved sub-transforms of
/// length `len` into transforms of length `len·radix`.
#[derive(Debug, Clone, Copy)]
struct Stage {
    radix: u8,
    /// Sub-transform length entering this stage.
    len: u32,
    /// Start of this stage's `(radix − 1)·len` twiddles in `FftPlan::tw`,
    /// grouped by butterfly index `k`: `w^k, w^{2k}, …, w^{(r−1)k}`.
    toff: u32,
}

/// Bluestein chirp-z fallback for lengths with a prime factor > 5:
/// `X[k] = c[k]·Σ_j (x[j]·c[j])·conj(c)[k−j]` with `c[j] = e^{-iπj²/n}`,
/// evaluated as a circular convolution over an inner 5-smooth plan.
#[derive(Debug, Clone)]
struct Bluestein {
    /// Chirp `e^{-iπ·(j² mod 2n)/n}`, length `n`.
    chirp: Vec<Complex64>,
    /// Forward transform of the conjugate chirp, symmetrically wrapped
    /// into the inner length — the convolution kernel spectrum.
    kernel: Vec<Complex64>,
    /// 5-smooth inner plan of length `good_size(2n − 1)`.
    inner: FftPlan,
}

/// A reusable 1-D FFT plan for one fixed length: the digit-reversal
/// permutation (as a swap list), the stage schedule and per-stage
/// twiddle tables. Lengths that are not 5-smooth carry a [`Bluestein`]
/// fallback instead of stages.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Transpositions realizing the mixed-radix digit reversal in place.
    swaps: Vec<(u32, u32)>,
    /// Butterfly passes, innermost (len = 1) first.
    stages: Vec<Stage>,
    /// Forward twiddles for all stages, concatenated in stage order.
    /// The inverse transform conjugates on the fly.
    tw: Vec<Complex64>,
    /// Chirp-z fallback when `n` has a prime factor > 5.
    bluestein: Option<Box<Bluestein>>,
}

/// sin(π/3): the imaginary part of the radix-3 twiddle.
const SIN_3: f64 = 0.866_025_403_784_438_6;
/// cos(2π/5), cos(4π/5), sin(2π/5), sin(4π/5) for the radix-5 butterfly.
const COS_1_5: f64 = 0.309_016_994_374_947_45;
const COS_2_5: f64 = -0.809_016_994_374_947_5;
const SIN_1_5: f64 = 0.951_056_516_295_153_5;
const SIN_2_5: f64 = 0.587_785_252_292_473_1;

/// Splits `n` into the stage radices the executor applies, in order:
/// radix-4 first (cheapest per element), then at most one radix-2, then
/// radix-3 and radix-5. Returns `None` when a prime factor > 5 remains.
fn factor_stages(n: usize) -> Option<Vec<usize>> {
    let mut f = Vec::new();
    let mut m = n;
    while m.is_multiple_of(4) {
        f.push(4);
        m /= 4;
    }
    if m.is_multiple_of(2) {
        f.push(2);
        m /= 2;
    }
    while m.is_multiple_of(3) {
        f.push(3);
        m /= 3;
    }
    while m.is_multiple_of(5) {
        f.push(5);
        m /= 5;
    }
    (m == 1).then_some(f)
}

/// Digit-reversed position of every index for the given stage order:
/// writing `i` in mixed radix with the *last* stage's radix as the most
/// significant digit, the reversal makes each stage's butterflies read
/// consecutive blocks — the mixed-radix generalization of bit reversal.
fn digit_reversal(n: usize, factors: &[usize]) -> Vec<u32> {
    (0..n)
        .map(|i| {
            let mut rem = i;
            let mut pos = 0usize;
            let mut size = n;
            for &f in factors.iter().rev() {
                size /= f;
                pos += (rem % f) * size;
                rem /= f;
            }
            pos as u32
        })
        .collect()
}

/// Decomposes the permutation `new[pos[i]] = old[i]` into transpositions
/// (one cycle at a time), so `process` can apply it in place with plain
/// swaps and the plan stays immutable — shareable across worker threads.
fn permutation_swaps(pos: &[u32]) -> Vec<(u32, u32)> {
    let mut visited = vec![false; pos.len()];
    let mut swaps = Vec::new();
    for i0 in 0..pos.len() {
        if visited[i0] {
            continue;
        }
        let mut j = i0;
        loop {
            visited[j] = true;
            let next = pos[j] as usize;
            if next == i0 {
                break;
            }
            swaps.push((i0 as u32, next as u32));
            j = next;
        }
    }
    swaps
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// 5-smooth lengths (`2^a·3^b·5^c`, the only lengths [`good_size`]
    /// returns) get native mixed-radix stages; anything else gets the
    /// Bluestein fallback, which is correct but roughly 4× the work —
    /// fine for probes, avoided on hot paths by padding to `good_size`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `u32::MAX`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        assert!(n <= u32::MAX as usize, "FFT length too large");
        let Some(factors) = factor_stages(n) else {
            return FftPlan {
                n,
                swaps: Vec::new(),
                stages: Vec::new(),
                tw: Vec::new(),
                bluestein: Some(Box::new(Bluestein::new(n))),
            };
        };
        let swaps = permutation_swaps(&digit_reversal(n, &factors));
        let mut tw = Vec::new();
        let mut stages = Vec::with_capacity(factors.len());
        let mut len = 1usize;
        for &r in &factors {
            let span = len * r;
            let toff = tw.len() as u32;
            for k in 0..len {
                for j in 1..r {
                    // Reduce the phase index before the trig call: the
                    // argument stays in [0, 2π), which keeps the table
                    // exact to the last ulp even at large spans.
                    let idx = (k * j) % span;
                    tw.push(Complex64::cis(
                        -2.0 * std::f64::consts::PI * idx as f64 / span as f64,
                    ));
                }
            }
            stages.push(Stage {
                radix: r as u8,
                len: len as u32,
                toff,
            });
            len = span;
        }
        FftPlan {
            n,
            swaps,
            stages,
            tw,
            bluestein: None,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Plans always have `n ≥ 1`, so this reports whether `n == 0`,
    /// which cannot happen. Provided to satisfy the `len`/`is_empty`
    /// convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Executes the transform in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn process(&self, data: &mut [Complex64], direction: Direction) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length does not match FFT plan");
        if let Some(b) = &self.bluestein {
            // Cold convenience path: the fallback needs convolution
            // scratch, grown (and counted) inside `process_with`.
            let mut work = Vec::new();
            b.process_with(data, direction, &mut work);
            return;
        }
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let conj = direction == Direction::Inverse;
        // Sign of i in the butterfly internals: e^{s·2πi/r} twiddles.
        let s = if conj { 1.0 } else { -1.0 };
        for st in &self.stages {
            let len = st.len as usize;
            let r = st.radix as usize;
            let t0 = st.toff as usize;
            let tw = &self.tw[t0..t0 + (r - 1) * len];
            let span = len * r;
            match r {
                2 => {
                    for start in (0..n).step_by(span) {
                        for (k, &w0) in tw.iter().enumerate() {
                            let w = if conj { w0.conj() } else { w0 };
                            let i0 = start + k;
                            let a = data[i0];
                            let b = data[i0 + len] * w;
                            data[i0] = a + b;
                            data[i0 + len] = a - b;
                        }
                    }
                }
                3 => {
                    for start in (0..n).step_by(span) {
                        for k in 0..len {
                            let tk = &tw[2 * k..2 * k + 2];
                            let (w1, w2) = if conj {
                                (tk[0].conj(), tk[1].conj())
                            } else {
                                (tk[0], tk[1])
                            };
                            let i0 = start + k;
                            let (i1, i2) = (i0 + len, i0 + 2 * len);
                            let a0 = data[i0];
                            let a1 = data[i1] * w1;
                            let a2 = data[i2] * w2;
                            let t1 = a1 + a2;
                            let t2 = a1 - a2;
                            let m = a0 - t1.scale(0.5);
                            // u = s·i·sin(π/3)·t2
                            let u = Complex64::new(-s * SIN_3 * t2.im, s * SIN_3 * t2.re);
                            data[i0] = a0 + t1;
                            data[i1] = m + u;
                            data[i2] = m - u;
                        }
                    }
                }
                4 => {
                    for start in (0..n).step_by(span) {
                        for k in 0..len {
                            let tk = &tw[3 * k..3 * k + 3];
                            let (w1, w2, w3) = if conj {
                                (tk[0].conj(), tk[1].conj(), tk[2].conj())
                            } else {
                                (tk[0], tk[1], tk[2])
                            };
                            let i0 = start + k;
                            let (i1, i2, i3) = (i0 + len, i0 + 2 * len, i0 + 3 * len);
                            let a0 = data[i0];
                            let a1 = data[i1] * w1;
                            let a2 = data[i2] * w2;
                            let a3 = data[i3] * w3;
                            let t0 = a0 + a2;
                            let t1 = a0 - a2;
                            let t2 = a1 + a3;
                            let t3 = a1 - a3;
                            // jt = s·i·t3
                            let jt = Complex64::new(-s * t3.im, s * t3.re);
                            data[i0] = t0 + t2;
                            data[i1] = t1 + jt;
                            data[i2] = t0 - t2;
                            data[i3] = t1 - jt;
                        }
                    }
                }
                5 => {
                    for start in (0..n).step_by(span) {
                        for k in 0..len {
                            let tk = &tw[4 * k..4 * k + 4];
                            let (w1, w2, w3, w4) = if conj {
                                (tk[0].conj(), tk[1].conj(), tk[2].conj(), tk[3].conj())
                            } else {
                                (tk[0], tk[1], tk[2], tk[3])
                            };
                            let i0 = start + k;
                            let (i1, i2, i3, i4) =
                                (i0 + len, i0 + 2 * len, i0 + 3 * len, i0 + 4 * len);
                            let a0 = data[i0];
                            let a1 = data[i1] * w1;
                            let a2 = data[i2] * w2;
                            let a3 = data[i3] * w3;
                            let a4 = data[i4] * w4;
                            let t1 = a1 + a4;
                            let t2 = a2 + a3;
                            let t3 = a1 - a4;
                            let t4 = a2 - a3;
                            let m1 = a0 + t1.scale(COS_1_5) + t2.scale(COS_2_5);
                            let m2 = a0 + t1.scale(COS_2_5) + t2.scale(COS_1_5);
                            let v1 = t3.scale(SIN_1_5) + t4.scale(SIN_2_5);
                            let v2 = t3.scale(SIN_2_5) - t4.scale(SIN_1_5);
                            let u1 = Complex64::new(-s * v1.im, s * v1.re);
                            let u2 = Complex64::new(-s * v2.im, s * v2.re);
                            data[i0] = a0 + t1 + t2;
                            data[i1] = m1 + u1;
                            data[i4] = m1 - u1;
                            data[i2] = m2 + u2;
                            data[i3] = m2 - u2;
                        }
                    }
                }
                _ => unreachable!("factor_stages only emits radices 2–5"),
            }
        }
        if conj {
            let inv = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z = z.scale(inv);
            }
        }
    }

    /// Scratch length `process_with` needs for this plan: the Bluestein
    /// inner convolution length, or zero for native 5-smooth plans.
    pub fn scratch_len(&self) -> usize {
        self.bluestein.as_ref().map_or(0, |b| b.inner.len())
    }

    /// Executes the transform in place, reusing `scratch` for the
    /// Bluestein convolution buffer instead of allocating per call.
    ///
    /// `scratch` is grown on first use (to [`Self::scratch_len`]) and
    /// left untouched for native plans, so a warm buffer makes repeated
    /// fallback transforms allocation-free. Results are bitwise
    /// identical to [`Self::process`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn process_with(
        &self,
        data: &mut [Complex64],
        direction: Direction,
        scratch: &mut Vec<Complex64>,
    ) {
        if let Some(b) = &self.bluestein {
            assert_eq!(data.len(), self.n, "buffer length does not match FFT plan");
            b.process_with(data, direction, scratch);
            return;
        }
        self.process(data, direction);
    }
}

impl Bluestein {
    fn new(n: usize) -> Self {
        // The circular convolution needs room for the full chirp overlap:
        // any 5-smooth m ≥ 2n − 1 works, good_size picks the cheapest.
        let m = good_size(2 * n - 1);
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                // j² mod 2n keeps the phase argument small and exact
                // (j² itself overflows f64 precision long before u128).
                let sq = ((j as u128 * j as u128) % (2 * n as u128)) as f64;
                Complex64::cis(-std::f64::consts::PI * sq / n as f64)
            })
            .collect();
        let mut kernel = vec![Complex64::ZERO; m];
        for j in 0..n {
            let c = chirp[j].conj();
            kernel[j] = c;
            if j > 0 {
                kernel[m - j] = c;
            }
        }
        let inner = FftPlan::new(m);
        inner.process(&mut kernel, Direction::Forward);
        Bluestein {
            chirp,
            kernel,
            inner,
        }
    }

    /// Forward chirp-z transform of `data` (length `n`), convolving in
    /// `scratch` — grown (and counted as a hot-path allocation) only
    /// when shorter than the inner length, so a warm buffer makes the
    /// transform allocation-free.
    fn forward_with(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        let n = data.len();
        let m = self.inner.len();
        if scratch.len() < m {
            note_hot_alloc();
            scratch.resize(m, Complex64::ZERO);
        }
        let work = &mut scratch[..m];
        for j in 0..n {
            work[j] = data[j] * self.chirp[j];
        }
        // The tail past n must read as zero padding every call; a reused
        // buffer still holds the previous convolution there.
        for w in work[n..].iter_mut() {
            *w = Complex64::ZERO;
        }
        self.inner.process(work, Direction::Forward);
        for (w, k) in work.iter_mut().zip(self.kernel.iter()) {
            *w *= *k;
        }
        // The inverse includes the 1/m normalization of the convolution.
        self.inner.process(work, Direction::Inverse);
        for k in 0..n {
            data[k] = work[k] * self.chirp[k];
        }
    }

    fn process_with(
        &self,
        data: &mut [Complex64],
        direction: Direction,
        scratch: &mut Vec<Complex64>,
    ) {
        match direction {
            Direction::Forward => self.forward_with(data, scratch),
            Direction::Inverse => {
                // IDFT(x) = conj(DFT(conj(x)))/n.
                for z in data.iter_mut() {
                    *z = z.conj();
                }
                self.forward_with(data, scratch);
                let inv = 1.0 / data.len() as f64;
                for z in data.iter_mut() {
                    *z = Complex64::new(z.re * inv, -z.im * inv);
                }
            }
        }
    }
}

/// Per-element cost of one butterfly pass of each radix, in arbitrary
/// throughput units (calibrated so radix-4 ≈ two radix-2 levels and
/// radix-5 ≈ two radix-2 passes — closer to measured behaviour than raw
/// flop counts, which overweight the odd radices on memory-bound sizes).
fn stage_weight(radix: usize) -> f64 {
    match radix {
        2 => 5.0,
        3 => 8.0,
        4 => 8.5,
        5 => 10.0,
        _ => unreachable!(),
    }
}

/// Estimated cost of one length-`m` transform under the stage schedule
/// the planner would build: `m · Σ stage weights`.
fn plan_cost(m: usize) -> f64 {
    let stages = factor_stages(m).expect("plan_cost is only called on 5-smooth lengths");
    m as f64 * stages.iter().map(|&r| stage_weight(r)).sum::<f64>()
}

/// Cheapest 5-smooth transform length ≥ `n` (and ≥ 1) under the stage
/// cost model — the mixed-radix replacement for [`next_power_of_two`]
/// when padding convolutions.
///
/// Candidates are every `2^a·3^b·5^c` in `[n, 2·next_power_of_two(n)]`;
/// ties go to the smaller length (less memory, cheaper spectral
/// multiplies). The result can be odd (e.g. 75 = 3·5²) — the demag
/// pipeline and [`fft_real_pair`] handle odd lengths; [`fft_real`]
/// callers that need the half-length split should round up to even.
///
/// ```
/// use magnum::fft::good_size;
/// assert_eq!(good_size(320), 320);   // already 5-smooth
/// assert_eq!(good_size(639), 640);   // 2^7·5, vs 1024 for radix-2
/// assert_eq!(good_size(1919), 1920); // 2^7·3·5, vs 2048
/// ```
pub fn good_size(n: usize) -> usize {
    let n = n.max(1);
    if n <= 6 {
        // 1, 2, 3, 4, 5, 6 are all 5-smooth already.
        return n;
    }
    assert!(n <= u32::MAX as usize, "FFT length too large");
    let limit = 2 * n.next_power_of_two();
    let mut best = 0usize;
    let mut best_cost = f64::INFINITY;
    let mut p5 = 1usize;
    while p5 <= limit {
        let mut p35 = p5;
        while p35 <= limit {
            // Lift by powers of two to the smallest candidate ≥ n.
            let mut m = p35;
            while m < n {
                m *= 2;
            }
            if m <= limit {
                let cost = plan_cost(m);
                if cost < best_cost || (cost == best_cost && m < best) {
                    best = m;
                    best_cost = cost;
                }
            }
            p35 *= 3;
        }
        p5 *= 5;
    }
    debug_assert!(best >= n);
    best
}

/// In-place FFT of a buffer of any length ≥ 1 (5-smooth lengths run
/// native mixed-radix stages, others the Bluestein fallback).
///
/// Convenience wrapper over the process-wide [`cached_plan`] — repeated
/// transforms of one length (probe readouts) reuse tables; hold your own
/// plan (and scratch) on hot paths.
///
/// # Panics
///
/// Panics if `data` is empty.
///
/// ```
/// use magnum::fft::{fft_in_place, Direction};
/// use magnum::Complex64;
/// let mut data = vec![Complex64::ONE; 12];
/// fft_in_place(&mut data, Direction::Forward);
/// assert!((data[0].re - 12.0).abs() < 1e-12); // DC bin
/// assert!(data[1].abs() < 1e-12);
/// ```
pub fn fft_in_place(data: &mut [Complex64], direction: Direction) {
    cached_plan(data.len()).process(data, direction);
}

/// Forward FFT of a real signal, returning the full complex spectrum.
///
/// Even lengths run a half-length complex transform on the even/odd
/// packing of the signal (the classic r2c split), roughly half the cost
/// of a full complex FFT; odd lengths fall back to a full complex
/// transform of the zero-imaginary signal.
///
/// # Panics
///
/// Panics if `signal` is empty.
pub fn fft_real(signal: &[f64]) -> Vec<Complex64> {
    let n = signal.len();
    assert!(n > 0, "FFT length must be positive");
    if n == 1 {
        return vec![Complex64::new(signal[0], 0.0)];
    }
    if n % 2 == 1 {
        let mut data: Vec<Complex64> = signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        fft_in_place(&mut data, Direction::Forward);
        return data;
    }
    let half = n / 2;
    // Pack even samples into re, odd samples into im.
    let mut packed: Vec<Complex64> = (0..half)
        .map(|j| Complex64::new(signal[2 * j], signal[2 * j + 1]))
        .collect();
    cached_plan(half).process(&mut packed, Direction::Forward);
    let mut spectrum = vec![Complex64::ZERO; n];
    let step = -2.0 * std::f64::consts::PI / n as f64;
    for k in 0..half {
        let kc = if k == 0 { 0 } else { half - k };
        let z1 = packed[k];
        let z2 = packed[kc];
        // Spectra of the even (E) and odd (O) sub-sequences.
        let e = Complex64::new(0.5 * (z1.re + z2.re), 0.5 * (z1.im - z2.im));
        let o = Complex64::new(0.5 * (z1.im + z2.im), 0.5 * (z2.re - z1.re));
        let x = e + Complex64::cis(step * k as f64) * o;
        spectrum[k] = x;
        if k == 0 {
            // X[n/2] = E[0] − O[0] (the twiddle at k = n/2 is −1).
            spectrum[half] = e - o;
        } else {
            spectrum[n - k] = x.conj();
        }
    }
    spectrum
}

/// Forward FFTs of **two** real signals of equal length via a single
/// complex transform (`a` in the real channel, `b` in the imaginary
/// channel), returning both full spectra. Works at any length ≥ 1.
///
/// # Panics
///
/// Panics if the lengths differ or are zero.
pub fn fft_real_pair(a: &[f64], b: &[f64]) -> (Vec<Complex64>, Vec<Complex64>) {
    let n = a.len();
    assert_eq!(n, b.len(), "paired real signals must have equal length");
    assert!(n > 0, "FFT length must be positive");
    let mut packed: Vec<Complex64> = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| Complex64::new(x, y))
        .collect();
    cached_plan(n).process(&mut packed, Direction::Forward);
    let mut fa = vec![Complex64::ZERO; n];
    let mut fb = vec![Complex64::ZERO; n];
    for k in 0..n {
        let kc = if k == 0 { 0 } else { n - k };
        let z1 = packed[k];
        let z2 = packed[kc];
        // A[k] = (Z[k] + conj(Z[−k]))/2, B[k] = −i(Z[k] − conj(Z[−k]))/2.
        fa[k] = Complex64::new(0.5 * (z1.re + z2.re), 0.5 * (z1.im - z2.im));
        fb[k] = Complex64::new(0.5 * (z1.im + z2.im), 0.5 * (z2.re - z1.re));
    }
    (fa, fb)
}

/// Smallest power of two ≥ `n` (and ≥ 1). The radix-2-only padding rule;
/// kept for baselines and callers that genuinely need a power of two —
/// convolution padding should prefer [`good_size`].
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Transpose tile edge; 32 × 16 B complex values = two pages of cache
/// lines per tile row, comfortably L1-resident for a 32×32 tile.
const TILE: usize = 32;

/// Per-thread row scratch for a [`Fft2Plan`]: one independently
/// allocated buffer per worker block (separate heap allocations, so
/// concurrent Bluestein convolutions never share a cache line), grown
/// lazily by [`Fft2Scratch::ensure`] and reused across executions.
///
/// Native 5-smooth plans need no row scratch; for them `ensure` only
/// sizes the outer vector and the buffers stay empty.
#[derive(Debug, Default)]
pub struct Fft2Scratch {
    rows: Vec<Vec<Complex64>>,
}

impl Fft2Scratch {
    /// An empty arena; buffers are sized on first [`Fft2Scratch::ensure`].
    pub fn new() -> Self {
        Fft2Scratch::default()
    }

    /// Grows the arena to `threads` buffers of `plan`'s 1-D scratch
    /// length. Only the first call (or a thread-count increase)
    /// allocates; steady-state calls are free, keeping the integrator
    /// hot loop allocation-free.
    pub fn ensure(&mut self, plan: &Fft2Plan, threads: usize) {
        let len = plan.row_scratch_len();
        if self.rows.len() < threads {
            self.rows.resize_with(threads, Vec::new);
        }
        if len == 0 {
            return;
        }
        for buf in &mut self.rows[..threads] {
            if buf.len() < len {
                note_hot_alloc();
                buf.resize(len, Complex64::ZERO);
            }
        }
    }
}

/// A reusable 2-D FFT plan over a row-major `nx × ny` grid.
///
/// Executes as rows → block transpose → rows (the former columns, now
/// contiguous) → block transpose back. Both row batches and both
/// transposes are partitioned across the caller's [`WorkerTeam`]; every
/// per-row transform and per-tile copy is independent of the partition,
/// so results are bitwise identical at any thread count, and no
/// allocation happens per execution (the caller owns the scratch).
///
/// Every pass is guarded by a cells-per-thread clamp
/// ([`Fft2Plan::with_min_cells_per_thread`], default
/// [`MIN_FFT_CELLS_PER_THREAD`]): passes over small grids run inline on
/// the caller instead of fanning out, which is where the rendezvous
/// overhead exceeds the parallel win. The clamp only changes *which
/// thread* executes a row or tile, never the arithmetic, so it is
/// bitwise-invisible.
///
/// Both axes may be any length ≥ 1 — composite demag paddings from
/// [`good_size`] run the same code path as the old powers of two.
#[derive(Debug, Clone)]
pub struct Fft2Plan {
    nx: usize,
    ny: usize,
    row: FftPlan,
    col: FftPlan,
    min_cells_per_thread: usize,
}

impl Fft2Plan {
    /// Builds a plan for `nx × ny` grids (any lengths ≥ 1) with the
    /// default small-transform clamp.
    pub fn new(nx: usize, ny: usize) -> Self {
        Fft2Plan {
            nx,
            ny,
            row: FftPlan::new(nx),
            col: FftPlan::new(ny),
            min_cells_per_thread: MIN_FFT_CELLS_PER_THREAD,
        }
    }

    /// Overrides the minimum cells a pass must touch per worker thread
    /// before fanning out. `0` disables the clamp (every pass uses the
    /// full team — what the cross-thread parity tests want).
    pub fn with_min_cells_per_thread(mut self, min: usize) -> Self {
        self.min_cells_per_thread = min;
        self
    }

    /// The active cells-per-thread clamp (see
    /// [`Fft2Plan::with_min_cells_per_thread`]).
    pub fn min_cells_per_thread(&self) -> usize {
        self.min_cells_per_thread
    }

    /// Grid width (row length).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height (column length).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of elements `process` expects in `data` and `scratch`.
    pub fn grid_len(&self) -> usize {
        self.nx * self.ny
    }

    /// 1-D scratch length [`Fft2Scratch`] buffers need for this plan
    /// (the larger of the two axes' Bluestein needs; zero when both
    /// axes are 5-smooth).
    pub fn row_scratch_len(&self) -> usize {
        self.row.scratch_len().max(self.col.scratch_len())
    }

    /// Worker blocks a pass touching `cells` grid cells may fan out to
    /// under the clamp.
    fn pass_blocks(&self, cells: usize, team: &WorkerTeam) -> usize {
        effective_threads(team.threads(), cells, self.min_cells_per_thread)
    }

    /// Executes the 2-D transform in place, using `scratch` (same length
    /// as `data`) for the transposed intermediate and `team` to batch
    /// rows and tiles across worker blocks.
    ///
    /// # Panics
    ///
    /// Panics if `data` or `scratch` length differs from
    /// [`Fft2Plan::grid_len`].
    pub fn process(
        &self,
        data: &mut [Complex64],
        scratch: &mut [Complex64],
        team: &WorkerTeam,
        direction: Direction,
    ) {
        assert_eq!(data.len(), self.grid_len(), "buffer size mismatch");
        assert_eq!(scratch.len(), self.grid_len(), "scratch size mismatch");
        let mut rs = Fft2Scratch::new();
        rs.ensure(self, team.threads());
        let nb = self.pass_blocks(self.grid_len(), team);
        fft_rows(data, &self.row, self.ny, team, direction, nb, &mut rs);
        transpose(data, scratch, self.nx, self.ny, team, nb);
        fft_rows(scratch, &self.col, self.nx, team, direction, nb, &mut rs);
        transpose(scratch, data, self.ny, self.nx, team, nb);
    }

    /// Forward transform of a zero-padded grid whose rows
    /// `data_rows..ny` are identically zero: the first row pass only
    /// transforms the populated rows (the DFT of an all-zero row is
    /// zero), saving a quarter of the 1-D transforms when the data fills
    /// half the padded grid — the standard convolution layout.
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatch or `data_rows > ny`.
    pub fn process_padded(
        &self,
        data: &mut [Complex64],
        scratch: &mut [Complex64],
        team: &WorkerTeam,
        data_rows: usize,
    ) {
        assert_eq!(data.len(), self.grid_len(), "buffer size mismatch");
        assert_eq!(scratch.len(), self.grid_len(), "scratch size mismatch");
        let mut rs = Fft2Scratch::new();
        self.forward_spectrum(data, scratch, team, &mut rs, data_rows);
        let nb = self.pass_blocks(self.grid_len(), team);
        transpose(scratch, data, self.ny, self.nx, team, nb);
    }

    /// Forward transform of a zero-padded grid, like
    /// [`Fft2Plan::process_padded`], but **stopping after the column
    /// pass**: `spec` receives the spectrum in x-major ("spectrum")
    /// layout, element `kx * ny + ky` holding bin `(kx, ky)`. Skipping
    /// the final transpose (and the matching first transpose of
    /// [`Fft2Plan::inverse_spectrum`]) removes half the data movement of
    /// a convolution round trip; the bin values are bitwise identical to
    /// the row-major spectrum because a transpose is pure data movement.
    ///
    /// `data` is consumed as scratch for the row pass (its contents are
    /// unspecified afterwards).
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatch or `data_rows > ny`.
    pub fn forward_spectrum(
        &self,
        data: &mut [Complex64],
        spec: &mut [Complex64],
        team: &WorkerTeam,
        rs: &mut Fft2Scratch,
        data_rows: usize,
    ) {
        assert_eq!(data.len(), self.grid_len(), "buffer size mismatch");
        assert_eq!(spec.len(), self.grid_len(), "spectrum size mismatch");
        assert!(data_rows <= self.ny, "data_rows exceeds grid height");
        rs.ensure(self, team.threads());
        let nb_rows = self.pass_blocks(data_rows * self.nx, team);
        fft_rows(
            &mut data[..data_rows * self.nx],
            &self.row,
            data_rows,
            team,
            Direction::Forward,
            nb_rows,
            rs,
        );
        let nb = self.pass_blocks(self.grid_len(), team);
        transpose(data, spec, self.nx, self.ny, team, nb);
        fft_rows(spec, &self.col, self.nx, team, Direction::Forward, nb, rs);
    }

    /// Inverse of [`Fft2Plan::forward_spectrum`]: consumes an x-major
    /// spectrum (contents unspecified afterwards) and materializes only
    /// rows `0..out_rows` of the row-major result in `data` — the
    /// spectrum-layout twin of [`Fft2Plan::process_truncated`], minus
    /// its leading transpose.
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatch or `out_rows > ny`.
    pub fn inverse_spectrum(
        &self,
        spec: &mut [Complex64],
        data: &mut [Complex64],
        team: &WorkerTeam,
        rs: &mut Fft2Scratch,
        out_rows: usize,
    ) {
        assert_eq!(data.len(), self.grid_len(), "buffer size mismatch");
        assert_eq!(spec.len(), self.grid_len(), "spectrum size mismatch");
        assert!(out_rows <= self.ny, "out_rows exceeds grid height");
        rs.ensure(self, team.threads());
        let nb = self.pass_blocks(self.grid_len(), team);
        fft_rows(spec, &self.col, self.nx, team, Direction::Inverse, nb, rs);
        transpose(spec, data, self.ny, self.nx, team, nb);
        let nb_rows = self.pass_blocks(out_rows * self.nx, team);
        fft_rows(
            &mut data[..out_rows * self.nx],
            &self.row,
            out_rows,
            team,
            Direction::Inverse,
            nb_rows,
            rs,
        );
    }

    /// Inverse transform producing only rows `0..out_rows` of the result
    /// (rows beyond are left unspecified): the column pass runs first and
    /// the final row pass skips the rows the caller will not read —
    /// the mirror image of [`Fft2Plan::process_padded`], with the same
    /// saving when a convolution only reads back the unpadded region.
    ///
    /// The row/column pass order differs from [`Fft2Plan::process`], so
    /// results agree to rounding (not bitwise) with a full inverse; they
    /// are still bitwise identical across thread counts.
    ///
    /// # Panics
    ///
    /// Panics on buffer size mismatch or `out_rows > ny`.
    pub fn process_truncated(
        &self,
        data: &mut [Complex64],
        scratch: &mut [Complex64],
        team: &WorkerTeam,
        out_rows: usize,
    ) {
        assert_eq!(data.len(), self.grid_len(), "buffer size mismatch");
        assert_eq!(scratch.len(), self.grid_len(), "scratch size mismatch");
        let mut rs = Fft2Scratch::new();
        let nb = self.pass_blocks(self.grid_len(), team);
        transpose(data, scratch, self.nx, self.ny, team, nb);
        self.inverse_spectrum(scratch, data, team, &mut rs, out_rows);
    }
}

/// Transforms `rows` contiguous rows of `data` in place across at most
/// `max_blocks` worker blocks (each row is one independent transform).
/// Block `b` convolves through scratch buffer `b` exclusively, so
/// Bluestein axes stay allocation-free with no false sharing; with one
/// block everything runs inline on the caller — no job is published.
fn fft_rows(
    data: &mut [Complex64],
    plan: &FftPlan,
    rows: usize,
    team: &WorkerTeam,
    direction: Direction,
    max_blocks: usize,
    rs: &mut Fft2Scratch,
) {
    let rowlen = plan.len();
    debug_assert_eq!(data.len(), rowlen * rows);
    debug_assert!(rs.rows.len() >= team.threads().min(max_blocks.max(1)));
    let nb = team.threads().min(max_blocks.max(1)).min(rows.max(1));
    if nb == 1 {
        let scratch = &mut rs.rows[0];
        for r in 0..rows {
            plan.process_with(&mut data[r * rowlen..(r + 1) * rowlen], direction, scratch);
        }
        return;
    }
    let base = SendPtr::new(data.as_mut_ptr());
    let sbase = SendPtr::new(rs.rows.as_mut_ptr());
    team.run(&|b| {
        if b >= nb {
            return;
        }
        let (r0, r1) = chunk_bounds(rows, nb, b);
        // Safety: one scratch buffer per block index; blocks are unique
        // per rendezvous, so access is exclusive.
        let scratch = unsafe { &mut *sbase.add(b) };
        for r in r0..r1 {
            // Safety: row ranges are disjoint across blocks and in bounds.
            let row = unsafe { std::slice::from_raw_parts_mut(base.add(r * rowlen), rowlen) };
            plan.process_with(row, direction, scratch);
        }
    });
}

/// Blocked transpose: `src` is row-major `rows` rows × `cols` columns;
/// `dst` receives the `cols × rows` transpose. Parallel over output-row
/// spans, capped at `max_blocks`; tiles keep both access patterns
/// cache-resident.
fn transpose(
    src: &[Complex64],
    dst: &mut [Complex64],
    cols: usize,
    rows: usize,
    team: &WorkerTeam,
    max_blocks: usize,
) {
    debug_assert_eq!(src.len(), cols * rows);
    debug_assert_eq!(dst.len(), cols * rows);
    let base = SendPtr::new(dst.as_mut_ptr());
    team.for_each_span_capped(cols, max_blocks, |x0, x1| {
        for xt in (x0..x1).step_by(TILE) {
            let xe = (xt + TILE).min(x1);
            for yt in (0..rows).step_by(TILE) {
                let ye = (yt + TILE).min(rows);
                for x in xt..xe {
                    for y in yt..ye {
                        // Safety: each output row `x` belongs to exactly
                        // one span; writes are disjoint and in bounds.
                        unsafe { *base.add(x * rows + y) = src[y * cols + x] };
                    }
                }
            }
        }
    });
}

/// 2-D FFT over a row-major `nx × ny` buffer (any dimensions ≥ 1),
/// transforming rows then columns.
///
/// Convenience wrapper building a throwaway [`Fft2Plan`] and running
/// serially; hold a plan (and scratch) when transforming repeatedly.
///
/// # Panics
///
/// Panics if `data.len() != nx * ny` or either dimension is zero.
pub fn fft2_in_place(data: &mut [Complex64], nx: usize, ny: usize, direction: Direction) {
    assert_eq!(data.len(), nx * ny, "buffer size mismatch");
    let plan = Fft2Plan::new(nx, ny);
    let mut scratch = vec![Complex64::ZERO; data.len()];
    plan.process(data, &mut scratch, &WorkerTeam::new(1), direction);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!(
            (a - b).abs() < tol,
            "expected {b}, got {a} (|diff| = {})",
            (a - b).abs()
        );
    }

    /// Deterministic pseudo-random stream for test signals (SplitMix64).
    fn test_noise(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64) * 2.0 - 1.0
            })
            .collect()
    }

    /// Direct O(N²) DFT with Kahan-compensated accumulation — the
    /// high-accuracy reference for the regression tests.
    fn direct_dft(signal: &[Complex64]) -> Vec<Complex64> {
        let n = signal.len();
        let table: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        (0..n)
            .map(|k| {
                let (mut sr, mut si) = (0.0f64, 0.0f64);
                let (mut cr, mut ci) = (0.0f64, 0.0f64);
                for (j, &x) in signal.iter().enumerate() {
                    let w = table[(k * j) % n];
                    let term = x * w;
                    // Kahan compensation, separately per component.
                    let yr = term.re - cr;
                    let tr = sr + yr;
                    cr = (tr - sr) - yr;
                    sr = tr;
                    let yi = term.im - ci;
                    let ti = si + yi;
                    ci = (ti - si) - yi;
                    si = ti;
                }
                Complex64::new(sr, si)
            })
            .collect()
    }

    /// Max relative error of `spectrum` against the compensated direct
    /// DFT of `signal`, normalized by the spectrum's peak magnitude.
    fn rel_err_vs_direct(signal: &[Complex64], spectrum: &[Complex64]) -> f64 {
        let reference = direct_dft(signal);
        let peak = reference.iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!(peak > 0.0);
        spectrum
            .iter()
            .zip(reference.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
            / peak
    }

    fn noise_signal(seed: u64, n: usize) -> Vec<Complex64> {
        let noise = test_noise(seed, 2 * n);
        (0..n)
            .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
            .collect()
    }

    /// The pre-plan butterfly loop: twiddles regenerated per group with a
    /// running product `w *= wlen`. Kept here only to demonstrate the
    /// rounding drift the table-driven plan fixes.
    fn legacy_fft_running_product(data: &mut [Complex64]) {
        let n = data.len();
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if j > i {
                data.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let angle = -2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex64::cis(angle);
            for start in (0..n).step_by(len) {
                let mut w = Complex64::ONE;
                for k in 0..len / 2 {
                    let a = data[start + k];
                    let b = data[start + k + len / 2] * w;
                    data[start + k] = a + b;
                    data[start + k + len / 2] = a - b;
                    w *= wlen;
                }
            }
            len <<= 1;
        }
    }

    #[test]
    fn table_twiddles_beat_running_product_at_n4096() {
        // Regression test for the twiddle accumulation drift: at N = 4096
        // the table-driven plan must agree with a compensated direct DFT
        // to ≤ 5e-15 of the spectrum's peak — a tolerance the old
        // running-product butterfly misses by an order of magnitude (its
        // recurrence error grows with the stage length).
        let n = 4096;
        let signal = noise_signal(0x5eed, n);
        let mut table_driven = signal.clone();
        fft_in_place(&mut table_driven, Direction::Forward);
        let table_err = rel_err_vs_direct(&signal, &table_driven);

        let mut running = signal.clone();
        legacy_fft_running_product(&mut running);
        let legacy_err = rel_err_vs_direct(&signal, &running);

        let tol = 5e-15; // far tighter than the 1e-9 requirement
        assert!(
            table_err <= tol,
            "table-driven FFT drifted: {table_err:.3e} > {tol:.0e}"
        );
        assert!(
            legacy_err > tol,
            "legacy running-product error {legacy_err:.3e} unexpectedly within {tol:.0e} — \
             the regression test lost its teeth"
        );
        assert!(
            table_err < legacy_err,
            "table twiddles ({table_err:.3e}) must beat the running product ({legacy_err:.3e})"
        );
    }

    #[test]
    fn mixed_radix_lengths_match_direct_dft() {
        // The headline sizes from the demag planner (96 = 2^5·3,
        // 320 = 2^6·5, 1000 = 2³·5³) plus small composites covering every
        // radix pairing. ≤ 1e-13 relative error against the compensated
        // direct DFT, forward and round-trip.
        for n in [6usize, 10, 12, 15, 20, 24, 45, 60, 96, 320, 1000] {
            let signal = noise_signal(0xabc + n as u64, n);
            let mut spectrum = signal.clone();
            fft_in_place(&mut spectrum, Direction::Forward);
            let err = rel_err_vs_direct(&signal, &spectrum);
            assert!(err <= 1e-13, "n={n}: rel err {err:.3e} > 1e-13");
            fft_in_place(&mut spectrum, Direction::Inverse);
            for (k, (a, b)) in spectrum.iter().zip(signal.iter()).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-12,
                    "n={n} round-trip diverged at {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn prime_lengths_run_through_bluestein_fallback() {
        // 127 (the satellite's prime), plus primes straddling radix
        // boundaries; all must hit ≤ 1e-13 against the direct DFT and
        // round-trip cleanly even though no radix stage divides them.
        for n in [7usize, 31, 97, 127, 251] {
            let plan = FftPlan::new(n);
            assert!(
                plan.bluestein.is_some(),
                "n={n} should use the Bluestein fallback"
            );
            let signal = noise_signal(0xdef + n as u64, n);
            let mut spectrum = signal.clone();
            plan.process(&mut spectrum, Direction::Forward);
            let err = rel_err_vs_direct(&signal, &spectrum);
            assert!(err <= 1e-13, "n={n}: rel err {err:.3e} > 1e-13");
            plan.process(&mut spectrum, Direction::Inverse);
            for (k, (a, b)) in spectrum.iter().zip(signal.iter()).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-12,
                    "n={n} round-trip diverged at {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn smooth_lengths_never_use_the_fallback() {
        for n in [1usize, 2, 3, 4, 5, 8, 9, 25, 30, 320, 640, 1920] {
            assert!(
                FftPlan::new(n).bluestein.is_none(),
                "5-smooth n={n} must run native stages"
            );
        }
    }

    #[test]
    fn good_size_picks_cheap_composites() {
        // Already-smooth inputs are returned unchanged.
        for n in [1usize, 2, 6, 64, 320, 1920] {
            assert_eq!(good_size(n), n);
        }
        // The demag paddings the bench exercises: 2n−1 for n = 320, 960,
        // 1500 — all far below the power-of-two fallback.
        assert_eq!(good_size(639), 640); // vs 1024
        assert_eq!(good_size(1919), 1920); // vs 2048
        assert_eq!(good_size(2999), 3000); // vs 4096
                                           // Every result is 5-smooth, ≥ n, and never beyond 2·pow2.
        for n in [7usize, 11, 65, 97, 127, 257, 1001, 4097] {
            let m = good_size(n);
            assert!(m >= n, "good_size({n}) = {m} < n");
            assert!(
                factor_stages(m).is_some(),
                "good_size({n}) = {m} is not 5-smooth"
            );
            assert!(m <= 2 * n.next_power_of_two());
        }
    }

    #[test]
    fn plan_reuse_matches_free_function() {
        for n in [64usize, 60] {
            let signal = noise_signal(7 + n as u64, n);
            let plan = FftPlan::new(n);
            let mut a = signal.clone();
            let mut b = signal;
            plan.process(&mut a, Direction::Forward);
            fft_in_place(&mut b, Direction::Forward);
            assert_eq!(a, b, "plan reuse must be bitwise identical (n={n})");
            plan.process(&mut a, Direction::Inverse);
            fft_in_place(&mut b, Direction::Inverse);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn length_one_transform_is_identity() {
        let mut data = vec![Complex64::new(3.5, -1.25)];
        fft_in_place(&mut data, Direction::Forward);
        assert_eq!(data[0], Complex64::new(3.5, -1.25));
        fft_in_place(&mut data, Direction::Inverse);
        assert_eq!(data[0], Complex64::new(3.5, -1.25));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        for n in [8usize, 12, 15] {
            let mut data = vec![Complex64::ZERO; n];
            data[0] = Complex64::ONE;
            fft_in_place(&mut data, Direction::Forward);
            for z in &data {
                assert_close(*z, Complex64::ONE, 1e-12);
            }
        }
    }

    #[test]
    fn round_trip_recovers_signal() {
        for n in [16usize, 18, 50] {
            let original: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut data = original.clone();
            fft_in_place(&mut data, Direction::Forward);
            fft_in_place(&mut data, Direction::Inverse);
            for (a, b) in data.iter().zip(original.iter()) {
                assert_close(*a, *b, 1e-10);
            }
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        for n in [64usize, 96] {
            let k0 = 5;
            let signal: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
                .collect();
            let spectrum = fft_real(&signal);
            // cos splits into bins k0 and n-k0, each with magnitude n/2.
            assert!((spectrum[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
            assert!((spectrum[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
            for (k, z) in spectrum.iter().enumerate() {
                if k != k0 && k != n - k0 {
                    assert!(z.abs() < 1e-9, "n={n} leakage in bin {k}: {}", z.abs());
                }
            }
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * i) as f64 * 0.1).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spectrum = fft_real(&signal);
        let freq_energy: f64 =
            spectrum.iter().map(|z| z.abs_sq()).sum::<f64>() / signal.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn fft_real_matches_complex_transform() {
        // The r2c half-length split must agree with transforming the
        // signal as complex data with a zero imaginary channel — at
        // powers of two, composites, and odd lengths (full-complex path).
        for n in [1usize, 2, 4, 64, 96, 256, 320, 27, 45] {
            let signal = test_noise(42 + n as u64, n);
            let spectrum = fft_real(&signal);
            let mut complex: Vec<Complex64> =
                signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
            fft_in_place(&mut complex, Direction::Forward);
            let scale = (n as f64).sqrt();
            for (k, (a, b)) in spectrum.iter().zip(complex.iter()).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-11 * scale,
                    "n={n} bin {k}: r2c {a} vs complex {b}"
                );
            }
        }
    }

    #[test]
    fn fft_real_pair_matches_two_complex_transforms() {
        for n in [2usize, 8, 128, 96, 45] {
            let a = test_noise(1000 + n as u64, n);
            let b = test_noise(2000 + n as u64, n);
            let (fa, fb) = fft_real_pair(&a, &b);
            let mut ca: Vec<Complex64> = a.iter().map(|&x| Complex64::new(x, 0.0)).collect();
            let mut cb: Vec<Complex64> = b.iter().map(|&x| Complex64::new(x, 0.0)).collect();
            fft_in_place(&mut ca, Direction::Forward);
            fft_in_place(&mut cb, Direction::Forward);
            let scale = (n as f64).sqrt();
            for k in 0..n {
                assert!(
                    (fa[k] - ca[k]).abs() < 1e-11 * scale,
                    "n={n} channel a bin {k}: {} vs {}",
                    fa[k],
                    ca[k]
                );
                assert!(
                    (fb[k] - cb[k]).abs() < 1e-11 * scale,
                    "n={n} channel b bin {k}: {} vs {}",
                    fb[k],
                    cb[k]
                );
            }
        }
    }

    #[test]
    fn fft_real_pair_round_trips_through_inverse() {
        for n in [64usize, 60] {
            let a = test_noise(31, n);
            let b = test_noise(33, n);
            let (fa, fb) = fft_real_pair(&a, &b);
            // Repack Hx + i·Hy and invert: re must recover a, im must
            // recover b — exactly the packing the demag pipeline relies on.
            let mut packed: Vec<Complex64> = (0..n)
                .map(|k| Complex64::new(fa[k].re - fb[k].im, fa[k].im + fb[k].re))
                .collect();
            fft_in_place(&mut packed, Direction::Inverse);
            for i in 0..n {
                assert!((packed[i].re - a[i]).abs() < 1e-12, "re channel at {i}");
                assert!((packed[i].im - b[i]).abs() < 1e-12, "im channel at {i}");
            }
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..12).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..12)
            .map(|i| Complex64::new(0.0, (i as f64).cos()))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_in_place(&mut fa, Direction::Forward);
        fft_in_place(&mut fb, Direction::Forward);
        fft_in_place(&mut fab, Direction::Forward);
        for i in 0..12 {
            assert_close(fab[i], fa[i] + fb[i], 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_length() {
        let mut data: Vec<Complex64> = Vec::new();
        fft_in_place(&mut data, Direction::Forward);
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(64), 64);
        assert_eq!(next_power_of_two(65), 128);
    }

    #[test]
    fn fft2_round_trip() {
        for (nx, ny) in [(8usize, 4usize), (12, 10)] {
            let original: Vec<Complex64> = (0..nx * ny)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.2).cos()))
                .collect();
            let mut data = original.clone();
            fft2_in_place(&mut data, nx, ny, Direction::Forward);
            fft2_in_place(&mut data, nx, ny, Direction::Inverse);
            for (a, b) in data.iter().zip(original.iter()) {
                assert_close(*a, *b, 1e-10);
            }
        }
    }

    #[test]
    fn fft2_of_constant_is_dc_only() {
        let nx = 4;
        let ny = 4;
        let mut data = vec![Complex64::ONE; nx * ny];
        fft2_in_place(&mut data, nx, ny, Direction::Forward);
        assert_close(data[0], Complex64::new(16.0, 0.0), 1e-12);
        for (i, z) in data.iter().enumerate().skip(1) {
            assert!(z.abs() < 1e-12, "bin {i} should be empty");
        }
    }

    #[test]
    fn fft2_matches_row_column_composition() {
        // The transpose-based plan must agree with the naive row-then-
        // column definition — including at composite dimensions.
        for (nx, ny) in [(16usize, 8usize), (12, 6), (20, 15)] {
            let noise = test_noise(77, 2 * nx * ny);
            let original: Vec<Complex64> = (0..nx * ny)
                .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
                .collect();
            let mut fast = original.clone();
            fft2_in_place(&mut fast, nx, ny, Direction::Forward);
            // Naive reference: rows in place, then each column gathered,
            // transformed, scattered.
            let mut slow = original;
            for row in slow.chunks_mut(nx) {
                fft_in_place(row, Direction::Forward);
            }
            let mut column = vec![Complex64::ZERO; ny];
            for ix in 0..nx {
                for iy in 0..ny {
                    column[iy] = slow[iy * nx + ix];
                }
                fft_in_place(&mut column, Direction::Forward);
                for iy in 0..ny {
                    slow[iy * nx + ix] = column[iy];
                }
            }
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert_close(*a, *b, 1e-12);
            }
        }
    }

    #[test]
    fn fft2_plan_is_bitwise_identical_across_thread_counts() {
        for (nx, ny) in [(32usize, 16usize), (24, 18)] {
            let noise = test_noise(99, 2 * nx * ny);
            let original: Vec<Complex64> = (0..nx * ny)
                .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
                .collect();
            // Clamp disabled: these grids are far below the production
            // threshold and the point is to exercise the parallel path.
            let plan = Fft2Plan::new(nx, ny).with_min_cells_per_thread(0);
            let mut scratch = vec![Complex64::ZERO; nx * ny];
            let mut serial = original.clone();
            plan.process(
                &mut serial,
                &mut scratch,
                &WorkerTeam::new(1),
                Direction::Forward,
            );
            for threads in [2, 3, 4, 7] {
                let team = WorkerTeam::new(threads);
                let mut parallel = original.clone();
                plan.process(&mut parallel, &mut scratch, &team, Direction::Forward);
                assert_eq!(
                    serial, parallel,
                    "2-D FFT diverged at {threads} threads ({nx}×{ny})"
                );
            }
        }
    }

    #[test]
    fn process_padded_matches_full_forward_on_zero_padded_input() {
        // A grid whose top half is zero (the convolution layout): the
        // row-skipping forward must agree with the full transform.
        for (nx, ny, data_rows) in [(16usize, 8usize, 3usize), (12, 6, 2)] {
            let noise = test_noise(31, 2 * nx * data_rows);
            let mut original = vec![Complex64::ZERO; nx * ny];
            for i in 0..nx * data_rows {
                original[i] = Complex64::new(noise[2 * i], noise[2 * i + 1]);
            }
            let plan = Fft2Plan::new(nx, ny);
            let team = WorkerTeam::new(1);
            let mut scratch = vec![Complex64::ZERO; nx * ny];
            let mut full = original.clone();
            plan.process(&mut full, &mut scratch, &team, Direction::Forward);
            let mut padded = original;
            plan.process_padded(&mut padded, &mut scratch, &team, data_rows);
            assert_eq!(full, padded, "padded forward diverged from full forward");
        }
    }

    #[test]
    fn process_truncated_matches_full_inverse_on_requested_rows() {
        // The truncated inverse runs columns before rows, so it agrees
        // with the full inverse to rounding on the rows it produces.
        for (nx, ny, out_rows) in [(16usize, 8usize, 3usize), (10, 6, 2)] {
            let noise = test_noise(57, 2 * nx * ny);
            let spectrum: Vec<Complex64> = (0..nx * ny)
                .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
                .collect();
            let plan = Fft2Plan::new(nx, ny);
            let team = WorkerTeam::new(1);
            let mut scratch = vec![Complex64::ZERO; nx * ny];
            let mut full = spectrum.clone();
            plan.process(&mut full, &mut scratch, &team, Direction::Inverse);
            let mut truncated = spectrum;
            plan.process_truncated(&mut truncated, &mut scratch, &team, out_rows);
            for i in 0..nx * out_rows {
                assert_close(truncated[i], full[i], 1e-12);
            }
        }
    }

    #[test]
    fn padded_and_truncated_are_bitwise_identical_across_thread_counts() {
        for (nx, ny, data_rows) in [(32usize, 16usize, 7usize), (24, 12, 5)] {
            let noise = test_noise(41, 2 * nx * data_rows);
            let mut original = vec![Complex64::ZERO; nx * ny];
            for i in 0..nx * data_rows {
                original[i] = Complex64::new(noise[2 * i], noise[2 * i + 1]);
            }
            let plan = Fft2Plan::new(nx, ny).with_min_cells_per_thread(0);
            let mut scratch = vec![Complex64::ZERO; nx * ny];
            let mut serial = original.clone();
            let team1 = WorkerTeam::new(1);
            plan.process_padded(&mut serial, &mut scratch, &team1, data_rows);
            plan.process_truncated(&mut serial, &mut scratch, &team1, data_rows);
            for threads in [2, 3, 4, 7] {
                let team = WorkerTeam::new(threads);
                let mut parallel = original.clone();
                plan.process_padded(&mut parallel, &mut scratch, &team, data_rows);
                plan.process_truncated(&mut parallel, &mut scratch, &team, data_rows);
                assert_eq!(
                    serial[..nx * data_rows],
                    parallel[..nx * data_rows],
                    "padded/truncated pipeline diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn small_transform_clamp_is_bitwise_invisible() {
        // The default clamp serializes these tiny passes; a clamp-free
        // plan fans out. Both must produce identical bits — the clamp is
        // a scheduling decision only.
        let (nx, ny) = (40usize, 25usize);
        let noise = test_noise(7, 2 * nx * ny);
        let original: Vec<Complex64> = (0..nx * ny)
            .map(|i| Complex64::new(noise[2 * i], noise[2 * i + 1]))
            .collect();
        let clamped = Fft2Plan::new(nx, ny);
        assert_eq!(clamped.min_cells_per_thread(), MIN_FFT_CELLS_PER_THREAD);
        let unclamped = Fft2Plan::new(nx, ny).with_min_cells_per_thread(0);
        let mut scratch = vec![Complex64::ZERO; nx * ny];
        for threads in [1, 2, 4, 7] {
            let team = WorkerTeam::new(threads);
            let mut a = original.clone();
            clamped.process(&mut a, &mut scratch, &team, Direction::Forward);
            let mut b = original.clone();
            unclamped.process(&mut b, &mut scratch, &team, Direction::Forward);
            assert_eq!(a, b, "clamp changed transform bits at {threads} threads");
        }
    }

    #[test]
    fn spectrum_halves_match_padded_and_truncated_pipelines() {
        // forward_spectrum is process_padded minus the final transpose;
        // inverse_spectrum is process_truncated minus the leading one.
        // Both equivalences must hold bitwise, including on grids with a
        // Bluestein axis (7 is prime) and at several thread counts.
        for (nx, ny, edge_rows) in [(16usize, 12usize, 5usize), (14, 7, 3)] {
            let noise = test_noise(83, 2 * nx * edge_rows);
            let mut original = vec![Complex64::ZERO; nx * ny];
            for i in 0..nx * edge_rows {
                original[i] = Complex64::new(noise[2 * i], noise[2 * i + 1]);
            }
            let plan = Fft2Plan::new(nx, ny).with_min_cells_per_thread(0);
            for threads in [1, 3, 4] {
                let team = WorkerTeam::new(threads);
                let mut rs = Fft2Scratch::new();
                let mut scratch = vec![Complex64::ZERO; nx * ny];

                let mut reference = original.clone();
                plan.process_padded(&mut reference, &mut scratch, &team, edge_rows);

                let mut data = original.clone();
                let mut spec = vec![Complex64::ZERO; nx * ny];
                plan.forward_spectrum(&mut data, &mut spec, &team, &mut rs, edge_rows);
                // Spectrum layout is x-major: bin (kx, ky) at kx·ny + ky.
                for kx in 0..nx {
                    for ky in 0..ny {
                        assert_eq!(
                            spec[kx * ny + ky],
                            reference[ky * nx + kx],
                            "spectrum bin ({kx},{ky}) diverged at {threads} threads"
                        );
                    }
                }

                let mut ref_inv = reference.clone();
                plan.process_truncated(&mut ref_inv, &mut scratch, &team, edge_rows);
                let mut out = vec![Complex64::ZERO; nx * ny];
                plan.inverse_spectrum(&mut spec, &mut out, &team, &mut rs, edge_rows);
                assert_eq!(
                    out[..nx * edge_rows],
                    ref_inv[..nx * edge_rows],
                    "inverse_spectrum diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn process_with_reuses_scratch_without_reallocating() {
        // Prime length: the Bluestein fallback needs convolution scratch.
        // A warm buffer must be reused (no hot-path allocation) and the
        // result must match the allocating path bitwise.
        let n = 37;
        let plan = FftPlan::new(n);
        assert!(plan.scratch_len() > 0, "37 should use the fallback");
        let original = noise_signal(11, n);
        let mut reference = original.clone();
        plan.process(&mut reference, Direction::Forward);
        let mut scratch = Vec::new();
        let mut first = original.clone();
        plan.process_with(&mut first, Direction::Forward, &mut scratch);
        assert_eq!(first, reference, "scratch path diverged from process");
        let allocs_before = hot_scratch_allocs();
        let mut second = original.clone();
        plan.process_with(&mut second, Direction::Forward, &mut scratch);
        let mut inv = second.clone();
        plan.process_with(&mut inv, Direction::Inverse, &mut scratch);
        assert_eq!(
            hot_scratch_allocs(),
            allocs_before,
            "warm scratch must not reallocate"
        );
        assert_eq!(second, reference);
        for (a, b) in inv.iter().zip(original.iter()) {
            assert_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn cached_plan_is_shared_and_interchangeable() {
        let a = cached_plan(60);
        let b = cached_plan(60);
        assert!(Arc::ptr_eq(&a, &b), "same length must share one plan");
        let signal = noise_signal(3, 60);
        let mut via_cache = signal.clone();
        a.process(&mut via_cache, Direction::Forward);
        let mut via_fresh = signal;
        FftPlan::new(60).process(&mut via_fresh, Direction::Forward);
        assert_eq!(via_cache, via_fresh, "cached plan diverged from fresh");
    }

    #[test]
    fn fft2_handles_degenerate_single_row_and_column() {
        // nx = 1: the row pass is the identity, the column pass does all
        // the work (and vice versa) — exercises the length-1 plan inside
        // the 2-D pipeline.
        let n = 8;
        let noise = test_noise(123, n);
        let signal: Vec<Complex64> = noise.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        let mut as_column = signal.clone();
        fft2_in_place(&mut as_column, 1, n, Direction::Forward);
        let mut as_row = signal.clone();
        fft2_in_place(&mut as_row, n, 1, Direction::Forward);
        let mut reference = signal;
        fft_in_place(&mut reference, Direction::Forward);
        for i in 0..n {
            assert_close(as_column[i], reference[i], 1e-12);
            assert_close(as_row[i], reference[i], 1e-12);
        }
    }
}
