//! Error type for the `magnum` crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or running a micromagnetic simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MagnumError {
    /// A mesh dimension or cell size was zero, negative or non-finite.
    InvalidMesh {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A material parameter was out of its physical range.
    InvalidMaterial {
        /// The parameter name, e.g. `"saturation_magnetization"`.
        parameter: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// A simulation configuration problem (e.g. probe outside the mesh).
    InvalidConfig {
        /// Description of the configuration problem.
        reason: String,
    },
    /// The integrator produced a non-finite magnetization.
    ///
    /// This almost always means the time step is too large for the
    /// exchange stiffness / cell size combination.
    Diverged {
        /// Simulation time (s) at which the divergence was detected.
        time: f64,
    },
    /// The adaptive integrator could not satisfy its error tolerance even
    /// at the minimum step size.
    StepSizeUnderflow {
        /// Simulation time (s) at which the step size underflowed.
        time: f64,
    },
}

impl fmt::Display for MagnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagnumError::InvalidMesh { reason } => write!(f, "invalid mesh: {reason}"),
            MagnumError::InvalidMaterial { parameter, reason } => {
                write!(f, "invalid material parameter `{parameter}`: {reason}")
            }
            MagnumError::InvalidConfig { reason } => {
                write!(f, "invalid simulation configuration: {reason}")
            }
            MagnumError::Diverged { time } => write!(
                f,
                "magnetization diverged at t = {time:.3e} s (time step too large?)"
            ),
            MagnumError::StepSizeUnderflow { time } => {
                write!(f, "adaptive step size underflow at t = {time:.3e} s")
            }
        }
    }
}

impl Error for MagnumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MagnumError::InvalidMesh {
            reason: "nx is zero".into(),
        };
        assert_eq!(e.to_string(), "invalid mesh: nx is zero");
        let e = MagnumError::InvalidMaterial {
            parameter: "gilbert_damping",
            reason: "must be non-negative".into(),
        };
        assert!(e.to_string().contains("gilbert_damping"));
        let e = MagnumError::Diverged { time: 1e-9 };
        assert!(e.to_string().contains("1.000e-9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MagnumError>();
    }
}
