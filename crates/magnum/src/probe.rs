//! Measurement probes: time series, single-frequency DFT, and spatial
//! snapshots.
//!
//! The paper's readout (§III) needs two quantities at the output cells:
//! the spin-wave **phase** relative to the drive (Majority gate, phase
//! detection) and its **amplitude** (XOR gate, threshold detection). Both
//! come out of a single-bin discrete Fourier transform of the precession
//! component at the drive frequency — exactly what [`DftProbe`]
//! accumulates on the fly, without storing the whole time trace.

use crate::fft::{fft_real, good_size};
use crate::field3::MagRead;
use crate::math::{Complex64, Vec3};
use crate::mesh::Mesh;

/// Cartesian component selector for probes and snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// x component (an in-plane precession component for FVMSWs).
    X,
    /// y component.
    Y,
    /// z component (the static direction for out-of-plane films).
    Z,
}

impl Component {
    /// Extracts the component from a vector.
    #[inline]
    pub fn of(self, v: Vec3) -> f64 {
        match self {
            Component::X => v.x,
            Component::Y => v.y,
            Component::Z => v.z,
        }
    }
}

/// Averages a magnetization component over a fixed set of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionProbe {
    cells: Vec<usize>,
    component: Component,
}

impl RegionProbe {
    /// Creates a probe over explicit flattened cell indices.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn new(cells: Vec<usize>, component: Component) -> Self {
        assert!(!cells.is_empty(), "probe needs at least one cell");
        RegionProbe { cells, component }
    }

    /// Creates a probe over all magnetic cells whose centres fall in the
    /// rectangle `[x0, x1] × [y0, y1]` (metres).
    ///
    /// # Panics
    ///
    /// Panics if the rectangle contains no magnetic cell.
    pub fn over_rect(
        mesh: &Mesh,
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        component: Component,
    ) -> Self {
        let mut cells = Vec::new();
        for (ix, iy) in mesh.magnetic_cells() {
            let (x, y) = mesh.cell_center(ix, iy);
            if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
                cells.push(mesh.linear_index(ix, iy));
            }
        }
        RegionProbe::new(cells, component)
    }

    /// The probed cells.
    pub fn cells(&self) -> &[usize] {
        &self.cells
    }

    /// Mean of the selected component over the region. Accepts any
    /// magnetization view — the simulation's SoA [`crate::Field3`] or a
    /// plain `Vec3` buffer.
    pub fn mean<M: MagRead + ?Sized>(&self, m: &M) -> f64 {
        let sum: f64 = self.cells.iter().map(|&c| self.component.of(m.at(c))).sum();
        sum / self.cells.len() as f64
    }
}

/// On-line single-frequency DFT of a region-averaged signal.
///
/// Feed it samples at a fixed cadence with [`DftProbe::sample`]; after an
/// integer number of periods, [`DftProbe::amplitude`] estimates the peak
/// amplitude `A` and [`DftProbe::phase`] the phase `φ` of the best-fit
/// `A·sin(2πft + φ)`.
#[derive(Debug, Clone)]
pub struct DftProbe {
    region: RegionProbe,
    frequency: f64,
    accumulator: Complex64,
    samples: usize,
}

impl DftProbe {
    /// Creates a DFT probe at `frequency` (Hz) over the given region.
    pub fn new(region: RegionProbe, frequency: f64) -> Self {
        DftProbe {
            region,
            frequency,
            accumulator: Complex64::ZERO,
            samples: 0,
        }
    }

    /// The analysis frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Number of samples accumulated so far.
    pub fn sample_count(&self) -> usize {
        self.samples
    }

    /// Adds one sample of the magnetization state at time `t`.
    pub fn sample<M: MagRead + ?Sized>(&mut self, t: f64, m: &M) {
        let value = self.region.mean(m);
        let phase = -2.0 * std::f64::consts::PI * self.frequency * t;
        self.accumulator += Complex64::cis(phase) * value;
        self.samples += 1;
    }

    /// Complex amplitude `(A/2)·e^{i(φ−π/2)}` of the analysed tone —
    /// mostly useful for relative comparisons between probes.
    pub fn complex_amplitude(&self) -> Complex64 {
        if self.samples == 0 {
            return Complex64::ZERO;
        }
        self.accumulator / self.samples as f64
    }

    /// Estimated peak amplitude of the sinusoid (same units as the
    /// sampled component).
    pub fn amplitude(&self) -> f64 {
        2.0 * self.complex_amplitude().abs()
    }

    /// Estimated phase `φ` (radians, in (−π, π]) of the best-fit
    /// `A·sin(2πft + φ)`.
    pub fn phase(&self) -> f64 {
        let raw = self.complex_amplitude().arg() + std::f64::consts::FRAC_PI_2;
        wrap_phase(raw)
    }

    /// Resets the accumulator so the probe can analyse a new window.
    pub fn reset(&mut self) {
        self.accumulator = Complex64::ZERO;
        self.samples = 0;
    }
}

/// Records the region-averaged signal at a fixed cadence and exposes its
/// full one-sided amplitude spectrum.
///
/// Where [`DftProbe`] projects onto one known frequency on the fly, this
/// probe keeps the whole trace and transforms it at readout time through
/// the real-to-complex FFT path ([`fft_real`]) — one complex transform of
/// half the trace length instead of a full complex FFT, planned through
/// the process-wide 1-D plan cache so repeated readouts at the same
/// trace length reuse one set of twiddle tables. Use it to survey
/// an unknown spectrum (e.g. locating the FVMSW band edge) rather than to
/// read out a known drive tone.
#[derive(Debug, Clone)]
pub struct SpectrumProbe {
    region: RegionProbe,
    sample_interval: f64,
    trace: Vec<f64>,
}

impl SpectrumProbe {
    /// Creates a spectrum probe sampling the region every
    /// `sample_interval` seconds of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive and finite.
    pub fn new(region: RegionProbe, sample_interval: f64) -> Self {
        assert!(
            sample_interval.is_finite() && sample_interval > 0.0,
            "sample interval must be positive and finite"
        );
        SpectrumProbe {
            region,
            sample_interval,
            trace: Vec::new(),
        }
    }

    /// Number of samples recorded so far.
    pub fn sample_count(&self) -> usize {
        self.trace.len()
    }

    /// The sampling cadence in seconds.
    pub fn sample_interval(&self) -> f64 {
        self.sample_interval
    }

    /// Records one sample of the magnetization state. The caller is
    /// responsible for invoking this at the cadence given at construction
    /// (e.g. from [`crate::sim::Simulation::run_sampled`]).
    pub fn sample<M: MagRead + ?Sized>(&mut self, m: &M) {
        self.trace.push(self.region.mean(m));
    }

    /// The recorded time trace.
    pub fn trace(&self) -> &[f64] {
        &self.trace
    }

    /// One-sided amplitude spectrum as `(frequency_hz, peak_amplitude)`
    /// pairs for bins `0..=n/2`, where `n` is the trace length zero-padded
    /// to the cheapest even 5-smooth FFT length (mixed-radix
    /// [`good_size`] — finer frequency resolution than the old
    /// power-of-two padding at the same or lower cost). Amplitudes are
    /// scaled so a pure sinusoid landing on a bin reports its peak
    /// amplitude.
    pub fn spectrum(&self) -> Vec<(f64, f64)> {
        if self.trace.is_empty() {
            return Vec::new();
        }
        // Even length: the one-sided bin set 0..=n/2 ends on a real
        // Nyquist bin (the halved-amplitude scaling below relies on it)
        // and `fft_real` keeps its half-length split.
        let mut n = good_size(self.trace.len());
        while n % 2 == 1 {
            n = good_size(n + 1);
        }
        let mut padded = self.trace.clone();
        padded.resize(n, 0.0);
        let bins = fft_real(&padded);
        let df = 1.0 / (n as f64 * self.sample_interval);
        let norm = 2.0 / self.trace.len() as f64;
        (0..=n / 2)
            .map(|k| {
                let amp = bins[k].abs()
                    * if k == 0 || k == n / 2 {
                        norm / 2.0
                    } else {
                        norm
                    };
                (k as f64 * df, amp)
            })
            .collect()
    }

    /// The `(frequency, amplitude)` of the strongest non-DC bin, or `None`
    /// before any samples arrive.
    pub fn dominant(&self) -> Option<(f64, f64)> {
        self.spectrum()
            .into_iter()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Clears the trace so the probe can record a new window.
    pub fn reset(&mut self) {
        self.trace.clear();
    }
}

/// Wraps a phase to (−π, π].
pub fn wrap_phase(phi: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut p = phi % two_pi;
    if p > std::f64::consts::PI {
        p -= two_pi;
    } else if p <= -std::f64::consts::PI {
        p += two_pi;
    }
    p
}

/// A spatial snapshot of one magnetization component — the raw material
/// behind the paper's Fig. 5 colour maps.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Snapshot {
    /// Captures `component` of `m` over the whole mesh (vacuum cells are
    /// recorded as 0).
    pub fn capture<M: MagRead + ?Sized>(mesh: &Mesh, m: &M, component: Component) -> Self {
        let data = (0..m.len()).map(|i| component.of(m.at(i))).collect();
        Snapshot {
            nx: mesh.nx(),
            ny: mesh.ny(),
            data,
        }
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Value at cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn get(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "snapshot index out of range");
        self.data[iy * self.nx + ix]
    }

    /// Minimum value over the grid.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over the grid.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// ASCII rendering with the amplitude quantized into the given symbol
    /// ramp (dark = most negative, bright = most positive), normalized to
    /// `scale`. Mirrors the blue/red colour coding of the paper's Fig. 5.
    pub fn to_ascii(&self, scale: f64) -> String {
        const RAMP: &[u8] = b"#=-. +*@";
        let mut out = String::with_capacity((self.nx + 1) * self.ny);
        let scale = if scale > 0.0 { scale } else { 1.0 };
        for iy in (0..self.ny).rev() {
            for ix in 0..self.nx {
                let v = (self.data[iy * self.nx + ix] / scale).clamp(-1.0, 1.0);
                let idx = (((v + 1.0) / 2.0) * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering (`ix,iy,value` rows with a header), y-major order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ix,iy,value\n");
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                out.push_str(&format!("{},{},{}\n", ix, iy, self.data[iy * self.nx + ix]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn mesh() -> Mesh {
        Mesh::new(4, 2, [1e-9, 1e-9, 1e-9]).unwrap()
    }

    #[test]
    fn region_probe_means_component() {
        let probe = RegionProbe::new(vec![0, 1], Component::X);
        let mut m = vec![Vec3::ZERO; 4];
        m[0] = Vec3::new(0.2, 0.0, 0.0);
        m[1] = Vec3::new(0.4, 9.0, 9.0);
        assert!((probe.mean(&m) - 0.3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_region_rejected() {
        let _ = RegionProbe::new(vec![], Component::X);
    }

    #[test]
    fn over_rect_collects_expected_cells() {
        let m = mesh();
        let probe = RegionProbe::over_rect(&m, 0.0, 0.0, 2e-9, 2e-9, Component::Z);
        assert_eq!(probe.cells().len(), 4);
    }

    fn feed_tone(
        probe: &mut DftProbe,
        amp: f64,
        freq: f64,
        phase: f64,
        periods: usize,
        per: usize,
    ) {
        let dt = 1.0 / (freq * per as f64);
        for i in 0..periods * per {
            let t = i as f64 * dt;
            let value = amp * (2.0 * PI * freq * t + phase).sin();
            let m = vec![Vec3::new(value, 0.0, 0.0)];
            probe.sample(t, &m);
        }
    }

    #[test]
    fn dft_recovers_amplitude_and_phase() {
        for &phase in &[0.0, PI / 3.0, PI, -PI / 2.0] {
            let mut probe = DftProbe::new(RegionProbe::new(vec![0], Component::X), 10e9);
            feed_tone(&mut probe, 0.37, 10e9, phase, 8, 64);
            assert!(
                (probe.amplitude() - 0.37).abs() < 1e-3,
                "amplitude {} (phase {phase})",
                probe.amplitude()
            );
            let err = wrap_phase(probe.phase() - phase).abs();
            assert!(err < 1e-6, "phase error {err} for φ = {phase}");
        }
    }

    #[test]
    fn dft_rejects_off_frequency_tone() {
        let mut probe = DftProbe::new(RegionProbe::new(vec![0], Component::X), 10e9);
        // Feed a 5 GHz tone over full periods of both: 2 periods of 5 GHz
        // = 4 periods of 10 GHz.
        feed_tone(&mut probe, 1.0, 5e9, 0.3, 4, 64);
        assert!(
            probe.amplitude() < 1e-6,
            "off-frequency leakage: {}",
            probe.amplitude()
        );
    }

    #[test]
    fn dft_reset_clears_state() {
        let mut probe = DftProbe::new(RegionProbe::new(vec![0], Component::X), 10e9);
        feed_tone(&mut probe, 1.0, 10e9, 0.0, 2, 32);
        assert!(probe.amplitude() > 0.5);
        probe.reset();
        assert_eq!(probe.sample_count(), 0);
        assert_eq!(probe.amplitude(), 0.0);
    }

    #[test]
    fn wrap_phase_stays_in_range() {
        for &p in &[0.0, 3.0, -3.0, 7.0, -7.0, 10.0 * PI, PI, -PI] {
            let w = wrap_phase(p);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "wrap({p}) = {w}");
        }
        assert!((wrap_phase(2.0 * PI + 0.1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn spectrum_probe_finds_a_pure_tone() {
        // 8 periods of a 10 GHz tone at 32 samples/period: the tone lands
        // exactly on bin 8 of a 256-point transform.
        let freq = 10e9;
        let per = 32;
        let dt = 1.0 / (freq * per as f64);
        let mut probe = SpectrumProbe::new(RegionProbe::new(vec![0], Component::X), dt);
        for i in 0..8 * per {
            let t = i as f64 * dt;
            let value = 0.42 * (2.0 * PI * freq * t).sin();
            probe.sample(&[Vec3::new(value, 0.0, 0.0)]);
        }
        let (f, a) = probe.dominant().unwrap();
        assert!((f - freq).abs() < 1e-3 * freq, "dominant frequency {f}");
        assert!((a - 0.42).abs() < 1e-6, "dominant amplitude {a}");
        // Every other non-DC bin is empty for an on-bin tone.
        for (fk, ak) in probe.spectrum().into_iter().skip(1) {
            if (fk - freq).abs() > 1e-3 * freq {
                assert!(ak < 1e-9, "leakage {ak} at {fk}");
            }
        }
    }

    #[test]
    fn spectrum_probe_zero_pads_non_power_of_two_traces() {
        let dt = 1e-12;
        let mut probe = SpectrumProbe::new(RegionProbe::new(vec![0], Component::Z), dt);
        for _ in 0..100 {
            probe.sample(&[Vec3::Z]);
        }
        assert_eq!(probe.sample_count(), 100);
        let spec = probe.spectrum();
        // 100 = 2²·5² is already a good mixed-radix length: no padding
        // (the old radix-2 engine had to stretch to 128), so 51 one-sided
        // entries at df = 1/(100 dt).
        assert_eq!(spec.len(), 51);
        assert!((spec[1].0 - 1.0 / (100.0 * dt)).abs() < 1.0);
        // A constant signal is pure DC: amplitude 1 at bin 0.
        assert!((spec[0].1 - 1.0).abs() < 1e-12, "DC bin {}", spec[0].1);
        probe.reset();
        assert_eq!(probe.sample_count(), 0);
        assert!(probe.spectrum().is_empty());
        assert!(probe.dominant().is_none());
    }

    #[test]
    fn spectrum_probe_rounds_odd_good_sizes_up_to_even() {
        // 74 samples: good_size(74) = 75 is odd, which has no Nyquist
        // bin; the probe must keep rounding up (to 80) so the one-sided
        // spectrum keeps its real top bin and the r2c split stays legal.
        let dt = 1e-12;
        let mut probe = SpectrumProbe::new(RegionProbe::new(vec![0], Component::Z), dt);
        for _ in 0..74 {
            probe.sample(&[Vec3::Z]);
        }
        let spec = probe.spectrum();
        assert_eq!(spec.len(), 41); // 80/2 + 1
        assert!((spec[1].0 - 1.0 / (80.0 * dt)).abs() < 1.0);
        assert!((spec[0].1 - 1.0).abs() < 1e-12, "DC bin {}", spec[0].1);
    }

    #[test]
    fn snapshot_round_trips_values() {
        let me = mesh();
        let mut m = vec![Vec3::ZERO; 8];
        m[me.linear_index(2, 1)] = Vec3::new(0.0, 0.0, 0.7);
        let snap = Snapshot::capture(&me, &m, Component::Z);
        assert_eq!(snap.get(2, 1), 0.7);
        assert_eq!(snap.get(0, 0), 0.0);
        assert_eq!(snap.max(), 0.7);
        assert_eq!(snap.min(), 0.0);
    }

    #[test]
    fn snapshot_ascii_dimensions() {
        let me = mesh();
        let m = vec![Vec3::Z; 8];
        let snap = Snapshot::capture(&me, &m, Component::X);
        let art = snap.to_ascii(1.0);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.len() == 4));
    }

    #[test]
    fn snapshot_csv_has_header_and_rows() {
        let me = mesh();
        let m = vec![Vec3::Z; 8];
        let snap = Snapshot::capture(&me, &m, Component::Z);
        let csv = snap.to_csv();
        assert!(csv.starts_with("ix,iy,value\n"));
        assert_eq!(csv.lines().count(), 9);
    }
}
