//! External (Zeeman) field.
//!
//! A uniform static bias field. Time- and space-dependent drive fields are
//! the job of [`crate::excitation::Antenna`]s; keeping the static bias
//! separate lets the energy bookkeeping use the correct prefactor (1
//! instead of ½).

use super::{FieldTerm, FusedTerm};
use crate::math::Vec3;

/// Uniform static external field (A/m).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zeeman {
    field: Vec3,
}

impl Zeeman {
    /// Creates a uniform field term.
    pub fn uniform(field: Vec3) -> Self {
        Zeeman { field }
    }

    /// The applied field in A/m.
    pub fn field(&self) -> Vec3 {
        self.field
    }
}

impl FieldTerm for Zeeman {
    fn name(&self) -> &'static str {
        "zeeman"
    }

    fn accumulate(&self, _m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        if self.field == Vec3::ZERO {
            return;
        }
        for hi in h.iter_mut() {
            *hi += self.field;
        }
    }

    fn energy_prefactor(&self) -> f64 {
        1.0
    }

    fn fused(&self) -> Option<FusedTerm> {
        Some(FusedTerm::Uniform(self.field))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MU0;

    #[test]
    fn adds_same_field_everywhere() {
        let z = Zeeman::uniform(Vec3::new(0.0, 0.0, 1e5));
        let m = vec![Vec3::Z; 5];
        let mut h = vec![Vec3::new(1.0, 0.0, 0.0); 5];
        z.accumulate(&m, 0.0, &mut h);
        for hi in &h {
            assert_eq!(*hi, Vec3::new(1.0, 0.0, 1e5));
        }
    }

    #[test]
    fn zeeman_energy_is_linear_in_field() {
        let z1 = Zeeman::uniform(Vec3::Z * 1e5);
        let z2 = Zeeman::uniform(Vec3::Z * 2e5);
        let m = vec![Vec3::Z; 3];
        let e1 = z1.energy(&m, 0.0, 1e6, 1e-27);
        let e2 = z2.energy(&m, 0.0, 1e6, 1e-27);
        assert!((e2 - 2.0 * e1).abs() < 1e-30);
        // Aligned magnetization has negative Zeeman energy.
        assert!(e1 < 0.0);
        let expected = -(MU0) * 1e6 * 1e-27 * 1e5 * 3.0;
        assert!((e1 - expected).abs() < 1e-32);
    }

    #[test]
    fn antiparallel_magnetization_has_positive_energy() {
        let z = Zeeman::uniform(Vec3::Z * 1e5);
        let m = vec![-Vec3::Z; 2];
        assert!(z.energy(&m, 0.0, 1e6, 1e-27) > 0.0);
    }
}
