//! First-order uniaxial magneto-crystalline anisotropy.
//!
//! `H_anis = (2Ku₁/μ₀Ms)·(m·û)·û`. With the perpendicular easy axis and
//! the Ku of the paper's Fe₆₀Co₂₀B₂₀ film this term (together with the
//! thin-film demag) holds the magnetization out-of-plane, enabling
//! forward-volume spin waves.

use super::{FieldTerm, FusedTerm};
use crate::material::Material;
use crate::math::Vec3;
use crate::mesh::Mesh;
use crate::MU0;

/// Uniaxial anisotropy field term.
#[derive(Debug, Clone)]
pub struct UniaxialAnisotropy {
    /// 2Ku₁/(μ₀Ms) in A/m.
    coeff: f64,
    axis: Vec3,
    mask: Vec<bool>,
}

impl UniaxialAnisotropy {
    /// Builds the term from the material's Ku₁ and easy axis.
    pub fn new(mesh: &Mesh, material: &Material) -> Self {
        let ms = material.saturation_magnetization();
        let coeff = if ms > 0.0 {
            2.0 * material.anisotropy_constant() / (MU0 * ms)
        } else {
            0.0
        };
        UniaxialAnisotropy {
            coeff,
            axis: material.anisotropy_axis(),
            mask: mesh.mask().to_vec(),
        }
    }

    /// The anisotropy field coefficient `2Ku₁/(μ₀Ms)` in A/m.
    pub fn coefficient(&self) -> f64 {
        self.coeff
    }
}

impl FieldTerm for UniaxialAnisotropy {
    fn name(&self) -> &'static str {
        "uniaxial_anisotropy"
    }

    fn accumulate(&self, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        if self.coeff == 0.0 {
            return;
        }
        for (i, (mi, hi)) in m.iter().zip(h.iter_mut()).enumerate() {
            if self.mask[i] {
                *hi += self.axis * (self.coeff * mi.dot(self.axis));
            }
        }
    }

    fn fused(&self) -> Option<FusedTerm> {
        Some(FusedTerm::Uniaxial {
            coeff: self.coeff,
            axis: self.axis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term() -> (UniaxialAnisotropy, Material, Mesh) {
        let mesh = Mesh::new(4, 2, [5e-9, 5e-9, 1e-9]).unwrap();
        let mat = Material::fecob();
        (UniaxialAnisotropy::new(&mesh, &mat), mat, mesh)
    }

    #[test]
    fn field_is_along_axis_and_proportional_to_projection() {
        let (a, _, mesh) = term();
        let m = vec![Vec3::new(0.6, 0.0, 0.8); mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        a.accumulate(&m, 0.0, &mut h);
        for hi in &h {
            assert!(hi.x.abs() < 1e-12 && hi.y.abs() < 1e-12);
            assert!((hi.z - a.coefficient() * 0.8).abs() < 1e-3);
        }
    }

    #[test]
    fn in_plane_magnetization_feels_no_field() {
        let (a, _, mesh) = term();
        let m = vec![Vec3::X; mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        a.accumulate(&m, 0.0, &mut h);
        for hi in &h {
            assert!(hi.norm() < 1e-12);
        }
    }

    #[test]
    fn coefficient_matches_fecob() {
        let (a, _, _) = term();
        let expected = 2.0 * 0.832e6 / (MU0 * 1100e3);
        assert!((a.coefficient() - expected).abs() / expected < 1e-12);
        // ≈ 1.204 MA/m, comfortably above Ms = 1.1 MA/m: perpendicular film.
        assert!(a.coefficient() > 1100e3);
    }

    #[test]
    fn easy_axis_minimizes_energy() {
        let (a, mat, mesh) = term();
        let ms = mat.saturation_magnetization();
        let v = mesh.cell_volume();
        let along = vec![Vec3::Z; mesh.cell_count()];
        let hard = vec![Vec3::X; mesh.cell_count()];
        let e_along = a.energy(&along, 0.0, ms, v);
        let e_hard = a.energy(&hard, 0.0, ms, v);
        assert!(e_along < e_hard, "easy axis must be the energy minimum");
        assert!(
            e_hard.abs() < 1e-30,
            "hard-axis energy is the zero reference"
        );
    }

    #[test]
    fn opposite_easy_directions_are_degenerate() {
        let (a, mat, mesh) = term();
        let ms = mat.saturation_magnetization();
        let v = mesh.cell_volume();
        let up = vec![Vec3::Z; mesh.cell_count()];
        let down = vec![-Vec3::Z; mesh.cell_count()];
        let e_up = a.energy(&up, 0.0, ms, v);
        let e_down = a.energy(&down, 0.0, ms, v);
        assert!((e_up - e_down).abs() < 1e-30);
    }

    #[test]
    fn vacuum_cells_get_no_field() {
        let mut mesh = Mesh::new(2, 1, [5e-9, 5e-9, 1e-9]).unwrap();
        mesh.set_magnetic(1, 0, false);
        let a = UniaxialAnisotropy::new(&mesh, &Material::fecob());
        let m = vec![Vec3::Z; 2];
        let mut h = vec![Vec3::ZERO; 2];
        a.accumulate(&m, 0.0, &mut h);
        assert!(h[0].norm() > 0.0);
        assert_eq!(h[1], Vec3::ZERO);
    }
}
