//! Demagnetizing (dipolar) field.
//!
//! Two implementations are provided:
//!
//! * [`ThinFilmDemag`] — the local thin-film limit `H_d = −Ms·m_z·ẑ`
//!   (demag tensor N = diag(0, 0, 1)). For the paper's 1 nm film this is
//!   the textbook approximation; it merges with the perpendicular
//!   anisotropy into the effective field that sets the FVMSW dispersion.
//! * [`NewellDemag`] — the full non-local field computed by convolving the
//!   magnetization with the Newell demagnetization tensor via the
//!   crate's own FFT. Exact for the discretization, but O(N log N) per
//!   evaluation; used for validation and ablation studies.

use std::sync::Mutex;

use super::{FieldTerm, FusedTerm};
use crate::fft::{fft2_in_place, next_power_of_two, Direction};
use crate::material::Material;
use crate::math::{Complex64, Vec3};
use crate::mesh::Mesh;

/// Which demagnetization model a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DemagMethod {
    /// No demagnetizing field at all.
    None,
    /// Local thin-film approximation `H_d = −Ms·m_z·ẑ` (default: correct
    /// limit for films much thinner than their lateral extent).
    #[default]
    ThinFilmLocal,
    /// Full non-local Newell-tensor convolution via FFT.
    NewellFft,
}

/// Local thin-film demagnetizing field (see [`DemagMethod::ThinFilmLocal`]).
#[derive(Debug, Clone)]
pub struct ThinFilmDemag {
    ms: f64,
    mask: Vec<bool>,
}

impl ThinFilmDemag {
    /// Builds the local demag term.
    pub fn new(mesh: &Mesh, material: &Material) -> Self {
        ThinFilmDemag {
            ms: material.saturation_magnetization(),
            mask: mesh.mask().to_vec(),
        }
    }
}

impl FieldTerm for ThinFilmDemag {
    fn name(&self) -> &'static str {
        "demag_thin_film"
    }

    fn accumulate(&self, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        for (i, (mi, hi)) in m.iter().zip(h.iter_mut()).enumerate() {
            if self.mask[i] {
                hi.z -= self.ms * mi.z;
            }
        }
    }

    fn fused(&self) -> Option<FusedTerm> {
        Some(FusedTerm::ThinFilm { ms: self.ms })
    }
}

/// Non-local demagnetizing field via Newell-tensor FFT convolution
/// (see [`DemagMethod::NewellFft`]).
///
/// The kernel is precomputed once at construction; each field evaluation
/// costs six 2-D FFTs on the zero-padded grid.
pub struct NewellDemag {
    nx: usize,
    ny: usize,
    px: usize,
    py: usize,
    ms: f64,
    mask: Vec<bool>,
    /// FFT'd kernels K = −N (so that Ĥ = K̂·M̂).
    kxx: Vec<Complex64>,
    kyy: Vec<Complex64>,
    kzz: Vec<Complex64>,
    kxy: Vec<Complex64>,
    scratch: Mutex<Scratch>,
}

struct Scratch {
    mx: Vec<Complex64>,
    my: Vec<Complex64>,
    mz: Vec<Complex64>,
}

impl NewellDemag {
    /// Precomputes the demag kernel for the mesh (single layer).
    ///
    /// Construction cost is O(P·27) Newell evaluations for P padded cells;
    /// this is done once per simulation.
    pub fn new(mesh: &Mesh, material: &Material) -> Self {
        let nx = mesh.nx();
        let ny = mesh.ny();
        let px = next_power_of_two(2 * nx);
        let py = next_power_of_two(2 * ny);
        let [dx, dy, dz] = mesh.cell_size();

        let mut kxx = vec![Complex64::ZERO; px * py];
        let mut kyy = vec![Complex64::ZERO; px * py];
        let mut kzz = vec![Complex64::ZERO; px * py];
        let mut kxy = vec![Complex64::ZERO; px * py];

        for jy in 0..py {
            // Wrap offsets: indices beyond the half-grid represent
            // negative displacements.
            let oy = if jy <= py / 2 {
                jy as isize
            } else {
                jy as isize - py as isize
            };
            for jx in 0..px {
                let ox = if jx <= px / 2 {
                    jx as isize
                } else {
                    jx as isize - px as isize
                };
                let x = ox as f64 * dx;
                let y = oy as f64 * dy;
                let idx = jy * px + jx;
                // K = −N so that the convolution yields H directly.
                kxx[idx] = Complex64::new(-newell_nxx(x, y, 0.0, dx, dy, dz), 0.0);
                kyy[idx] = Complex64::new(-newell_nxx(y, x, 0.0, dy, dx, dz), 0.0);
                kzz[idx] = Complex64::new(-newell_nxx(0.0, y, x, dz, dy, dx), 0.0);
                kxy[idx] = Complex64::new(-newell_nxy(x, y, 0.0, dx, dy, dz), 0.0);
            }
        }
        for k in [&mut kxx, &mut kyy, &mut kzz, &mut kxy] {
            fft2_in_place(k, px, py, Direction::Forward);
        }
        NewellDemag {
            nx,
            ny,
            px,
            py,
            ms: material.saturation_magnetization(),
            mask: mesh.mask().to_vec(),
            kxx,
            kyy,
            kzz,
            kxy,
            scratch: Mutex::new(Scratch {
                mx: vec![Complex64::ZERO; px * py],
                my: vec![Complex64::ZERO; px * py],
                mz: vec![Complex64::ZERO; px * py],
            }),
        }
    }

    /// Self-demagnetization factors `(Nxx, Nyy, Nzz)` of a single cell —
    /// they must sum to 1.
    pub fn self_factors(dx: f64, dy: f64, dz: f64) -> (f64, f64, f64) {
        (
            newell_nxx(0.0, 0.0, 0.0, dx, dy, dz),
            newell_nxx(0.0, 0.0, 0.0, dy, dx, dz),
            newell_nxx(0.0, 0.0, 0.0, dz, dy, dx),
        )
    }
}

impl std::fmt::Debug for NewellDemag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NewellDemag")
            .field("nx", &self.nx)
            .field("ny", &self.ny)
            .field("padded", &(self.px, self.py))
            .field("ms", &self.ms)
            .finish()
    }
}

impl FieldTerm for NewellDemag {
    fn name(&self) -> &'static str {
        "demag_newell_fft"
    }

    fn accumulate(&self, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        let mut scratch = self.scratch.lock().expect("demag scratch poisoned");
        let Scratch { mx, my, mz } = &mut *scratch;
        mx.fill(Complex64::ZERO);
        my.fill(Complex64::ZERO);
        mz.fill(Complex64::ZERO);
        // Load Ms·m into the padded buffers (vacuum stays zero).
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let i = iy * self.nx + ix;
                if !self.mask[i] {
                    continue;
                }
                let p = iy * self.px + ix;
                mx[p] = Complex64::new(self.ms * m[i].x, 0.0);
                my[p] = Complex64::new(self.ms * m[i].y, 0.0);
                mz[p] = Complex64::new(self.ms * m[i].z, 0.0);
            }
        }
        for buf in [&mut *mx, &mut *my, &mut *mz] {
            fft2_in_place(buf, self.px, self.py, Direction::Forward);
        }
        // Multiply in Fourier space: Ĥ = K̂·M̂ (Kxz = Kyz = 0 in-plane).
        for i in 0..self.px * self.py {
            let hx = self.kxx[i] * mx[i] + self.kxy[i] * my[i];
            let hy = self.kxy[i] * mx[i] + self.kyy[i] * my[i];
            let hz = self.kzz[i] * mz[i];
            mx[i] = hx;
            my[i] = hy;
            mz[i] = hz;
        }
        for buf in [&mut *mx, &mut *my, &mut *mz] {
            fft2_in_place(buf, self.px, self.py, Direction::Inverse);
        }
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let i = iy * self.nx + ix;
                if !self.mask[i] {
                    continue;
                }
                let p = iy * self.px + ix;
                h[i] += Vec3::new(mx[p].re, my[p].re, mz[p].re);
            }
        }
    }
}

/// Newell `f` auxiliary function (even in every argument).
fn newell_f(x: f64, y: f64, z: f64) -> f64 {
    let (x, y, z) = (x.abs(), y.abs(), z.abs());
    let r = (x * x + y * y + z * z).sqrt();
    let mut acc = 0.0;
    // (y/2)(z²−x²)·asinh(y/√(x²+z²))
    let dxz = (x * x + z * z).sqrt();
    if dxz > 0.0 && y != 0.0 {
        acc += 0.5 * y * (z * z - x * x) * (y / dxz).asinh();
    }
    // (z/2)(y²−x²)·asinh(z/√(x²+y²))
    let dxy = (x * x + y * y).sqrt();
    if dxy > 0.0 && z != 0.0 {
        acc += 0.5 * z * (y * y - x * x) * (z / dxy).asinh();
    }
    // −xyz·atan(yz/(xR))
    if x != 0.0 && r > 0.0 && y != 0.0 && z != 0.0 {
        acc -= x * y * z * (y * z / (x * r)).atan();
    }
    // (1/6)(2x²−y²−z²)·R
    acc += (2.0 * x * x - y * y - z * z) * r / 6.0;
    acc
}

/// Newell `g` auxiliary function (odd in x and y, even in z).
fn newell_g(x: f64, y: f64, z: f64) -> f64 {
    let zs = z.abs();
    let r = (x * x + y * y + zs * zs).sqrt();
    let mut acc = 0.0;
    let dxy = (x * x + y * y).sqrt();
    if dxy > 0.0 && zs != 0.0 {
        acc += x * y * zs * (zs / dxy).asinh();
    }
    let dyz = (y * y + zs * zs).sqrt();
    if dyz > 0.0 && x != 0.0 {
        acc += y / 6.0 * (3.0 * zs * zs - y * y) * (x / dyz).asinh();
    }
    let dxz = (x * x + zs * zs).sqrt();
    if dxz > 0.0 && y != 0.0 {
        acc += x / 6.0 * (3.0 * zs * zs - x * x) * (y / dxz).asinh();
    }
    if zs != 0.0 && r > 0.0 && x != 0.0 && y != 0.0 {
        acc -= zs * zs * zs / 6.0 * (x * y / (zs * r)).atan();
    }
    if y != 0.0 && r > 0.0 && x != 0.0 && zs != 0.0 {
        acc -= zs * y * y / 2.0 * (x * zs / (y * r)).atan();
    }
    if x != 0.0 && r > 0.0 && y != 0.0 && zs != 0.0 {
        acc -= zs * x * x / 2.0 * (y * zs / (x * r)).atan();
    }
    acc -= x * y * r / 3.0;
    acc
}

/// Applies the 27-point second-difference stencil to an auxiliary function.
fn newell_stencil<F: Fn(f64, f64, f64) -> f64>(
    x: f64,
    y: f64,
    z: f64,
    dx: f64,
    dy: f64,
    dz: f64,
    func: F,
) -> f64 {
    const W: [(isize, f64); 3] = [(-1, -1.0), (0, 2.0), (1, -1.0)];
    let mut acc = 0.0;
    for &(u, wu) in &W {
        for &(v, wv) in &W {
            for &(w, ww) in &W {
                acc += wu * wv * ww * func(x + u as f64 * dx, y + v as f64 * dy, z + w as f64 * dz);
            }
        }
    }
    acc
}

/// Demag tensor component `Nxx` between two cells displaced by `(x, y, z)`.
pub fn newell_nxx(x: f64, y: f64, z: f64, dx: f64, dy: f64, dz: f64) -> f64 {
    newell_stencil(x, y, z, dx, dy, dz, newell_f) / (4.0 * std::f64::consts::PI * dx * dy * dz)
}

/// Demag tensor component `Nxy` between two cells displaced by `(x, y, z)`.
pub fn newell_nxy(x: f64, y: f64, z: f64, dx: f64, dy: f64, dz: f64) -> f64 {
    newell_stencil(x, y, z, dx, dy, dz, newell_g) / (4.0 * std::f64::consts::PI * dx * dy * dz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_self_factors_are_one_third() {
        let (nxx, nyy, nzz) = NewellDemag::self_factors(1e-9, 1e-9, 1e-9);
        assert!((nxx - 1.0 / 3.0).abs() < 1e-9, "Nxx = {nxx}");
        assert!((nyy - 1.0 / 3.0).abs() < 1e-9);
        assert!((nzz - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn self_factors_sum_to_one_for_any_aspect() {
        for (dx, dy, dz) in [
            (1e-9, 1e-9, 1e-9),
            (5e-9, 5e-9, 1e-9),
            (2e-9, 8e-9, 1e-9),
            (10e-9, 3e-9, 0.5e-9),
        ] {
            let (nxx, nyy, nzz) = NewellDemag::self_factors(dx, dy, dz);
            assert!(
                (nxx + nyy + nzz - 1.0).abs() < 1e-8,
                "trace violated for ({dx}, {dy}, {dz}): {}",
                nxx + nyy + nzz
            );
        }
    }

    #[test]
    fn flat_cell_is_dominated_by_nzz() {
        let (nxx, nyy, nzz) = NewellDemag::self_factors(10e-9, 10e-9, 1e-9);
        assert!(nzz > 0.8, "flat cell Nzz = {nzz}");
        assert!(nxx < 0.1 && nyy < 0.1);
        assert!((nxx - nyy).abs() < 1e-12, "square cell must be symmetric");
    }

    #[test]
    fn nxy_vanishes_on_axes() {
        // Nxy is odd in x and y: it must vanish when either offset is 0.
        assert!(newell_nxy(0.0, 0.0, 0.0, 1e-9, 1e-9, 1e-9).abs() < 1e-12);
        assert!(newell_nxy(2e-9, 0.0, 0.0, 1e-9, 1e-9, 1e-9).abs() < 1e-12);
        assert!(newell_nxy(0.0, 2e-9, 0.0, 1e-9, 1e-9, 1e-9).abs() < 1e-12);
    }

    #[test]
    fn nxy_is_odd_under_axis_flip() {
        let a = newell_nxy(2e-9, 3e-9, 0.0, 1e-9, 1e-9, 1e-9);
        let b = newell_nxy(-2e-9, 3e-9, 0.0, 1e-9, 1e-9, 1e-9);
        assert!((a + b).abs() < 1e-15);
        assert!(a.abs() > 0.0, "off-axis Nxy should be non-zero");
    }

    #[test]
    fn nxx_is_even() {
        let a = newell_nxx(2e-9, 3e-9, 0.0, 1e-9, 1e-9, 1e-9);
        let b = newell_nxx(-2e-9, -3e-9, 0.0, 1e-9, 1e-9, 1e-9);
        assert!((a - b).abs() < 1e-15);
    }

    fn film_setup(nx: usize, ny: usize) -> (Mesh, Material) {
        let mesh = Mesh::new(nx, ny, [5e-9, 5e-9, 1e-9]).unwrap();
        (mesh, Material::fecob())
    }

    #[test]
    fn newell_field_of_flat_film_approaches_local_limit() {
        // A uniformly out-of-plane magnetized wide thin film: at the centre
        // H_z → −Ms, the thin-film local value.
        let (mesh, mat) = film_setup(32, 32);
        let demag = NewellDemag::new(&mesh, &mat);
        let n = mesh.cell_count();
        let m = vec![Vec3::Z; n];
        let mut h = vec![Vec3::ZERO; n];
        demag.accumulate(&m, 0.0, &mut h);
        let centre = mesh.linear_index(16, 16);
        let hz = h[centre].z;
        let ms = mat.saturation_magnetization();
        assert!(
            (hz + ms).abs() / ms < 0.15,
            "centre demag field {hz} should be close to -Ms = {}",
            -ms
        );
        // In-plane components vanish by symmetry.
        assert!(h[centre].x.abs() / ms < 1e-6);
        assert!(h[centre].y.abs() / ms < 1e-6);
        // The edge field is weaker (flux closure).
        let edge = mesh.linear_index(0, 16);
        assert!(h[edge].z.abs() < hz.abs());
    }

    #[test]
    fn thin_film_local_term_is_minus_ms_mz() {
        let (mesh, mat) = film_setup(4, 4);
        let demag = ThinFilmDemag::new(&mesh, &mat);
        let m = vec![Vec3::new(0.6, 0.0, 0.8); mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        demag.accumulate(&m, 0.0, &mut h);
        for hi in &h {
            assert!((hi.z + mat.saturation_magnetization() * 0.8).abs() < 1e-6);
            assert_eq!(hi.x, 0.0);
        }
    }

    #[test]
    fn vacuum_cells_receive_no_demag_field() {
        let (mut mesh, mat) = film_setup(4, 1);
        mesh.set_magnetic(3, 0, false);
        let local = ThinFilmDemag::new(&mesh, &mat);
        let newell = NewellDemag::new(&mesh, &mat);
        let m = vec![Vec3::Z; 4];
        for term in [&local as &dyn FieldTerm, &newell as &dyn FieldTerm] {
            let mut h = vec![Vec3::ZERO; 4];
            term.accumulate(&m, 0.0, &mut h);
            assert_eq!(h[3], Vec3::ZERO, "{} leaked into vacuum", term.name());
        }
    }

    #[test]
    fn in_plane_magnetized_film_has_small_demag_field_inside() {
        // For in-plane magnetization of a thin film the demag field is
        // weak (N∥ ≈ 0) — checks the Nxx path of the convolution.
        let (mesh, mat) = film_setup(32, 32);
        let demag = NewellDemag::new(&mesh, &mat);
        let n = mesh.cell_count();
        let m = vec![Vec3::X; n];
        let mut h = vec![Vec3::ZERO; n];
        demag.accumulate(&m, 0.0, &mut h);
        let centre = mesh.linear_index(16, 16);
        let ms = mat.saturation_magnetization();
        assert!(
            h[centre].x.abs() / ms < 0.1,
            "in-plane demag field should be small: {}",
            h[centre].x / ms
        );
    }

    #[test]
    fn demag_energy_prefers_out_of_plane_for_nothing() {
        // Sanity: out-of-plane uniform state has *higher* demag energy than
        // in-plane for a film (shape anisotropy).
        let (mesh, mat) = film_setup(16, 16);
        let demag = NewellDemag::new(&mesh, &mat);
        let n = mesh.cell_count();
        let ms = mat.saturation_magnetization();
        let v = mesh.cell_volume();
        let e_oop = demag.energy(&vec![Vec3::Z; n], 0.0, ms, v);
        let e_ip = demag.energy(&vec![Vec3::X; n], 0.0, ms, v);
        assert!(e_oop > e_ip, "film shape anisotropy: {e_oop} vs {e_ip}");
    }
}
